//! Statistics and reporting substrate for the `bitdissem` experiments.
//!
//! The experiment harness turns raw convergence-time samples into the tables
//! recorded in `EXPERIMENTS.md`. This crate provides:
//!
//! * [`summary`] — descriptive statistics (mean, variance, quantiles) with
//!   normal-theory and bootstrap confidence intervals;
//! * [`regression`] — ordinary least squares, log–log power-law fits, and
//!   scaling-model comparison (`n^b` vs `n·log n` vs `log² n`), used to test
//!   the *shape* predictions of the paper's theorems;
//! * [`histogram`] — fixed-width and log-scale histograms for
//!   distribution sanity checks and latency data;
//! * [`table`] — aligned plain-text and CSV rendering of result tables.
//!
//! # Example
//!
//! ```
//! use bitdissem_stats::summary::Summary;
//!
//! let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.median(), 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod histogram;
pub mod regression;
pub mod summary;
pub mod table;

pub use compare::{median_shift, MedianShift};
pub use histogram::{Histogram, LogHistogram};
pub use regression::{fit_power_law, LinearFit, ScalingModel};
pub use summary::Summary;
pub use table::Table;
