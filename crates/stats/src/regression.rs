//! Regression and scaling-model fitting.
//!
//! The paper's theorems are *shape* statements: convergence times scale like
//! `n^{1−ε}` (Theorem 1), `n log n` (Theorem 2) or `log² n` (Minority with
//! large samples). This module fits those scaling laws to measured
//! `(n, T(n))` series and reports which model explains the data best.

use serde::{Deserialize, Serialize};

/// Result of an ordinary-least-squares fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted slope.
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit; 0 when
    /// the data has zero variance explained).
    pub r_squared: f64,
}

/// Fits `y = a + b·x` by ordinary least squares.
///
/// Returns `None` if fewer than two points are given, if lengths differ, or
/// if `x` has zero variance.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::regression::linear_fit;
/// let fit = linear_fit(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&xi| (xi - mx).powi(2)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(&xi, &yi)| (xi - mx) * (yi - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|&yi| (yi - my).powi(2)).sum();
    let ss_res: f64 = x.iter().zip(y).map(|(&xi, &yi)| (yi - intercept - slope * xi).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { (1.0 - ss_res / ss_tot).max(0.0) };
    Some(LinearFit { intercept, slope, r_squared })
}

/// Fits a power law `y = c·x^b` by OLS in log–log space; returns
/// `(exponent b, prefactor c, R² of the log–log fit)`.
///
/// Returns `None` under the same conditions as [`linear_fit`] or if any
/// input is non-positive.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::fit_power_law;
/// let x = [10.0, 100.0, 1000.0];
/// let y: Vec<f64> = x.iter().map(|&v: &f64| 3.0 * v.powf(1.5)).collect();
/// let (b, c, r2) = fit_power_law(&x, &y).unwrap();
/// assert!((b - 1.5).abs() < 1e-9);
/// assert!((c - 3.0).abs() < 1e-6);
/// assert!(r2 > 0.999_999);
/// ```
#[must_use]
pub fn fit_power_law(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    if x.iter().chain(y).any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let lx: Vec<f64> = x.iter().map(|&v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|&v| v.ln()).collect();
    let fit = linear_fit(&lx, &ly)?;
    Some((fit.slope, fit.intercept.exp(), fit.r_squared))
}

/// Candidate scaling models for convergence-time series `T(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalingModel {
    /// `T(n) = c · n^b` — the almost-linear regime of Theorem 1.
    PowerLaw,
    /// `T(n) = c · n ln n` — the Voter upper bound of Theorem 2.
    NLogN,
    /// `T(n) = c · (ln n)²` — the Minority fast regime of Becchetti et al.
    LogSquared,
    /// `T(n) = c · n` — plain linear.
    Linear,
}

impl ScalingModel {
    /// All candidate models.
    pub const ALL: [ScalingModel; 4] = [
        ScalingModel::PowerLaw,
        ScalingModel::NLogN,
        ScalingModel::LogSquared,
        ScalingModel::Linear,
    ];

    /// The model's regressor `f(n)` for proportional fitting `T ≈ c·f(n)`.
    /// For [`ScalingModel::PowerLaw`] the regressor is `n` itself and the
    /// exponent is free (fit in log–log space).
    #[must_use]
    pub fn regressor(self, n: f64) -> f64 {
        match self {
            ScalingModel::PowerLaw | ScalingModel::Linear => n,
            ScalingModel::NLogN => n * n.ln(),
            ScalingModel::LogSquared => n.ln() * n.ln(),
        }
    }
}

impl std::fmt::Display for ScalingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingModel::PowerLaw => write!(f, "c*n^b"),
            ScalingModel::NLogN => write!(f, "c*n*ln(n)"),
            ScalingModel::LogSquared => write!(f, "c*ln(n)^2"),
            ScalingModel::Linear => write!(f, "c*n"),
        }
    }
}

/// Outcome of comparing scaling models on one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelComparison {
    /// Per-model `(model, prefactor c, R² in log–log space)`. For
    /// `PowerLaw` the free exponent replaces a fixed one and is reported in
    /// [`ModelComparison::power_law_exponent`].
    pub fits: Vec<(ScalingModel, f64, f64)>,
    /// Fitted exponent of the free power-law model.
    pub power_law_exponent: f64,
    /// The fixed-shape model (`NLogN`, `LogSquared`, `Linear`) with the
    /// highest R².
    pub best_fixed: ScalingModel,
}

/// Compares the candidate scaling models on a `(n, T)` series.
///
/// Fits are performed in log space: for each fixed-shape model
/// `T ≈ c·f(n)`, we regress `ln T` on `ln f(n)` with slope constrained to 1
/// (i.e. `c = exp(mean(ln T − ln f))`) and report the R² of that constrained
/// fit; for the power law the exponent is free.
///
/// Returns `None` on degenerate input (fewer than 3 points, non-positive
/// values).
#[must_use]
pub fn compare_models(n: &[f64], t: &[f64]) -> Option<ModelComparison> {
    if n.len() != t.len() || n.len() < 3 {
        return None;
    }
    if n.iter().chain(t).any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let (b, _c, r2_pl) = fit_power_law(n, t)?;
    let mut fits = vec![(ScalingModel::PowerLaw, b, r2_pl)];
    let mut best_fixed = ScalingModel::Linear;
    let mut best_r2 = f64::NEG_INFINITY;
    for model in [ScalingModel::NLogN, ScalingModel::LogSquared, ScalingModel::Linear] {
        let lf: Vec<f64> = n.iter().map(|&v| model.regressor(v).ln()).collect();
        let lt: Vec<f64> = t.iter().map(|&v| v.ln()).collect();
        // Constrained slope-1 fit: ln T = ln c + ln f(n).
        let ln_c = lt.iter().zip(&lf).map(|(a, b)| a - b).sum::<f64>() / lt.len() as f64;
        let my = lt.iter().sum::<f64>() / lt.len() as f64;
        let ss_tot: f64 = lt.iter().map(|&v| (v - my).powi(2)).sum();
        let ss_res: f64 = lt.iter().zip(&lf).map(|(&a, &f)| (a - ln_c - f).powi(2)).sum();
        let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
        fits.push((model, ln_c.exp(), r2));
        if r2 > best_r2 {
            best_r2 = r2;
            best_fixed = model;
        }
    }
    Some(ModelComparison { fits, power_law_exponent: b, best_fixed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn linear_fit_recovers_noiseless_line() {
        let x: Vec<f64> = (1..=10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|&v| -2.0 + 0.5 * v).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 0.5).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_decreases_with_noise() {
        let x: Vec<f64> = (1..=50).map(f64::from).collect();
        let clean: Vec<f64> = x.iter().map(|&v| 3.0 * v).collect();
        // Deterministic "noise".
        let noisy: Vec<f64> = x.iter().map(|&v| 3.0 * v + 20.0 * ((v * 12.9898).sin())).collect();
        let fc = linear_fit(&x, &clean).unwrap();
        let fnoisy = linear_fit(&x, &noisy).unwrap();
        assert!(fc.r_squared > fnoisy.r_squared);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(fit_power_law(&[1.0, 0.0], &[1.0, 2.0]).is_none());
        assert!(fit_power_law(&[1.0, 2.0], &[-1.0, 2.0]).is_none());
    }

    #[test]
    fn compare_models_identifies_nlogn() {
        let n: Vec<f64> = (3..12).map(|k| f64::from(1 << k)).collect();
        let t: Vec<f64> = n.iter().map(|&v| 2.5 * v * v.ln()).collect();
        let cmp = compare_models(&n, &t).unwrap();
        assert_eq!(cmp.best_fixed, ScalingModel::NLogN);
        // Free power-law exponent should be slightly above 1.
        assert!(cmp.power_law_exponent > 1.0 && cmp.power_law_exponent < 1.3);
    }

    #[test]
    fn compare_models_identifies_log_squared() {
        let n: Vec<f64> = (3..14).map(|k| f64::from(1 << k)).collect();
        let t: Vec<f64> = n.iter().map(|&v| 4.0 * v.ln() * v.ln()).collect();
        let cmp = compare_models(&n, &t).unwrap();
        assert_eq!(cmp.best_fixed, ScalingModel::LogSquared);
        assert!(cmp.power_law_exponent < 0.5);
    }

    #[test]
    fn compare_models_identifies_linear() {
        let n: Vec<f64> = (3..12).map(|k| f64::from(1 << k)).collect();
        let t: Vec<f64> = n.iter().map(|&v| 0.7 * v).collect();
        let cmp = compare_models(&n, &t).unwrap();
        assert_eq!(cmp.best_fixed, ScalingModel::Linear);
        assert!((cmp.power_law_exponent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_model_display_and_regressor() {
        for m in ScalingModel::ALL {
            assert!(!m.to_string().is_empty());
            assert!(m.regressor(100.0) > 0.0);
        }
        assert_eq!(ScalingModel::Linear.regressor(5.0), 5.0);
        assert!(
            (ScalingModel::NLogN.regressor(std::f64::consts::E) - std::f64::consts::E).abs()
                < 1e-12
        );
    }

    proptest! {
        #[test]
        fn prop_power_law_recovery(
            b in -2.0f64..3.0,
            c in 0.1f64..100.0,
        ) {
            let x: Vec<f64> = (1..=8).map(|k| f64::from(1 << k)).collect();
            let y: Vec<f64> = x.iter().map(|&v| c * v.powf(b)).collect();
            let (bb, cc, r2) = fit_power_law(&x, &y).unwrap();
            prop_assert!((bb - b).abs() < 1e-6);
            prop_assert!((cc - c).abs() / c < 1e-6);
            prop_assert!(r2 > 0.999);
        }

        #[test]
        fn prop_linear_fit_residual_orthogonality(
            pts in proptest::collection::vec((0.0f64..100.0, -100.0f64..100.0), 3..40),
        ) {
            let x: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pts.iter().map(|p| p.1).collect();
            if let Some(f) = linear_fit(&x, &y) {
                // OLS residuals sum to ~0.
                let res_sum: f64 = x.iter().zip(&y)
                    .map(|(&xi, &yi)| yi - f.intercept - f.slope * xi)
                    .sum();
                prop_assert!(res_sum.abs() < 1e-6 * (y.len() as f64) * 100.0);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&f.r_squared));
            }
        }
    }
}
