//! Aligned plain-text and CSV table rendering.
//!
//! Every experiment prints its results through this type so that the rows in
//! `EXPERIMENTS.md`, the example binaries and the bench harness all share
//! one format.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Cell alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple rectangular results table.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::Table;
///
/// let mut t = Table::new(["n", "median T"]);
/// t.row(["128", "412.0"]);
/// t.row(["256", "930.5"]);
/// let text = t.render();
/// assert!(text.contains("median T"));
/// assert_eq!(t.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers. Columns default to
    /// right alignment except the first (label) column.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self { headers, rows: Vec::new(), aligns }
    }

    /// Overrides the per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of
    /// columns.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) {
        assert_eq!(aligns.len(), self.headers.len(), "one alignment per column");
        self.aligns = aligns;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the number of columns.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row length must match header count");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts data rows lexicographically (used to make multi-threaded
    /// experiment output deterministic).
    pub fn sort_rows(&mut self) {
        self.rows.sort();
    }

    /// Renders an aligned plain-text table with a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{cell:<width$}", width = widths[i])),
                    Align::Right => line.push_str(&format!("{cell:>width$}", width = widths[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-style CSV (cells containing commas, quotes or
    /// newlines are quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float with a sensible number of significant digits for tables.
#[must_use]
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "12345"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header separator line is dashes.
        assert!(lines[1].chars().all(|c| c == '-'));
        // Value column right-aligned: "1" ends at the same column as "12345".
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn row_length_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn sort_rows_is_deterministic() {
        let mut t = Table::new(["k"]);
        t.row(["b"]);
        t.row(["a"]);
        t.sort_rows();
        assert!(t.render().find("a").unwrap() < t.render().find("b").unwrap());
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn set_aligns_overrides() {
        let mut t = Table::new(["a", "b"]);
        t.set_aligns(vec![Align::Right, Align::Left]);
        t.row(["1", "x"]);
        let text = t.render();
        assert!(text.contains('1'));
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.5), "1.500");
        assert_eq!(fmt_num(123.456), "123.5");
        assert!(fmt_num(1.0e7).contains('e'));
        assert!(fmt_num(1.0e-5).contains('e'));
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }
}
