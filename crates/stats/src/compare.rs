//! Two-sample distribution comparison.
//!
//! The simulator-equivalence ablation (A1) and the integration tests need a
//! principled "are these two samples from the same distribution?" check:
//! the two-sample Kolmogorov–Smirnov statistic with its asymptotic
//! significance level.

/// The two-sample Kolmogorov–Smirnov statistic
/// `D = sup_x |F̂_a(x) − F̂_b(x)|`.
///
/// Returns `None` if either sample is empty or contains non-finite values.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::compare::ks_statistic;
/// let a = [1.0, 2.0, 3.0];
/// let b = [1.0, 2.0, 3.0];
/// assert_eq!(ks_statistic(&a, &b), Some(0.0));
/// ```
#[must_use]
pub fn ks_statistic(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    if a.iter().chain(b).any(|x| !x.is_finite()) {
        return None;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let (na, nb) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let xa = sa[i];
        let xb = sb[j];
        let x = xa.min(xb);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    Some(d)
}

/// The asymptotic Kolmogorov–Smirnov two-sample critical value at
/// significance `alpha`: `c(α)·sqrt((n_a + n_b)/(n_a·n_b))` with
/// `c(α) = sqrt(−ln(α/2)/2)`. A statistic above this rejects equality at
/// level `α`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1)` or a sample size is 0.
#[must_use]
pub fn ks_critical_value(na: usize, nb: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(na > 0 && nb > 0, "samples must be non-empty");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((na + nb) as f64) / ((na * nb) as f64)).sqrt()
}

/// Convenience: returns `true` if the two samples are *compatible* with a
/// common distribution at significance `alpha` (i.e. KS does **not**
/// reject).
///
/// # Panics
///
/// Panics on the same conditions as [`ks_critical_value`]; returns `false`
/// for degenerate inputs where the statistic is undefined.
#[must_use]
pub fn same_distribution(a: &[f64], b: &[f64], alpha: f64) -> bool {
    match ks_statistic(a, b) {
        Some(d) => d <= ks_critical_value(a.len(), b.len(), alpha),
        None => false,
    }
}

/// The outcome of comparing a current sample against a baseline: the
/// relative change in medians plus whether a KS test rejects the two
/// samples coming from the same distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MedianShift {
    /// Median of the baseline sample.
    pub baseline_median: f64,
    /// Median of the current sample.
    pub current_median: f64,
    /// `(current − baseline) / baseline`; negative means the current
    /// median is lower.
    pub rel_change: f64,
    /// Whether the KS test rejects a common distribution at the given
    /// significance — i.e. the shift is not plausibly run-to-run noise.
    pub distribution_shift: bool,
}

/// Compares `current` against `baseline` for a regression verdict: the
/// relative median change, qualified by a two-sample KS test so tiny
/// samples with large run-to-run noise don't produce false alarms.
///
/// Returns `None` if either sample is empty or non-finite, or the
/// baseline median is zero (no meaningful relative change).
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1)`.
#[must_use]
pub fn median_shift(baseline: &[f64], current: &[f64], alpha: f64) -> Option<MedianShift> {
    fn median(xs: &[f64]) -> Option<f64> {
        if xs.is_empty() || xs.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        })
    }
    let baseline_median = median(baseline)?;
    let current_median = median(current)?;
    if baseline_median == 0.0 {
        return None;
    }
    Some(MedianShift {
        baseline_median,
        current_median,
        rel_change: (current_median - baseline_median) / baseline_median,
        distribution_shift: !same_distribution(baseline, current, alpha),
    })
}

/// Lag-`k` sample autocorrelation of a series (used to sanity-check the
/// oscillation analysis of E12: a period-2 oscillation has lag-1
/// autocorrelation near −1).
///
/// Returns `None` if the series is shorter than `k + 2` or has zero
/// variance.
#[must_use]
pub fn autocorrelation(series: &[f64], k: usize) -> Option<f64> {
    if series.len() < k + 2 {
        return None;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|&x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return None;
    }
    let cov: f64 = (0..n - k).map(|i| (series[i] - mean) * (series[i + k] - mean)).sum();
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [3.0, 1.0, 2.0, 5.0];
        assert_eq!(ks_statistic(&a, &a), Some(0.0));
        assert!(same_distribution(&a, &a, 0.05));
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0];
        assert_eq!(ks_statistic(&a, &b), Some(1.0));
        // The asymptotic critical value exceeds 1 for such tiny samples, so
        // rejection needs more data.
        let big_a: Vec<f64> = (0..30).map(f64::from).collect();
        let big_b: Vec<f64> = (100..130).map(f64::from).collect();
        assert!(!same_distribution(&big_a, &big_b, 0.05));
    }

    #[test]
    fn handles_empty_and_nonfinite() {
        assert_eq!(ks_statistic(&[], &[1.0]), None);
        assert_eq!(ks_statistic(&[f64::NAN], &[1.0]), None);
        assert!(!same_distribution(&[], &[1.0], 0.05));
    }

    #[test]
    fn known_small_case() {
        // F̂_a steps at 1,2; F̂_b steps at 2,3. Max gap is 0.5 at x in [1,2).
        let a = [1.0, 2.0];
        let b = [2.0, 3.0];
        let d = ks_statistic(&a, &b).unwrap();
        assert!((d - 0.5).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        let small = ks_critical_value(20, 20, 0.05);
        let large = ks_critical_value(2000, 2000, 0.05);
        assert!(large < small);
    }

    #[test]
    fn shifted_distributions_are_rejected_with_enough_data() {
        // Deterministic "samples" from U[0,1] vs U[0.3, 1.3].
        let a: Vec<f64> = (0..500).map(|i| f64::from(i) / 500.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.3).collect();
        assert!(!same_distribution(&a, &b, 0.01));
    }

    #[test]
    fn median_shift_reports_relative_change() {
        let base: Vec<f64> = (0..100).map(|i| 1000.0 + f64::from(i)).collect();
        let current: Vec<f64> = base.iter().map(|x| x * 0.8).collect();
        let shift = median_shift(&base, &current, 0.01).unwrap();
        assert!((shift.rel_change + 0.2).abs() < 1e-9, "{shift:?}");
        assert!(shift.distribution_shift);
        // Identical samples: no change, no rejection.
        let same = median_shift(&base, &base, 0.01).unwrap();
        assert_eq!(same.rel_change, 0.0);
        assert!(!same.distribution_shift);
    }

    #[test]
    fn median_shift_degenerate_inputs() {
        assert!(median_shift(&[], &[1.0], 0.05).is_none());
        assert!(median_shift(&[1.0], &[], 0.05).is_none());
        assert!(median_shift(&[f64::NAN], &[1.0], 0.05).is_none());
        assert!(median_shift(&[0.0], &[1.0], 0.05).is_none()); // zero baseline
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_minus_one() {
        let series: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r1 = autocorrelation(&series, 1).unwrap();
        assert!((r1 + 1.0).abs() < 0.05, "r1 = {r1}");
        let r2 = autocorrelation(&series, 2).unwrap();
        assert!((r2 - 1.0).abs() < 0.05, "r2 = {r2}");
    }

    #[test]
    fn autocorrelation_degenerate_cases() {
        assert!(autocorrelation(&[1.0, 1.0, 1.0], 1).is_none()); // zero variance
        assert!(autocorrelation(&[1.0], 1).is_none()); // too short
    }

    proptest! {
        #[test]
        fn prop_ks_statistic_is_in_unit_interval(
            a in proptest::collection::vec(-100.0f64..100.0, 1..60),
            b in proptest::collection::vec(-100.0f64..100.0, 1..60),
        ) {
            let d = ks_statistic(&a, &b).unwrap();
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn prop_ks_is_symmetric(
            a in proptest::collection::vec(-10.0f64..10.0, 1..40),
            b in proptest::collection::vec(-10.0f64..10.0, 1..40),
        ) {
            prop_assert_eq!(ks_statistic(&a, &b), ks_statistic(&b, &a));
        }
    }
}
