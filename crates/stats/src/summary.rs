//! Descriptive statistics with confidence intervals.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Summary statistics of a finite sample.
///
/// Construction sorts a copy of the data once; all queries are then `O(1)`
/// or `O(1)`-ish (quantiles by interpolation on the sorted copy).
///
/// # Examples
///
/// ```
/// use bitdissem_stats::Summary;
///
/// let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), (32.0f64 / 7.0).sqrt());
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    var: f64,
}

impl Summary {
    /// Builds a summary from samples. Returns `None` if `samples` is empty
    /// or contains non-finite values.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = if sorted.len() > 1 {
            sorted.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Self { sorted, mean, var })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the summary holds no samples (never constructible;
    /// present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for a single sample).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.var
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.len() as f64).sqrt()
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Linear-interpolation quantile, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50% quantile).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Normal-theory confidence interval for the mean at the given
    /// two-sided level (e.g. `0.95`): `mean ± z·SE`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    #[must_use]
    pub fn mean_ci(&self, level: f64) -> (f64, f64) {
        assert!(level > 0.0 && level < 1.0, "level must be in (0,1), got {level}");
        let z = normal_quantile(0.5 + level / 2.0);
        let half = z * self.std_error();
        (self.mean - half, self.mean + half)
    }

    /// Percentile-bootstrap confidence interval for the *median* at the
    /// given level, using `resamples` bootstrap replicates and a fixed seed
    /// for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)` or `resamples == 0`.
    #[must_use]
    pub fn median_bootstrap_ci(&self, level: f64, resamples: usize, seed: u64) -> (f64, f64) {
        assert!(level > 0.0 && level < 1.0, "level must be in (0,1), got {level}");
        assert!(resamples > 0, "need at least one bootstrap resample");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = self.sorted.len();
        let mut medians = Vec::with_capacity(resamples);
        let mut buf = vec![0.0; n];
        for _ in 0..resamples {
            for slot in &mut buf {
                *slot = self.sorted[rng.random_range(0..n)];
            }
            buf.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let med = if n % 2 == 1 { buf[n / 2] } else { 0.5 * (buf[n / 2 - 1] + buf[n / 2]) };
            medians.push(med);
        }
        let boot = Summary::from_samples(&medians).expect("non-empty, finite");
        let alpha = 1.0 - level;
        (boot.quantile(alpha / 2.0), boot.quantile(1.0 - alpha / 2.0))
    }
}

/// Quantile function (inverse CDF) of the standard normal distribution,
/// via the Acklam rational approximation (absolute error < 1.2e-9).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    // Coefficients of the Acklam approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Summary::from_samples(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[42.0]).unwrap();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_samples(&[0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.quantile(0.5), 2.0);
        assert!((s.quantile(0.25) - 1.0).abs() < 1e-12);
        assert!((s.quantile(0.125) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn median_even_length() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_out_of_range_panics() {
        let s = Summary::from_samples(&[1.0]).unwrap();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.841_344_75) - 1.0).abs() < 1e-4);
        assert!((normal_quantile(0.999) - 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn mean_ci_covers_mean_and_shrinks() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let s = Summary::from_samples(&data).unwrap();
        let (lo95, hi95) = s.mean_ci(0.95);
        let (lo99, hi99) = s.mean_ci(0.99);
        assert!(lo95 <= s.mean() && s.mean() <= hi95);
        assert!(hi99 - lo99 > hi95 - lo95, "wider level must give wider CI");
    }

    #[test]
    fn bootstrap_ci_brackets_median() {
        let data: Vec<f64> = (0..200).map(f64::from).collect();
        let s = Summary::from_samples(&data).unwrap();
        let (lo, hi) = s.median_bootstrap_ci(0.95, 500, 7);
        assert!(lo <= s.median() && s.median() <= hi, "({lo}, {hi}) vs {}", s.median());
        assert!(hi - lo < 40.0, "CI unexpectedly wide: ({lo}, {hi})");
    }

    #[test]
    fn bootstrap_is_deterministic_given_seed() {
        let data: Vec<f64> = (0..50).map(|i| f64::from(i) * 1.3).collect();
        let s = Summary::from_samples(&data).unwrap();
        assert_eq!(s.median_bootstrap_ci(0.9, 200, 42), s.median_bootstrap_ci(0.9, 200, 42));
    }

    proptest! {
        #[test]
        fn prop_summary_invariants(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_samples(&data).unwrap();
            prop_assert!(s.min() <= s.median() && s.median() <= s.max());
            prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
            prop_assert!(s.variance() >= 0.0);
            // Quantiles are monotone.
            let q1 = s.quantile(0.25);
            let q2 = s.quantile(0.5);
            let q3 = s.quantile(0.75);
            prop_assert!(q1 <= q2 && q2 <= q3);
        }

        #[test]
        fn prop_normal_quantile_symmetry(p in 0.001f64..0.999) {
            let a = normal_quantile(p);
            let b = normal_quantile(1.0 - p);
            prop_assert!((a + b).abs() < 1e-6);
        }
    }
}
