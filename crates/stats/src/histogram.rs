//! Fixed-width histograms.

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first/last bin.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for v in [1.0, 1.5, 9.0, 4.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[0], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns `None` if `lo >= hi`, either bound is non-finite, or
    /// `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi || bins == 0 {
            return None;
        }
        Some(Self { lo, hi, bins: vec![0; bins], count: 0 })
    }

    /// Adds a sample, clamping out-of-range values into the edge bins.
    /// Non-finite samples are ignored.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let nbins = self.bins.len();
        let idx = if v < self.lo {
            0
        } else if v >= self.hi {
            nbins - 1
        } else {
            let frac = (v - self.lo) / (self.hi - self.lo);
            ((frac * nbins as f64) as usize).min(nbins - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Adds every sample of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let bar_len = (c as usize * width) / max as usize;
            out.push_str(&format!("[{lo:>12.3}, {hi:>12.3}) {c:>8} {}\n", "#".repeat(bar_len)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 0.0, 5).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_none());
        assert!(Histogram::new(0.0, 1.0, 3).is_some());
    }

    #[test]
    fn binning_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0); // first bin
        h.add(9.999); // last bin
        h.add(10.0); // clamped into last bin
        h.add(-5.0); // clamped into first bin
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[9], 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn nonfinite_values_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn extend_and_bounds() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.extend([0.5, 1.5, 2.5, 3.5]);
        assert_eq!(h.bin_counts(), &[1, 1, 1, 1]);
        assert_eq!(h.bin_bounds(1), (1.0, 2.0));
    }

    #[test]
    fn render_contains_all_bins() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 1.5, 1.6]);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_bounds_out_of_range() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_bounds(5);
    }
}
