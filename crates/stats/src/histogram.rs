//! Fixed-width and log-scale (exponential) histograms.

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first/last bin.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for v in [1.0, 1.5, 9.0, 4.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[0], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns `None` if `lo >= hi`, either bound is non-finite, or
    /// `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi || bins == 0 {
            return None;
        }
        Some(Self { lo, hi, bins: vec![0; bins], count: 0 })
    }

    /// Adds a sample, clamping out-of-range values into the edge bins.
    /// Non-finite samples are ignored.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let nbins = self.bins.len();
        let idx = if v < self.lo {
            0
        } else if v >= self.hi {
            nbins - 1
        } else {
            let frac = (v - self.lo) / (self.hi - self.lo);
            ((frac * nbins as f64) as usize).min(nbins - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Adds every sample of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let bar_len = (c as usize * width) / max as usize;
            out.push_str(&format!("[{lo:>12.3}, {hi:>12.3}) {c:>8} {}\n", "#".repeat(bar_len)));
        }
        out
    }
}

/// A histogram with geometrically spaced bin edges over `[lo, hi)` and
/// explicit underflow/overflow bins.
///
/// Latency-style data spans orders of magnitude; fixed-width bins collapse
/// it into one bin plus a long empty tail. Here bin `i` covers
/// `[lo·r^i, lo·r^(i+1))` with `r = (hi/lo)^(1/bins)`, so every decade
/// gets equal resolution. Samples below `lo` (including zero and negative
/// values, which have no logarithm) land in the underflow bin; samples at
/// or above `hi` land in the overflow bin — out-of-range data stays
/// visible instead of silently distorting the edge bins.
///
/// # Examples
///
/// ```
/// use bitdissem_stats::histogram::LogHistogram;
///
/// let mut h = LogHistogram::new(1.0, 1000.0, 3).unwrap();
/// h.extend([0.5, 5.0, 50.0, 500.0, 5000.0]);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.bin_counts(), &[1, 1, 1]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` geometrically spaced bins over
    /// `[lo, hi)`.
    ///
    /// Returns `None` if the bounds are non-finite, `lo <= 0` (log scale
    /// needs a positive origin), `lo >= hi`, or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || lo >= hi || bins == 0 {
            return None;
        }
        Some(Self { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0, count: 0 })
    }

    /// Rebuilds a histogram from externally accumulated per-bin counts —
    /// the merge path for sharded atomic-bin collectors (see
    /// `bitdissem_obs::telemetry`), which share this type's geometric
    /// edges but accumulate counts lock-free elsewhere. The total count
    /// is derived from the bins, so a snapshot taken mid-update is always
    /// internally consistent.
    ///
    /// Returns `None` under the same bound validation as
    /// [`LogHistogram::new`], or when `bin_counts` is empty.
    #[must_use]
    pub fn from_counts(
        lo: f64,
        hi: f64,
        bin_counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
    ) -> Option<Self> {
        let mut h = Self::new(lo, hi, bin_counts.len())?;
        h.count = bin_counts.iter().sum::<u64>() + underflow + overflow;
        h.bins = bin_counts;
        h.underflow = underflow;
        h.overflow = overflow;
        Some(h)
    }

    /// The index a sample would land in: `None` for underflow/overflow,
    /// `Some(bin)` otherwise. Exposed so external collectors can bin with
    /// exactly this histogram's edges.
    #[must_use]
    pub fn bin_index(&self, v: f64) -> Option<usize> {
        if !v.is_finite() || v < self.lo || v >= self.hi {
            return None;
        }
        let nbins = self.bins.len();
        let frac = (v / self.lo).ln() / (self.hi / self.lo).ln();
        Some(((frac * nbins as f64) as usize).min(nbins - 1))
    }

    /// Adds a sample. Values below `lo` count as underflow, values at or
    /// above `hi` as overflow; non-finite samples are ignored.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let nbins = self.bins.len();
            let frac = (v / self.lo).ln() / (self.hi / self.lo).ln();
            // frac is in [0, 1); clamp guards the rounding edge where a
            // value just under `hi` computes frac == 1.0.
            let idx = ((frac * nbins as f64) as usize).min(nbins - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every sample of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }

    /// Total samples recorded, including under- and overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts for the in-range bins.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples that fell below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[lo, hi)` bounds of in-range bin `i`: geometric edges
    /// `lo·r^i` with `r = (hi/lo)^(1/bins)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let ratio = (self.hi / self.lo).powf(1.0 / self.bins.len() as f64);
        (self.lo * ratio.powi(i as i32), self.lo * ratio.powi(i as i32 + 1))
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) estimated as the upper edge of the
    /// bin holding the target rank; underflow resolves to `lo`, overflow
    /// to `hi`. Returns `None` on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_bounds(i).1);
            }
        }
        Some(self.hi)
    }

    /// Renders a compact ASCII bar chart: underflow, each bin, overflow.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max =
            self.bins.iter().copied().chain([self.underflow, self.overflow]).max().unwrap_or(0);
        let max = max.max(1);
        let bar = |c: u64| "#".repeat((c as usize * width) / max as usize);
        let mut out = String::new();
        out.push_str(&format!(
            "[{:>12}, {:>12.3}) {:>8} {}\n",
            "-inf",
            self.lo,
            self.underflow,
            bar(self.underflow)
        ));
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            out.push_str(&format!("[{lo:>12.3}, {hi:>12.3}) {c:>8} {}\n", bar(c)));
        }
        out.push_str(&format!(
            "[{:>12.3}, {:>12}) {:>8} {}\n",
            self.hi,
            "+inf",
            self.overflow,
            bar(self.overflow)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 0.0, 5).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_none());
        assert!(Histogram::new(0.0, 1.0, 3).is_some());
    }

    #[test]
    fn binning_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0); // first bin
        h.add(9.999); // last bin
        h.add(10.0); // clamped into last bin
        h.add(-5.0); // clamped into first bin
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[9], 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn nonfinite_values_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn extend_and_bounds() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.extend([0.5, 1.5, 2.5, 3.5]);
        assert_eq!(h.bin_counts(), &[1, 1, 1, 1]);
        assert_eq!(h.bin_bounds(1), (1.0, 2.0));
    }

    #[test]
    fn render_contains_all_bins() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 1.5, 1.6]);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_bounds_out_of_range() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_bounds(5);
    }

    #[test]
    fn log_construction_validation() {
        assert!(LogHistogram::new(0.0, 10.0, 4).is_none()); // lo must be > 0
        assert!(LogHistogram::new(-1.0, 10.0, 4).is_none());
        assert!(LogHistogram::new(10.0, 1.0, 4).is_none());
        assert!(LogHistogram::new(1.0, 10.0, 0).is_none());
        assert!(LogHistogram::new(1.0, f64::INFINITY, 4).is_none());
        assert!(LogHistogram::new(1.0, 10.0, 4).is_some());
    }

    #[test]
    fn log_bin_edges_are_geometric() {
        // [1, 1000) over 3 bins: edges at 1, 10, 100, 1000.
        let h = LogHistogram::new(1.0, 1000.0, 3).unwrap();
        for (i, (lo, hi)) in [(1.0, 10.0), (10.0, 100.0), (100.0, 1000.0)].iter().enumerate() {
            let (blo, bhi) = h.bin_bounds(i);
            assert!((blo - lo).abs() < 1e-9, "bin {i} lo: {blo} vs {lo}");
            assert!((bhi - hi).abs() < 1e-9, "bin {i} hi: {bhi} vs {hi}");
        }
    }

    #[test]
    fn log_binning_is_by_magnitude() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3).unwrap();
        h.extend([1.0, 2.0, 9.9, 10.0, 99.0, 100.0, 999.0]);
        assert_eq!(h.bin_counts(), &[3, 2, 2]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn log_underflow_and_overflow_bins() {
        let mut h = LogHistogram::new(1.0, 100.0, 2).unwrap();
        h.add(0.0); // no logarithm: underflow, not a crash
        h.add(-5.0);
        h.add(0.999);
        h.add(100.0); // hi itself is exclusive
        h.add(1e12);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_counts(), &[0, 0]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn log_nonfinite_values_ignored() {
        let mut h = LogHistogram::new(1.0, 100.0, 2).unwrap();
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        h.add(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn log_quantiles_resolve_to_bin_edges() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3).unwrap();
        assert_eq!(h.quantile(0.5), None);
        h.extend([2.0, 3.0, 20.0, 200.0]);
        assert!((h.quantile(0.25).unwrap() - 10.0).abs() < 1e-9);
        assert!((h.quantile(0.5).unwrap() - 10.0).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 1000.0).abs() < 1e-9);
        // Underflow pins the low quantiles at lo, overflow the high at hi.
        h.add(0.1);
        h.add(5000.0);
        assert!((h.quantile(0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn log_render_shows_underflow_bins_and_overflow() {
        let mut h = LogHistogram::new(1.0, 100.0, 2).unwrap();
        h.extend([0.5, 5.0, 50.0, 500.0]);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 4); // underflow + 2 bins + overflow
        assert!(s.contains("-inf"));
        assert!(s.contains("+inf"));
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn log_bin_bounds_out_of_range() {
        let h = LogHistogram::new(1.0, 10.0, 2).unwrap();
        let _ = h.bin_bounds(2);
    }
}
