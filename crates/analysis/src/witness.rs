//! Executable Theorem 12: the adversarial-configuration witness.

use serde::{Deserialize, Serialize};

use bitdissem_core::{Configuration, Opinion, Protocol, ProtocolError};

use crate::bias::BiasPolynomial;
use crate::roots::RootStructure;

/// Which branch of the Theorem 12 proof applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WitnessCase {
    /// `F_n ≡ 0` (Voter-like): Lemma 11 applies with the fixed interval
    /// `(a₁, a₂, a₃) = (1/4, 1/2, 3/4)` and correct opinion 1.
    VoterLike,
    /// `F_n < 0` on the chosen interval (Case 1, Figure 2): the protocol
    /// drifts *down*, so it is slow whenever the correct opinion is 1.
    NegativeDrift,
    /// `F_n > 0` on the chosen interval (Case 2, Figure 3): the protocol
    /// drifts *up*, so it is slow whenever the correct opinion is 0.
    PositiveDrift,
}

impl std::fmt::Display for WitnessCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessCase::VoterLike => write!(f, "voter-like (F=0)"),
            WitnessCase::NegativeDrift => write!(f, "case 1 (F<0)"),
            WitnessCase::PositiveDrift => write!(f, "case 2 (F>0)"),
        }
    }
}

/// The concrete adversarial instance produced by the Theorem 12
/// construction for a given protocol and population size: a starting
/// configuration `(z, X₀)` and a threshold state whose crossing the theorem
/// proves takes `Ω(n^{1−ε})` rounds.
///
/// The construction mirrors the proof:
///
/// 1. build the bias polynomial `F_n` and its root structure;
/// 2. if `F_n ≡ 0`, use the Lemma 11 instance;
/// 3. otherwise take the rightmost constant-sign interval
///    `(r^{(k₀−1)}, r^{(k₀)})` and place `(a₁, a₂, a₃)` at its quartiles;
///    the correct opinion is chosen *against* the drift (Cases 1/2), and
///    `X₀` starts in the half of the interval farthest from the target
///    consensus, so reaching consensus requires crossing the whole
///    martingale region.
///
/// Since the convergence time dominates the crossing time, measuring the
/// first crossing of [`LowerBoundWitness::threshold`] (experiment E1) gives
/// a *lower* bound certificate on the empirical convergence time.
///
/// # Examples
///
/// ```
/// use bitdissem_core::dynamics::Minority;
/// use bitdissem_analysis::witness::{LowerBoundWitness, WitnessCase};
///
/// let w = LowerBoundWitness::construct(&Minority::new(3)?, 1024)?;
/// // Minority(3) drifts downward on (1/2, 1): Case 1.
/// assert_eq!(w.case(), WitnessCase::NegativeDrift);
/// assert_eq!(w.start().correct(), bitdissem_core::Opinion::One);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowerBoundWitness {
    case: WitnessCase,
    interval: (f64, f64),
    a: (f64, f64, f64),
    start: Configuration,
    threshold: u64,
}

impl LowerBoundWitness {
    /// Runs the Theorem 12 construction for `protocol` at size `n`.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` (the construction needs room for the interval).
    pub fn construct<P: Protocol + ?Sized>(protocol: &P, n: u64) -> Result<Self, ProtocolError> {
        assert!(n >= 8, "need n >= 8 for a meaningful witness");
        let f = BiasPolynomial::build(protocol, n)?;
        Ok(Self::from_bias(&f))
    }

    /// Runs the construction from a pre-built bias polynomial.
    #[must_use]
    pub fn from_bias(f: &BiasPolynomial) -> Self {
        let n = f.n();
        let rs = RootStructure::analyze(f);
        let (case, lo, hi) = match rs.rightmost_interval() {
            None => (WitnessCase::VoterLike, 0.0, 1.0),
            Some((lo, hi, sign)) => {
                if sign < 0 {
                    (WitnessCase::NegativeDrift, lo, hi)
                } else {
                    (WitnessCase::PositiveDrift, lo, hi)
                }
            }
        };
        let w = hi - lo;
        let a1 = lo + 0.25 * w;
        let a2 = lo + 0.50 * w;
        let a3 = lo + 0.75 * w;
        match case {
            WitnessCase::VoterLike | WitnessCase::NegativeDrift => {
                // Correct opinion 1; start between a₂ and a₃; the theorem
                // bounds the crossing of a₃·n from below.
                let correct = Opinion::One;
                let mut x0 = ((((a2 + a3) / 2.0) * n as f64).round() as u64).clamp(1, n - 1);
                let mut threshold = (a3 * n as f64).floor() as u64;
                // Degenerate (very narrow) intervals can round the start
                // onto the threshold; keep a strict one-agent gap so the
                // witness is always a non-trivial crossing instance.
                if x0 >= threshold {
                    x0 = threshold.saturating_sub(1).max(1);
                }
                if x0 >= threshold {
                    threshold = x0 + 1;
                }
                let start =
                    Configuration::new(n, correct, x0).expect("clamped state is consistent");
                Self { case, interval: (lo, hi), a: (a1, a2, a3), start, threshold }
            }
            WitnessCase::PositiveDrift => {
                // Correct opinion 0; start between a₁ and a₂; the theorem
                // bounds the crossing of a₁·n from below.
                let correct = Opinion::Zero;
                let mut x0 = ((((a1 + a2) / 2.0) * n as f64).round() as u64).clamp(1, n - 1);
                let mut threshold = (a1 * n as f64).ceil() as u64;
                if x0 <= threshold {
                    x0 = (threshold + 1).min(n - 1);
                }
                if x0 <= threshold {
                    threshold = x0 - 1;
                }
                let start =
                    Configuration::new(n, correct, x0).expect("clamped state is consistent");
                Self { case, interval: (lo, hi), a: (a1, a2, a3), start, threshold }
            }
        }
    }

    /// Which proof case produced this witness.
    #[must_use]
    pub fn case(&self) -> WitnessCase {
        self.case
    }

    /// The constant-sign interval `(r^{(k₀−1)}, r^{(k₀)})` used.
    #[must_use]
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }

    /// The interval constants `(a₁, a₂, a₃)` of Theorem 6 / Corollary 10.
    #[must_use]
    pub fn interval_constants(&self) -> (f64, f64, f64) {
        self.a
    }

    /// The adversarial starting configuration.
    #[must_use]
    pub fn start(&self) -> Configuration {
        self.start
    }

    /// The threshold state whose crossing is proven slow: the process must
    /// reach `≥ threshold` (Case 1 / Voter-like) or `≤ threshold` (Case 2)
    /// before it can converge.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Returns `true` if a state `x` has crossed the slow threshold in the
    /// direction of the correct consensus.
    #[must_use]
    pub fn crossed(&self, x: u64) -> bool {
        match self.case {
            WitnessCase::VoterLike | WitnessCase::NegativeDrift => x >= self.threshold,
            WitnessCase::PositiveDrift => x <= self.threshold,
        }
    }

    /// The theorem's predicted lower bound on the crossing time, in rounds:
    /// `n^{1−ε}` for the given `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    #[must_use]
    pub fn predicted_min_rounds(&self, epsilon: f64) -> f64 {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        (self.start.n() as f64).powf(1.0 - epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Majority, Minority, PowerVoter, Voter};

    #[test]
    fn voter_yields_lemma11_instance() {
        let w = LowerBoundWitness::construct(&Voter::new(1).unwrap(), 1000).unwrap();
        assert_eq!(w.case(), WitnessCase::VoterLike);
        let (a1, a2, a3) = w.interval_constants();
        assert!((a1 - 0.25).abs() < 1e-12);
        assert!((a2 - 0.5).abs() < 1e-12);
        assert!((a3 - 0.75).abs() < 1e-12);
        assert_eq!(w.start().ones(), 625);
        assert_eq!(w.threshold(), 750);
        assert!(!w.crossed(700));
        assert!(w.crossed(750));
    }

    #[test]
    fn minority_is_case1_with_half_one_interval() {
        let w = LowerBoundWitness::construct(&Minority::new(3).unwrap(), 1024).unwrap();
        assert_eq!(w.case(), WitnessCase::NegativeDrift);
        let (lo, hi) = w.interval();
        assert!((lo - 0.5).abs() < 1e-6);
        assert!((hi - 1.0).abs() < 1e-6);
        assert_eq!(w.start().correct(), Opinion::One);
        // Start is at (a2+a3)/2 = lo + 0.625·w = 0.8125.
        assert_eq!(w.start().ones(), (0.8125f64 * 1024.0).round() as u64);
    }

    #[test]
    fn positive_drift_protocol_is_case2() {
        let w = LowerBoundWitness::construct(&PowerVoter::new(3, 0.5).unwrap(), 512).unwrap();
        assert_eq!(w.case(), WitnessCase::PositiveDrift);
        assert_eq!(w.start().correct(), Opinion::Zero);
        assert!(w.crossed(w.threshold()));
        assert!(!w.crossed(w.threshold() + 1));
    }

    #[test]
    fn majority_rightmost_interval_is_positive_case2() {
        // Majority drifts up on (1/2, 1): correct opinion 0 is the hard
        // direction.
        let w = LowerBoundWitness::construct(&Majority::new(3).unwrap(), 256).unwrap();
        assert_eq!(w.case(), WitnessCase::PositiveDrift);
        assert_eq!(w.start().correct(), Opinion::Zero);
        // X0 = (a1+a2)/2·n with interval (1/2, 1): 0.6875·n.
        assert_eq!(w.start().ones(), (0.6875f64 * 256.0).round() as u64);
    }

    #[test]
    fn predicted_bound_scales() {
        let w = LowerBoundWitness::construct(&Voter::new(1).unwrap(), 10_000).unwrap();
        let b = w.predicted_min_rounds(0.1);
        assert!((b - 10_000f64.powf(0.9)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let w = LowerBoundWitness::construct(&Voter::new(1).unwrap(), 100).unwrap();
        let _ = w.predicted_min_rounds(1.5);
    }

    #[test]
    #[should_panic(expected = "n >= 8")]
    fn rejects_tiny_n() {
        let _ = LowerBoundWitness::construct(&Voter::new(1).unwrap(), 4);
    }
}
