//! Root structure of the bias polynomial.

use serde::{Deserialize, Serialize};

use bitdissem_poly::roots::{roots_in_unit_interval, sign_intervals};
use bitdissem_poly::sturm::count_distinct_roots;

use crate::bias::BiasPolynomial;

/// The roots of `F_n` in `[0, 1]` together with its maximal constant-sign
/// intervals — the combinatorial object that drives the Theorem 12 case
/// split.
///
/// # Examples
///
/// ```
/// use bitdissem_core::dynamics::Minority;
/// use bitdissem_analysis::{bias::BiasPolynomial, roots::RootStructure};
///
/// let f = BiasPolynomial::build(&Minority::new(3)?, 100)?;
/// let rs = RootStructure::analyze(&f);
/// // Minority(3): F(p) = −p + 3p(1−p)² + p³ has roots 0, 1/2, 1.
/// assert_eq!(rs.roots().len(), 3);
/// assert_eq!(rs.sign_intervals().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootStructure {
    roots: Vec<f64>,
    intervals: Vec<(f64, f64, i8)>,
    identically_zero: bool,
}

impl RootStructure {
    /// Default root-refinement tolerance.
    pub const DEFAULT_TOL: f64 = 1e-12;

    /// Analyzes the root structure of a bias polynomial.
    #[must_use]
    pub fn analyze(f: &BiasPolynomial) -> Self {
        if f.is_identically_zero() {
            return Self { roots: Vec::new(), intervals: Vec::new(), identically_zero: true };
        }
        let p = f.as_polynomial();
        let roots = roots_in_unit_interval(p, Self::DEFAULT_TOL);
        let intervals = sign_intervals(p, &roots);
        Self { roots, intervals, identically_zero: false }
    }

    /// Sorted sign-crossing roots of `F_n` in `[0, 1]` (including the
    /// Proposition-3 endpoint roots 0 and 1).
    #[must_use]
    pub fn roots(&self) -> &[f64] {
        &self.roots
    }

    /// Maximal open intervals of constant non-zero sign, as
    /// `(lo, hi, sign)` with `sign ∈ {−1, +1}`.
    #[must_use]
    pub fn sign_intervals(&self) -> &[(f64, f64, i8)] {
        &self.intervals
    }

    /// Whether `F_n ≡ 0` (the Lemma 11 / Voter case).
    #[must_use]
    pub fn is_identically_zero(&self) -> bool {
        self.identically_zero
    }

    /// The rightmost constant-sign interval — the computational counterpart
    /// of the interval `(r^{(k₀−1)}, r^{(k₀)})` used in the Theorem 12
    /// proof (with `r^{(k₀)} → 1`).
    ///
    /// Returns `None` for the identically-zero case or if no sign interval
    /// exists (numerically flat polynomial).
    #[must_use]
    pub fn rightmost_interval(&self) -> Option<(f64, f64, i8)> {
        self.intervals.last().copied()
    }

    /// Independent root-count cross-check via Sturm sequences (ablation
    /// A3). Returns the number of distinct roots counted in `(−δ, 1 + δ]`.
    #[must_use]
    pub fn sturm_root_count(f: &BiasPolynomial) -> usize {
        if f.is_identically_zero() {
            return 0;
        }
        count_distinct_roots(f.as_polynomial(), -1e-9, 1.0 + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Majority, Minority, PowerVoter, TwoChoices, Voter};

    #[test]
    fn voter_structure_is_trivial() {
        let f = BiasPolynomial::build(&Voter::new(2).unwrap(), 100).unwrap();
        let rs = RootStructure::analyze(&f);
        assert!(rs.is_identically_zero());
        assert!(rs.roots().is_empty());
        assert!(rs.rightmost_interval().is_none());
        assert_eq!(RootStructure::sturm_root_count(&f), 0);
    }

    #[test]
    fn minority3_roots_are_0_half_1() {
        let f = BiasPolynomial::build(&Minority::new(3).unwrap(), 100).unwrap();
        let rs = RootStructure::analyze(&f);
        let expect = [0.0, 0.5, 1.0];
        assert_eq!(rs.roots().len(), 3);
        for (r, e) in rs.roots().iter().zip(expect) {
            assert!((r - e).abs() < 1e-9, "{r} vs {e}");
        }
        // Positive on (0, 1/2) — drift toward the balanced configuration —
        // then negative on (1/2, 1).
        assert_eq!(rs.sign_intervals()[0].2, 1);
        assert_eq!(rs.sign_intervals()[1].2, -1);
        assert_eq!(rs.rightmost_interval().unwrap().2, -1);
    }

    #[test]
    fn majority3_rightmost_interval_is_positive() {
        let f = BiasPolynomial::build(&Majority::new(3).unwrap(), 100).unwrap();
        let rs = RootStructure::analyze(&f);
        let (lo, hi, sign) = rs.rightmost_interval().unwrap();
        assert!((lo - 0.5).abs() < 1e-9);
        assert!((hi - 1.0).abs() < 1e-9);
        assert_eq!(sign, 1);
    }

    #[test]
    fn power_voter_has_single_interior_interval() {
        let f = BiasPolynomial::build(&PowerVoter::new(3, 2.0).unwrap(), 100).unwrap();
        let rs = RootStructure::analyze(&f);
        assert_eq!(rs.sign_intervals().len(), 1);
        let (lo, hi, sign) = rs.rightmost_interval().unwrap();
        assert!(lo < 0.01 && hi > 0.99);
        assert_eq!(sign, -1);
    }

    #[test]
    fn two_choices_structure() {
        // TwoChoices: P1 = p² + 2p(1−p)·1 + ... compute F:
        // g⁰=[0,0,1], g¹=[0,1,1] ⇒
        // F(p) = −p + p²(1−p)·2·[p·1+(1−p)·0] … easier: trust signs at
        // sample points: symmetric drift toward nearest consensus.
        let f = BiasPolynomial::build(&TwoChoices::new(), 100).unwrap();
        let rs = RootStructure::analyze(&f);
        assert!(f.eval(0.25) < 0.0);
        assert!(f.eval(0.75) > 0.0);
        assert!(rs.roots().len() >= 3);
    }

    #[test]
    fn sturm_agrees_with_bernstein_on_suite() {
        for f in [
            BiasPolynomial::build(&Minority::new(3).unwrap(), 64).unwrap(),
            BiasPolynomial::build(&Majority::new(3).unwrap(), 64).unwrap(),
            BiasPolynomial::build(&Minority::new(5).unwrap(), 64).unwrap(),
        ] {
            let rs = RootStructure::analyze(&f);
            assert_eq!(
                rs.roots().len(),
                RootStructure::sturm_root_count(&f),
                "{}",
                f.protocol_name()
            );
        }
    }

    #[test]
    fn intervals_partition_consistently() {
        let f = BiasPolynomial::build(&Minority::new(5).unwrap(), 128).unwrap();
        let rs = RootStructure::analyze(&f);
        for w in rs.sign_intervals().windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12, "intervals must be ordered");
        }
        for &(lo, hi, sign) in rs.sign_intervals() {
            let mid = 0.5 * (lo + hi);
            assert_eq!(f.eval(mid) > 0.0, sign > 0, "sign mismatch at {mid}");
        }
    }
}
