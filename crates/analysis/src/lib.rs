//! The lower-bound machinery of D'Archivio & Vacus (PODC 2024), executable.
//!
//! The paper's central idea is to translate a memory-less protocol into its
//! **bias polynomial** (Eq. 3)
//!
//! ```text
//! F_n(p) = −p + Σ_k C(ℓ,k) p^k (1−p)^{ℓ−k} · (p·g¹(k) + (1−p)·g⁰(k))
//! ```
//!
//! of degree at most `ℓ + 1`, and to derive the `Ω(n^{1−ε})` lower bound
//! (Theorem 1) from the structure of its roots in `[0, 1]`. This crate makes
//! each proof ingredient a concrete, testable artifact:
//!
//! * [`bias::BiasPolynomial`] — Eq. 3, built symbolically from any protocol;
//! * [`roots::RootStructure`] — the roots and constant-sign intervals of
//!   `F_n` on `[0, 1]`;
//! * [`witness::LowerBoundWitness`] — the Theorem 12 case split made
//!   executable: given a protocol and `n`, produce the adversarial initial
//!   configuration and the threshold whose crossing provably takes
//!   `Ω(n^{1−ε})` rounds;
//! * [`drift`] — the Proposition 5 drift sandwich
//!   `E[X_{t+1} | X_t = x] = x + n·F_n(x/n) ± 1`;
//! * [`jump`] — the Proposition 4 one-step jump bound and its constant
//!   `y(c, ℓ) = 1 − (1−c)^{ℓ+1}/2`;
//! * [`claim17`] — the polynomial flatness bound near a double endpoint;
//! * [`concentration`] — Hoeffding and the large-jump Azuma–Hoeffding
//!   inequality (Theorem 16);
//! * [`doob`] — the Doob decomposition tracker used by the Theorem 6 proof
//!   (Figure 1 of the paper), replayable along simulated trajectories.
//!
//! # Example
//!
//! ```
//! use bitdissem_core::dynamics::Voter;
//! use bitdissem_analysis::bias::BiasPolynomial;
//!
//! // The Voter's bias polynomial is identically zero (Section 4.1).
//! let f = BiasPolynomial::build(&Voter::new(3)?, 1000)?;
//! assert!(f.is_identically_zero());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod claim17;
pub mod concentration;
pub mod doob;
pub mod drift;
pub mod jump;
pub mod roots;
pub mod witness;

pub use bias::BiasPolynomial;
pub use roots::RootStructure;
pub use witness::{LowerBoundWitness, WitnessCase};
