//! The bias polynomial `F_n` (Eq. 3 of the paper).

use serde::{Deserialize, Serialize};

use bitdissem_core::{GTable, Opinion, Protocol, ProtocolError, ProtocolExt};
use bitdissem_poly::binomial::choose_f64;
use bitdissem_poly::{Bernstein, Polynomial};

/// The bias polynomial of a protocol at population size `n`:
///
/// ```text
/// F_n(p) = −p + Σ_{k=0}^{ℓ} C(ℓ,k) p^k (1−p)^{ℓ−k} (p·g¹(k) + (1−p)·g⁰(k)).
/// ```
///
/// `F_n(p)` is the expected one-round change of the *fraction* of
/// 1-opinions when that fraction is `p` (ignoring the `±1/n` source
/// correction of Proposition 5). It has degree at most `ℓ + 1`, hence a
/// bounded number of roots in `[0, 1]` — the pivot of the whole lower-bound
/// argument.
///
/// # Examples
///
/// ```
/// use bitdissem_core::dynamics::Minority;
/// use bitdissem_analysis::bias::BiasPolynomial;
///
/// let f = BiasPolynomial::build(&Minority::new(3)?, 100)?;
/// // Minority drifts downward above p = 1/2 …
/// assert!(f.eval(0.75) < 0.0);
/// // … and upward below.
/// assert!(f.eval(0.25) > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasPolynomial {
    n: u64,
    ell: usize,
    power: Polynomial,
    bernstein: Bernstein,
    protocol_name: String,
}

impl BiasPolynomial {
    /// Builds `F_n` for `protocol` at population size `n`.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    pub fn build<P: Protocol + ?Sized>(protocol: &P, n: u64) -> Result<Self, ProtocolError> {
        let table = protocol.to_table(n)?;
        Ok(Self::from_table(&table, n, protocol.name()))
    }

    /// Builds `F_n` directly from a decision table.
    #[must_use]
    pub fn from_table(table: &GTable, n: u64, protocol_name: String) -> Self {
        let ell = table.sample_size();
        let x = Polynomial::x();
        let one_minus_x = Polynomial::new(vec![1.0, -1.0]);
        let mut f = x.scale(-1.0);
        for k in 0..=ell {
            // basis_k(p) = C(ℓ,k) p^k (1−p)^{ℓ−k}
            let mut basis = Polynomial::constant(choose_f64(ell as u64, k as u64));
            for _ in 0..k {
                basis = &basis * &x;
            }
            for _ in 0..(ell - k) {
                basis = &basis * &one_minus_x;
            }
            let g1 = table.g(Opinion::One, k);
            let g0 = table.g(Opinion::Zero, k);
            // mix(p) = p·g¹(k) + (1−p)·g⁰(k)
            let mix = Polynomial::new(vec![g0, g1 - g0]);
            f = &f + &(&basis * &mix);
        }
        // Numerical noise from the expansion is far below 1e-12 for ℓ ≤ ~40.
        let power = f.cleaned(1e-12);
        let bernstein = Bernstein::from_polynomial(&power);
        Self { n, ell, power, bernstein, protocol_name }
    }

    /// Population size the polynomial was built for.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample size `ℓ` of the underlying protocol.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.ell
    }

    /// Name of the protocol (for reports).
    #[must_use]
    pub fn protocol_name(&self) -> &str {
        &self.protocol_name
    }

    /// Power-basis form of `F_n`.
    #[must_use]
    pub fn as_polynomial(&self) -> &Polynomial {
        &self.power
    }

    /// Bernstein form of `F_n` on `[0, 1]` (numerically stable evaluation
    /// and root isolation).
    #[must_use]
    pub fn as_bernstein(&self) -> &Bernstein {
        &self.bernstein
    }

    /// Evaluates `F_n(p)` (de Casteljau on the Bernstein form).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn eval(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "F_n is defined on [0,1], got {p}");
        self.bernstein.eval(p)
    }

    /// Returns `true` if `F_n` is (numerically) the zero polynomial — the
    /// Voter-like case handled by Lemma 11.
    #[must_use]
    pub fn is_identically_zero(&self) -> bool {
        self.power.is_zero() || self.power.max_abs_coeff() < 1e-11
    }

    /// The drift in *agents per round* at state `x`: `n · F_n(x/n)`.
    ///
    /// # Panics
    ///
    /// Panics if `x > n`.
    #[must_use]
    pub fn drift_at(&self, x: u64) -> f64 {
        assert!(x <= self.n, "state {x} exceeds population {}", self.n);
        self.n as f64 * self.eval(x as f64 / self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{LazyVoter, Majority, Minority, PowerVoter, Stay, Voter};
    use proptest::prelude::*;

    #[test]
    fn voter_bias_is_identically_zero() {
        for ell in 1..=6 {
            let f = BiasPolynomial::build(&Voter::new(ell).unwrap(), 100).unwrap();
            assert!(f.is_identically_zero(), "ell={ell}: {:?}", f.as_polynomial());
        }
    }

    #[test]
    fn lazy_voter_bias_is_identically_zero() {
        let f = BiasPolynomial::build(&LazyVoter::new(4, 0.7).unwrap(), 100).unwrap();
        assert!(f.is_identically_zero());
    }

    #[test]
    fn stay_bias_is_identically_zero() {
        let f = BiasPolynomial::build(&Stay::new(2), 100).unwrap();
        assert!(f.is_identically_zero());
    }

    #[test]
    fn minority3_bias_matches_hand_expansion() {
        // Minority ℓ=3: g = [0,1,0,1] (own-independent), so
        // F(p) = −p + 3p(1−p)² + p³.
        let f = BiasPolynomial::build(&Minority::new(3).unwrap(), 50).unwrap();
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let expect = -p + 3.0 * p * (1.0 - p) * (1.0 - p) + p * p * p;
            assert!((f.eval(p) - expect).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn majority3_bias_sign_structure() {
        // 3-majority: F(p) = −p + 3p²(1−p) + p³; roots at 0, 1/2, 1;
        // negative below 1/2 (drifts to 0), positive above.
        let f = BiasPolynomial::build(&Majority::new(3).unwrap(), 50).unwrap();
        assert!(f.eval(0.25) < 0.0);
        assert!(f.eval(0.75) > 0.0);
        assert!(f.eval(0.5).abs() < 1e-12);
        assert!(f.eval(0.0).abs() < 1e-15);
        assert!(f.eval(1.0).abs() < 1e-12);
    }

    #[test]
    fn prop3_forces_endpoint_roots() {
        // For any Prop-3-compliant protocol, F_n(0) = F_n(1) = 0.
        for ell in 1..=5 {
            let f = BiasPolynomial::build(&Minority::new(ell).unwrap(), 64).unwrap();
            assert!(f.eval(0.0).abs() < 1e-12);
            assert!(f.eval(1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn power_voter_case_signs() {
        // α > 1 ⇒ F < 0 on (0,1) (Case 1); α < 1 ⇒ F > 0 (Case 2).
        let down = BiasPolynomial::build(&PowerVoter::new(4, 2.0).unwrap(), 100).unwrap();
        let up = BiasPolynomial::build(&PowerVoter::new(4, 0.5).unwrap(), 100).unwrap();
        for i in 1..10 {
            let p = i as f64 / 10.0;
            assert!(down.eval(p) < 0.0, "alpha=2, p={p}: {}", down.eval(p));
            assert!(up.eval(p) > 0.0, "alpha=0.5, p={p}: {}", up.eval(p));
        }
    }

    #[test]
    fn degree_is_at_most_ell_plus_one() {
        for ell in 1..=7 {
            let f = BiasPolynomial::build(&Minority::new(ell).unwrap(), 64).unwrap();
            if let Some(d) = f.as_polynomial().degree() {
                assert!(d <= ell + 1, "ell={ell}, degree {d}");
            }
        }
    }

    #[test]
    fn drift_at_scales_eval() {
        let f = BiasPolynomial::build(&Minority::new(3).unwrap(), 200).unwrap();
        let x = 50;
        assert!((f.drift_at(x) - 200.0 * f.eval(0.25)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "defined on [0,1]")]
    fn eval_outside_unit_interval_panics() {
        let f = BiasPolynomial::build(&Voter::new(1).unwrap(), 10).unwrap();
        let _ = f.eval(1.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_bernstein_and_power_agree(
            g in proptest::collection::vec(0.0f64..=1.0, 2..8),
            p in 0.0f64..=1.0,
        ) {
            let table = bitdissem_core::GTable::symmetric(g).unwrap();
            let f = BiasPolynomial::from_table(&table, 100, "random".into());
            let via_power = f.as_polynomial().eval(p);
            prop_assert!((f.eval(p) - via_power).abs() < 1e-9);
        }

        #[test]
        fn prop_bias_is_bounded_by_one(
            g0 in proptest::collection::vec(0.0f64..=1.0, 2..8),
            p in 0.0f64..=1.0,
        ) {
            // F_n(p) = E[next fraction] − p ∈ [−1, 1] always.
            let table = bitdissem_core::GTable::symmetric(g0).unwrap();
            let f = BiasPolynomial::from_table(&table, 100, "random".into());
            prop_assert!(f.eval(p).abs() <= 1.0 + 1e-9);
        }
    }
}
