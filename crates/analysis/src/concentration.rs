//! The concentration inequalities of Appendix A, as computable bounds.

/// Hoeffding's bound (Theorem 15): for a sum `X` of `n` i.i.d. `{0,1}`
/// variables with mean `μ`,
/// `P(X ≤ μ − δ), P(X ≥ μ + δ) ≤ exp(−2δ²/n)`.
///
/// Returns that tail bound.
///
/// # Panics
///
/// Panics if `n == 0` or `delta < 0`.
///
/// # Examples
///
/// ```
/// use bitdissem_analysis::concentration::hoeffding_tail;
/// let b = hoeffding_tail(100, 30.0);
/// assert!((b - (-18.0f64).exp()).abs() < 1e-18);
/// ```
#[must_use]
pub fn hoeffding_tail(n: u64, delta: f64) -> f64 {
    assert!(n > 0, "need at least one variable");
    assert!(delta >= 0.0, "delta must be non-negative");
    (-2.0 * delta * delta / n as f64).exp().min(1.0)
}

/// The deviation `δ` for which the Hoeffding tail equals `prob`:
/// `δ = sqrt(n·ln(1/prob)/2)`.
///
/// # Panics
///
/// Panics if `prob` is not in `(0, 1]` or `n == 0`.
#[must_use]
pub fn hoeffding_radius(n: u64, prob: f64) -> f64 {
    assert!(n > 0, "need at least one variable");
    assert!(prob > 0.0 && prob <= 1.0, "prob must be in (0,1]");
    (n as f64 * (1.0 / prob).ln() / 2.0).sqrt()
}

/// The large-jump Azuma–Hoeffding inequality (Theorem 16): for a martingale
/// with `P(∃t ≤ T, |X_t − X_{t−1}| > c) ≤ p`,
/// `P(|X_T − X_0| > δ) ≤ 2·exp(−δ²/(2·T·c²)) + p`.
///
/// Returns that bound (clamped to 1).
///
/// # Panics
///
/// Panics if `t == 0`, `c <= 0`, `delta < 0` or `p < 0`.
#[must_use]
pub fn azuma_large_jump_tail(t: u64, c: f64, p: f64, delta: f64) -> f64 {
    assert!(t > 0, "need at least one step");
    assert!(c > 0.0, "increment bound must be positive");
    assert!(delta >= 0.0 && p >= 0.0, "delta and p must be non-negative");
    (2.0 * (-delta * delta / (2.0 * t as f64 * c * c)).exp() + p).min(1.0)
}

/// The Theorem 6 parameter pack: for target horizon `T = n^{1−ε}`, per-step
/// increments are bounded by `c = n^{1/2 + ε/4}` except with probability
/// `2·T·exp(−2·n^{ε/2})`; plugging into [`azuma_large_jump_tail`] with
/// `δ = α·n` reproduces Eq. 9 of the paper. Returns the full bound on
/// `P(∃t ≤ T, |M_t − M_0| > α·n)`.
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)` or `alpha <= 0`.
#[must_use]
pub fn theorem6_confinement_bound(n: u64, epsilon: f64, alpha: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(alpha > 0.0, "alpha must be positive");
    let nf = n as f64;
    let t = nf.powf(1.0 - epsilon);
    // First term of Eq. 9: 2T·exp(−α²/2 · n^{ε/2}).
    let term1 = 2.0 * t * (-(alpha * alpha / 2.0) * nf.powf(epsilon / 2.0)).exp();
    // Second term: 2T²·exp(−2·n^{ε/2}).
    let term2 = 2.0 * t * t * (-2.0 * nf.powf(epsilon / 2.0)).exp();
    (term1 + term2).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hoeffding_matches_formula() {
        let b = hoeffding_tail(400, 40.0);
        assert!((b - (-8.0f64).exp()).abs() < 1e-12);
        assert_eq!(hoeffding_tail(10, 0.0), 1.0);
    }

    #[test]
    fn hoeffding_radius_inverts_tail() {
        let n = 250;
        let prob = 1e-6;
        let delta = hoeffding_radius(n, prob);
        assert!((hoeffding_tail(n, delta) - prob).abs() < prob * 1e-9);
    }

    #[test]
    fn azuma_reduces_to_plain_azuma_when_p_zero() {
        let b = azuma_large_jump_tail(100, 1.0, 0.0, 30.0);
        assert!((b - 2.0 * (-4.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn azuma_adds_jump_probability() {
        let base = azuma_large_jump_tail(100, 1.0, 0.0, 30.0);
        let with_p = azuma_large_jump_tail(100, 1.0, 0.01, 30.0);
        assert!((with_p - base - 0.01).abs() < 1e-12);
    }

    #[test]
    fn theorem6_bound_vanishes_for_large_n() {
        // The confinement failure probability must go to 0 (the paper shows
        // o(n⁻²)). The bound is asymptotic: at small n the clamp at 1 is
        // active, so we compare a small-n value against a large-n value
        // where the exponential has kicked in.
        let b_small = theorem6_confinement_bound(1 << 10, 0.8, 0.5);
        let b_large = theorem6_confinement_bound(1 << 20, 0.8, 0.5);
        assert!(b_large < b_small, "{b_large} !< {b_small}");
        assert!(b_large < 1e-6, "bound at n=2^20: {b_large}");
    }

    #[test]
    fn bounds_are_probabilities() {
        assert!(hoeffding_tail(5, 0.1) <= 1.0);
        assert!(azuma_large_jump_tail(1, 0.1, 0.5, 0.0) <= 1.0);
        assert!(theorem6_confinement_bound(16, 0.3, 0.01) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn theorem6_rejects_bad_epsilon() {
        let _ = theorem6_confinement_bound(100, 0.0, 0.1);
    }

    proptest! {
        #[test]
        fn prop_hoeffding_monotone_in_delta(n in 1u64..1000, d1 in 0.0f64..50.0, d2 in 0.0f64..50.0) {
            let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(hoeffding_tail(n, hi) <= hoeffding_tail(n, lo) + 1e-15);
        }

        #[test]
        fn prop_empirical_hoeffding_validity(n in 10u64..200, seed in 0u64..1000) {
            // Crude empirical check: simulate Bernoulli(1/2) sums and verify
            // the tail bound is never beaten by the empirical frequency by a
            // wide margin at δ = √n.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let delta = (n as f64).sqrt();
            let mu = n as f64 / 2.0;
            let reps = 200;
            let mut exceed = 0;
            for _ in 0..reps {
                let x: u64 = (0..n).map(|_| u64::from(rng.random::<bool>())).sum();
                if (x as f64) >= mu + delta {
                    exceed += 1;
                }
            }
            let bound = hoeffding_tail(n, delta);
            // e^{-2} ≈ 0.135; allow generous sampling slack.
            prop_assert!((exceed as f64 / reps as f64) <= bound + 0.12);
        }
    }
}
