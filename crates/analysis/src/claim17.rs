//! Claim 17: polynomials vanishing at two nearby points are flat between
//! them.

use bitdissem_poly::{Bernstein, Polynomial};

/// A derivative bound `C = sup_{[0,1]} |p'|`, computed rigorously from the
/// Bernstein coefficients of `p'` (whose maximum absolute coefficient
/// bounds the function on `[0, 1]` since the basis is a partition of
/// unity). This is the constant `C₀·2` of Claim 17.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::Polynomial;
/// use bitdissem_analysis::claim17::derivative_sup_bound;
///
/// let p = Polynomial::new(vec![0.0, 1.0]); // p(x) = x, p' = 1
/// assert!((derivative_sup_bound(&p) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn derivative_sup_bound(p: &Polynomial) -> f64 {
    let d = p.derivative();
    if d.is_zero() {
        return 0.0;
    }
    Bernstein::from_polynomial(&d).max_abs_coeff()
}

/// The Claim 17 bound: if `p(a) = p(b) = 0` with `0 ≤ a ≤ b ≤ 1`, then for
/// every `x ∈ [a, b]`, `|p(x)| ≤ C₀ · (b − a)` with `C₀ = sup |p'| / 2`.
/// Returns that bound.
///
/// # Panics
///
/// Panics if `a > b` or either endpoint is outside `[0, 1]`.
#[must_use]
pub fn flatness_bound(p: &Polynomial, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b), "endpoints in [0,1]");
    assert!(a <= b, "need a <= b");
    derivative_sup_bound(p) / 2.0 * (b - a)
}

/// Empirically verifies Claim 17 on a grid: returns the worst ratio
/// `|p(x)| / bound` over `x ∈ [a, b]` (values `≤ 1` confirm the claim;
/// meaningful only when `p(a) ≈ p(b) ≈ 0`).
///
/// # Panics
///
/// Same conditions as [`flatness_bound`], plus `grid ≥ 2`.
#[must_use]
pub fn verify_on_grid(p: &Polynomial, a: f64, b: f64, grid: usize) -> f64 {
    assert!(grid >= 2, "need at least two grid points");
    let bound = flatness_bound(p, a, b);
    if bound == 0.0 {
        return 0.0;
    }
    let mut worst: f64 = 0.0;
    for i in 0..=grid {
        let x = a + (b - a) * i as f64 / grid as f64;
        worst = worst.max(p.eval(x).abs() / bound);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn derivative_bound_of_constants_is_zero() {
        assert_eq!(derivative_sup_bound(&Polynomial::constant(5.0)), 0.0);
        assert_eq!(derivative_sup_bound(&Polynomial::zero()), 0.0);
    }

    #[test]
    fn derivative_bound_dominates_samples() {
        let p = Polynomial::new(vec![1.0, -3.0, 2.0, 4.0]);
        let bound = derivative_sup_bound(&p);
        let d = p.derivative();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert!(d.eval(x).abs() <= bound + 1e-9, "x={x}");
        }
    }

    #[test]
    fn claim17_holds_for_double_root_quadratic() {
        // p = (x − 0.4)(x − 0.6): vanishes at both endpoints of [0.4, 0.6].
        let p = Polynomial::from_roots(&[0.4, 0.6]);
        let worst = verify_on_grid(&p, 0.4, 0.6, 1000);
        assert!(worst <= 1.0 + 1e-9, "worst ratio {worst}");
    }

    #[test]
    fn claim17_shrinks_with_interval() {
        let p = Polynomial::from_roots(&[0.45, 0.55]);
        let wide = flatness_bound(&p, 0.3, 0.7);
        let narrow = flatness_bound(&p, 0.45, 0.55);
        assert!(narrow < wide);
    }

    #[test]
    #[should_panic(expected = "a <= b")]
    fn rejects_inverted_interval() {
        let _ = flatness_bound(&Polynomial::x(), 0.7, 0.3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_claim17_on_random_double_rooted_polynomials(
            a in 0.1f64..0.45,
            width in 0.01f64..0.4,
            extra in proptest::collection::vec(-2.0f64..2.0, 0..3),
        ) {
            let b = a + width;
            // p = (x−a)(x−b)·q(x) vanishes at a and b by construction.
            let mut roots = vec![a, b];
            roots.extend(extra.iter().copied());
            let p = Polynomial::from_roots(&roots);
            let worst = verify_on_grid(&p, a, b, 200);
            prop_assert!(worst <= 1.0 + 1e-6, "worst {}", worst);
        }
    }
}
