//! The Doob decomposition tracker of the Theorem 6 proof (Figure 1).
//!
//! Theorem 6 shifts the chain to `Y_t = X_t − t` and splits it as
//! `Y_t = M_t + A_t`, where `M` is a martingale and `A` is predictable:
//!
//! ```text
//! A_{t+1} − A_t = E[Y_{t+1} | Y_t] − Y_t = e(x_t) − x_t − 1,
//! M_{t+1} − M_t = Y_{t+1} − E[Y_{t+1} | Y_t] = x_{t+1} − e(x_t),
//! ```
//!
//! with `e(x) = E[X_{t+1} | X_t = x]`. In the supermartingale region
//! (`e(x) ≤ x + 1`, assumption (i)) the drift part `A` is non-increasing, so
//! `Y` can never overtake `M` (Claim 7), while Azuma confines `M`
//! (Claim 8). [`DoobTracker`] replays this decomposition along a simulated
//! trajectory so experiment E6 can verify both claims empirically.

/// Snapshot of the decomposition after `t` rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoobState {
    /// Round index.
    pub t: u64,
    /// Raw chain value `X_t`.
    pub x: u64,
    /// Shifted value `Y_t = X_t − t`.
    pub y: f64,
    /// Martingale part `M_t`.
    pub m: f64,
    /// Predictable part `A_t` (non-increasing in the supermartingale
    /// region).
    pub a: f64,
}

/// Replays the Doob decomposition of `Y_t = X_t − t` along a trajectory.
///
/// # Examples
///
/// ```
/// use bitdissem_analysis::doob::DoobTracker;
///
/// // A chain with exactly zero drift: e(x) = x.
/// let mut tracker = DoobTracker::new(10, |x| x as f64);
/// let s = tracker.push(11);
/// assert_eq!(s.t, 1);
/// // Y decomposes exactly: Y = M + A.
/// assert!((s.y - (s.m + s.a)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DoobTracker<E> {
    drift: E,
    state: DoobState,
}

impl<E: Fn(u64) -> f64> DoobTracker<E> {
    /// Starts tracking at `X_0 = x0`, with `drift(x) = E[X_{t+1} | X_t = x]`
    /// supplied by the caller (exact from `bitdissem-markov`, or the
    /// Proposition 5 midpoint `x + n·F_n(x/n)`).
    #[must_use]
    pub fn new(x0: u64, drift: E) -> Self {
        let state = DoobState { t: 0, x: x0, y: x0 as f64, m: x0 as f64, a: 0.0 };
        Self { drift, state }
    }

    /// Current snapshot.
    #[must_use]
    pub fn state(&self) -> DoobState {
        self.state
    }

    /// Advances the decomposition with the observed next chain value,
    /// returning the new snapshot.
    pub fn push(&mut self, x_next: u64) -> DoobState {
        let e = (self.drift)(self.state.x);
        let t_next = self.state.t + 1;
        let a_next = self.state.a + (e - self.state.x as f64 - 1.0);
        let m_next = self.state.m + (x_next as f64 - e);
        self.state = DoobState {
            t: t_next,
            x: x_next,
            y: x_next as f64 - t_next as f64,
            m: m_next,
            a: a_next,
        };
        debug_assert!(
            (self.state.y - (self.state.m + self.state.a)).abs() < 1e-6,
            "Doob identity violated"
        );
        self.state
    }

    /// Verifies the Claim 7 premise for the *next* step: in states where
    /// the drift satisfies assumption (i) (`e(x) ≤ x + 1`), the predictable
    /// increment is non-positive, so `M` cannot be overtaken.
    #[must_use]
    pub fn next_predictable_increment(&self) -> f64 {
        (self.drift)(self.state.x) - self.state.x as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::Minority;
    use bitdissem_core::Opinion;
    use bitdissem_markov::AggregateChain;

    #[test]
    fn decomposition_identity_holds_pathwise() {
        let mut tracker = DoobTracker::new(50, |x| x as f64 + 0.5);
        let path = [52u64, 49, 49, 55, 54];
        for &x in &path {
            let s = tracker.push(x);
            assert!((s.y - (s.m + s.a)).abs() < 1e-9, "Y = M + A at t={}", s.t);
        }
        assert_eq!(tracker.state().t, 5);
        assert_eq!(tracker.state().x, 54);
    }

    #[test]
    fn zero_drift_chain_keeps_m_equal_to_x() {
        // With e(x) = x: A_t = −t, so M_t = Y_t + t = X_t.
        let mut tracker = DoobTracker::new(10, |x| x as f64);
        for &x in &[12u64, 11, 15, 15] {
            let s = tracker.push(x);
            assert!((s.m - x as f64).abs() < 1e-12);
            assert!((s.a + s.t as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn supermartingale_region_makes_a_nonincreasing() {
        // Drift e(x) = x − 2 (strictly downward): predictable increments are
        // −3 each step.
        let mut tracker = DoobTracker::new(100, |x| x as f64 - 2.0);
        assert_eq!(tracker.next_predictable_increment(), -3.0);
        let mut prev_a = tracker.state().a;
        for x in [99u64, 97, 98, 95] {
            let s = tracker.push(x);
            assert!(s.a <= prev_a, "A must be non-increasing");
            prev_a = s.a;
        }
    }

    #[test]
    fn m_dominates_y_in_supermartingale_region() {
        // Claim 7 consequence along any path while increments stay ≤ 0:
        // M_t ≥ Y_t because A_t ≤ 0 = A_0.
        let mut tracker = DoobTracker::new(80, |x| x as f64 + 0.9); // e ≤ x+1
        for x in [81u64, 80, 82, 79, 80, 78] {
            let s = tracker.push(x);
            assert!(s.m >= s.y - 1e-9, "M ≥ Y at t={}", s.t);
        }
    }

    #[test]
    fn works_with_exact_markov_drift() {
        // Replay a short deterministic path of states with the exact
        // conditional expectation of the Minority(3) chain as the drift.
        let n = 40;
        let chain = AggregateChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
        let mut tracker = DoobTracker::new(30, |x| chain.expected_next(x));
        let path = [31u64, 29, 30, 28, 27];
        for &x in &path {
            let s = tracker.push(x);
            assert!((s.y - (s.m + s.a)).abs() < 1e-9);
        }
        // Minority drifts downward above n/2: the supermartingale premise
        // holds at x = 27..31 (all above 20).
        assert!(tracker.next_predictable_increment() <= 0.0);
    }
}
