//! Proposition 4: the one-step jump bound.

/// The constant `y(c, ℓ)` of Proposition 4: with
/// `a(c, ℓ) = (1−c)^{ℓ+1}`, the paper sets `y = 1 − a/2`, and proves that
/// from any state `X_t ≤ c·n` the next state satisfies `X_{t+1} ≤ y·n`
/// except with probability `exp(−2√n)`.
///
/// Intuition: at least `(1−c)n` agents hold 0, each sees an all-zero
/// sample with probability `≥ (1−c)^ℓ` and then *stays* at 0 (Prop. 3), so
/// about `a·n` zeros persist; Hoeffding keeps at least half of them.
///
/// # Panics
///
/// Panics if `c` is not in `(0, 1)` or `ell == 0`.
///
/// # Examples
///
/// ```
/// use bitdissem_analysis::jump::y_constant;
/// let y = y_constant(0.5, 3);
/// assert!((y - (1.0 - 0.5f64.powi(4) / 2.0)).abs() < 1e-15);
/// assert!(y > 0.5 && y < 1.0);
/// ```
#[must_use]
pub fn y_constant(c: f64, ell: usize) -> f64 {
    assert!(c > 0.0 && c < 1.0, "c must be in (0,1), got {c}");
    assert!(ell >= 1, "sample size must be at least 1");
    let a = (1.0 - c).powi(ell as i32 + 1);
    1.0 - a / 2.0
}

/// The failure-probability bound of Proposition 4: `exp(−2·√n)`.
#[must_use]
pub fn failure_probability(n: u64) -> f64 {
    (-2.0 * (n as f64).sqrt()).exp()
}

/// Checks a single observed transition `(x_t, x_{t+1})` against the
/// Proposition 4 jump bound with parameter `c`: if `x_t ≤ c·n`, then
/// `x_{t+1} ≤ y(c,ℓ)·n` must hold (up to the exponentially small failure
/// probability). Returns `None` if the premise does not apply, `Some(ok)`
/// otherwise.
#[must_use]
pub fn check_jump(n: u64, ell: usize, c: f64, x_t: u64, x_next: u64) -> Option<bool> {
    if (x_t as f64) > c * n as f64 {
        return None;
    }
    let y = y_constant(c, ell);
    Some((x_next as f64) <= y * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn y_is_strictly_between_c_and_one() {
        for &c in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            for ell in 1..=7 {
                let y = y_constant(c, ell);
                assert!(y > c, "c={c} ell={ell}: y={y}");
                assert!(y < 1.0, "c={c} ell={ell}: y={y}");
            }
        }
    }

    #[test]
    fn y_increases_with_ell() {
        // Larger samples make an all-zero sample rarer: the bound weakens.
        let mut prev = 0.0;
        for ell in 1..=10 {
            let y = y_constant(0.5, ell);
            assert!(y > prev);
            prev = y;
        }
    }

    #[test]
    fn failure_probability_is_tiny_for_moderate_n() {
        assert!(failure_probability(100) < 1e-8);
        assert!(failure_probability(10_000) < 1e-86);
        assert!(failure_probability(4) < 1.0);
    }

    #[test]
    fn check_jump_applies_premise() {
        // x_t above c·n: premise fails, no verdict.
        assert_eq!(check_jump(100, 3, 0.5, 60, 99), None);
        // x_t below: verdict depends on y.
        let y = y_constant(0.5, 3);
        let limit = (y * 100.0) as u64;
        assert_eq!(check_jump(100, 3, 0.5, 40, limit), Some(true));
        assert_eq!(check_jump(100, 3, 0.5, 40, 100), Some(false));
    }

    #[test]
    #[should_panic(expected = "c must be in (0,1)")]
    fn rejects_bad_c() {
        let _ = y_constant(1.0, 3);
    }

    #[test]
    #[should_panic(expected = "sample size")]
    fn rejects_zero_ell() {
        let _ = y_constant(0.5, 0);
    }

    proptest! {
        #[test]
        fn prop_y_matches_formula(c in 0.01f64..0.99, ell in 1usize..10) {
            let y = y_constant(c, ell);
            let a = (1.0 - c).powi(ell as i32 + 1);
            prop_assert!((y - (1.0 - a / 2.0)).abs() < 1e-15);
        }
    }
}
