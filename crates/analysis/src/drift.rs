//! Proposition 5: the drift sandwich.

use crate::bias::BiasPolynomial;

/// The Proposition 5 bounds on the conditional expectation:
///
/// ```text
/// x + n·F_n(x/n) − 1 ≤ E[X_{t+1} | X_t = x] ≤ x + n·F_n(x/n) + 1,
/// ```
///
/// where the `±1` slack absorbs the source term
/// `z(1 − P₁) − (1 − z)P₀ ∈ [−1, 1]`.
///
/// Returns `(lower, upper)`.
///
/// # Panics
///
/// Panics if `x > n`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::dynamics::Voter;
/// use bitdissem_analysis::{bias::BiasPolynomial, drift::expected_next_bounds};
///
/// let f = BiasPolynomial::build(&Voter::new(1)?, 100)?;
/// let (lo, hi) = expected_next_bounds(&f, 40);
/// // Voter has F ≡ 0, so the expectation is 40 ± 1.
/// assert_eq!((lo, hi), (39.0, 41.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn expected_next_bounds(f: &BiasPolynomial, x: u64) -> (f64, f64) {
    let drift = f.drift_at(x);
    let center = x as f64 + drift;
    (center - 1.0, center + 1.0)
}

/// Verifies the Proposition 5 sandwich against an externally computed exact
/// conditional expectation (e.g. from the `bitdissem-markov` crate),
/// returning the violation magnitude (0 when the sandwich holds).
#[must_use]
pub fn sandwich_violation(f: &BiasPolynomial, x: u64, exact_expectation: f64) -> f64 {
    let (lo, hi) = expected_next_bounds(f, x);
    if exact_expectation < lo {
        lo - exact_expectation
    } else if exact_expectation > hi {
        exact_expectation - hi
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Majority, Minority, PowerVoter, TwoChoices, Voter};
    use bitdissem_core::{Opinion, Protocol};
    use bitdissem_markov::AggregateChain;

    fn check_sandwich_everywhere<P: Protocol>(protocol: &P, n: u64) {
        let f = BiasPolynomial::build(protocol, n).unwrap();
        for correct in Opinion::ALL {
            let chain = AggregateChain::build(protocol, n, correct).unwrap();
            for x in chain.states() {
                let exact = chain.expected_next(x);
                let v = sandwich_violation(&f, x, exact);
                assert!(v < 1e-9, "{} n={n} z={correct} x={x}: violation {v}", protocol.name());
            }
        }
    }

    #[test]
    fn proposition5_holds_for_voter() {
        check_sandwich_everywhere(&Voter::new(1).unwrap(), 50);
        check_sandwich_everywhere(&Voter::new(4).unwrap(), 50);
    }

    #[test]
    fn proposition5_holds_for_minority() {
        check_sandwich_everywhere(&Minority::new(3).unwrap(), 60);
        check_sandwich_everywhere(&Minority::new(6).unwrap(), 60);
    }

    #[test]
    fn proposition5_holds_for_majority_and_two_choices() {
        check_sandwich_everywhere(&Majority::new(3).unwrap(), 40);
        check_sandwich_everywhere(&TwoChoices::new(), 40);
    }

    #[test]
    fn proposition5_holds_for_power_voter() {
        check_sandwich_everywhere(&PowerVoter::new(3, 2.0).unwrap(), 40);
        check_sandwich_everywhere(&PowerVoter::new(3, 0.5).unwrap(), 40);
    }

    #[test]
    fn violation_is_reported_when_outside() {
        let f = BiasPolynomial::build(&Voter::new(1).unwrap(), 100).unwrap();
        // Voter at x = 40: sandwich is [39, 41].
        assert_eq!(sandwich_violation(&f, 40, 42.0), 1.0);
        assert_eq!(sandwich_violation(&f, 40, 37.5), 1.5);
        assert_eq!(sandwich_violation(&f, 40, 40.0), 0.0);
    }
}
