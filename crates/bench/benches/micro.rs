//! Engine micro-benchmarks: binomial samplers, simulator round costs,
//! bias-polynomial construction, root isolation, the dense LU solve, and
//! the observability layer's disabled-path overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bitdissem_analysis::{BiasPolynomial, RootStructure};
use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Configuration, Opinion};
use bitdissem_markov::absorbing::expected_hitting_times;
use bitdissem_markov::AggregateChain;
use bitdissem_obs::{ColumnarSink, Event, EventSink, JsonlSink, Obs};
use bitdissem_sim::agent::AgentSim;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::binomial::{sample_binomial, sample_binomial_naive};
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::{run_to_consensus, run_to_consensus_observed, Simulator};

fn bench_binomial_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sampler");
    for &(n, p, label) in
        &[(50u64, 0.05, "binv_regime"), (10_000, 0.3, "btrs_regime"), (1_000_000, 0.4, "btrs_huge")]
    {
        group.bench_function(format!("auto_{label}"), |b| {
            let mut rng = rng_from(1);
            b.iter(|| std::hint::black_box(sample_binomial(&mut rng, n, p)));
        });
    }
    group.bench_function("naive_n50", |b| {
        let mut rng = rng_from(2);
        b.iter(|| std::hint::black_box(sample_binomial_naive(&mut rng, 50, 0.05)));
    });
    group.finish();
}

fn bench_simulator_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_round");
    let minority = Minority::new(3).unwrap();
    for &n in &[1_024u64, 65_536] {
        let start = Configuration::new(n, Opinion::One, (3 * n) / 4).unwrap();
        group.bench_function(format!("aggregate_n{n}"), |b| {
            let mut rng = rng_from(3);
            let mut sim = AggregateSim::new(&minority, start).unwrap();
            b.iter(|| {
                sim.step_round(&mut rng);
                std::hint::black_box(sim.configuration().ones())
            });
        });
    }
    let n = 1_024u64;
    let start = Configuration::new(n, Opinion::One, (3 * n) / 4).unwrap();
    group.bench_function(format!("agent_n{n}"), |b| {
        let mut rng = rng_from(4);
        let mut sim = AgentSim::new(&minority, start).unwrap();
        b.iter(|| {
            sim.step_round(&mut rng);
            std::hint::black_box(sim.configuration().ones())
        });
    });
    group.finish();
}

fn bench_analysis_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.bench_function("bias_build_minority7", |b| {
        let m = Minority::new(7).unwrap();
        b.iter(|| std::hint::black_box(BiasPolynomial::build(&m, 4096).unwrap()));
    });
    let f = BiasPolynomial::build(&Minority::new(7).unwrap(), 4096).unwrap();
    group.bench_function("root_structure_minority7", |b| {
        b.iter(|| std::hint::black_box(RootStructure::analyze(&f)));
    });
    group.finish();
}

fn bench_markov_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov");
    group.sample_size(10);
    let voter = Voter::new(1).unwrap();
    group.bench_function("hitting_times_n128", |b| {
        b.iter_batched(
            || AggregateChain::build(&voter, 128, Opinion::One).unwrap(),
            |chain| std::hint::black_box(expected_hitting_times(&chain)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    // The observability contract: a `NullSink` handle (the `Obs::none()`
    // default) must cost nothing measurable on the hot consensus loop.
    // Both benches run the same full convergence from the same seed.
    let mut group = c.benchmark_group("obs_overhead");
    let voter = Voter::new(1).unwrap();
    let n = 1_024u64;
    let start = Configuration::new(n, Opinion::One, n / 2).unwrap();
    group.bench_function("run_to_consensus_plain", |b| {
        let mut rng = rng_from(5);
        b.iter(|| {
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            std::hint::black_box(run_to_consensus(&mut sim, &mut rng, 1 << 20))
        });
    });
    group.bench_function("run_to_consensus_null_sink", |b| {
        let obs = Obs::none();
        let mut rng = rng_from(5);
        b.iter(|| {
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            std::hint::black_box(run_to_consensus_observed(&mut sim, &mut rng, 1 << 20, &obs, 0))
        });
    });
    // Per-event emit cost of the two persistent sinks, against real
    // files: `columnar_sink` is expected at or below `jsonl_sink` (it
    // skips the JSON text encode and amortizes I/O into block flushes).
    let event = Event::RoundCompleted { rep: 3, round: 17, ones: 511, source_opinion: 1 };
    let jsonl_path = std::env::temp_dir().join(format!("micro-jsonl-{}.jsonl", std::process::id()));
    group.bench_function("jsonl_sink_emit", |b| {
        let sink = JsonlSink::create(&jsonl_path).unwrap();
        b.iter(|| sink.emit(std::hint::black_box(&event)));
    });
    let _ = std::fs::remove_file(&jsonl_path);
    let columnar_path = std::env::temp_dir().join(format!("micro-col-{}.bct", std::process::id()));
    group.bench_function("columnar_sink_emit", |b| {
        let sink = ColumnarSink::create(&columnar_path).unwrap();
        b.iter(|| sink.emit(std::hint::black_box(&event)));
    });
    let _ = std::fs::remove_file(&columnar_path);
    group.finish();
}

criterion_group!(
    micro,
    bench_binomial_samplers,
    bench_simulator_rounds,
    bench_analysis_paths,
    bench_markov_solvers,
    bench_obs_overhead
);
criterion_main!(micro);
