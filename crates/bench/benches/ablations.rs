//! Benchmarks regenerating the design ablations A1–A3.

use bitdissem_bench::{bench_experiment, experiment_criterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    bench_experiment(c, "bench_a1_agg_vs_agent", "a1");
    bench_experiment(c, "bench_a2_binomial", "a2");
    bench_experiment(c, "bench_a3_roots", "a3");
}

criterion_group! {
    name = ablations;
    config = experiment_criterion();
    targets = benches
}
criterion_main!(ablations);
