//! Benchmarks regenerating the extension experiments E13–E15 (constant
//! memory, observation noise, and the exact sequential lower bound).

use bitdissem_bench::{bench_experiment, experiment_criterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    bench_experiment(c, "bench_e13_memory", "e13");
    bench_experiment(c, "bench_e14_noise", "e14");
    bench_experiment(c, "bench_e15_sequential_lb", "e15");
    bench_experiment(c, "bench_e16_selfstab", "e16");
    bench_experiment(c, "bench_e17_synthesis", "e17");
    bench_experiment(c, "bench_e18_synchronicity", "e18");
}

criterion_group! {
    name = extensions;
    config = experiment_criterion();
    targets = benches
}
criterion_main!(extensions);
