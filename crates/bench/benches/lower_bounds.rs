//! Benchmarks regenerating the scaling tables E1–E4 (Theorem 1, Theorem 2,
//! the \[15\] upper bound, and the sample-size sweep).

use bitdissem_bench::{bench_experiment, experiment_criterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    bench_experiment(c, "bench_e1_lower_bound", "e1");
    bench_experiment(c, "bench_e2_voter_upper", "e2");
    bench_experiment(c, "bench_e3_minority_fast", "e3");
    bench_experiment(c, "bench_e4_sample_sweep", "e4");
}

criterion_group! {
    name = lower_bounds;
    config = experiment_criterion();
    targets = benches
}
criterion_main!(lower_bounds);
