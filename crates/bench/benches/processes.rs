//! Benchmarks regenerating the process comparisons E7, E10, E11, E12
//! (dual coalescence, exact-chain validation, sequential/parallel gap,
//! source-less Minority).

use bitdissem_bench::{bench_experiment, experiment_criterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    bench_experiment(c, "bench_e7_dual", "e7");
    bench_experiment(c, "bench_e10_exact", "e10");
    bench_experiment(c, "bench_e11_seq_par", "e11");
    bench_experiment(c, "bench_e12_minority_consensus", "e12");
}

criterion_group! {
    name = processes;
    config = experiment_criterion();
    targets = benches
}
criterion_main!(processes);
