//! Replication-engine benchmarks: the persistent work-stealing pool vs the
//! spawn-per-call scoped-thread baseline it replaced.
//!
//! The interesting regimes are the sweep shapes experiments actually use:
//! many cheap batches in a row (where per-call thread spawn/join dominated)
//! and a few heavy batches (where the two engines should converge on the
//! same throughput). Both engines compute identical results — the
//! equivalence is asserted once up front.

use criterion::{criterion_group, criterion_main, Criterion};

use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_pool::Pool;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::run_to_consensus;
use bitdissem_sim::runner::{replicate, replicate_spawn};

fn convergence_batch(engine: fn(usize, u64, Option<usize>) -> Vec<u64>, reps: usize) -> Vec<u64> {
    engine(reps, 42, Some(4))
}

fn pooled(reps: usize, seed: u64, threads: Option<usize>) -> Vec<u64> {
    let voter = Voter::new(1).unwrap();
    let start = Configuration::all_wrong(256, Opinion::One);
    replicate(reps, seed, threads, |mut rng, _| {
        let mut sim = AggregateSim::new(&voter, start).unwrap();
        run_to_consensus(&mut sim, &mut rng, 1 << 20).rounds_censored()
    })
}

fn spawned(reps: usize, seed: u64, threads: Option<usize>) -> Vec<u64> {
    let voter = Voter::new(1).unwrap();
    let start = Configuration::all_wrong(256, Opinion::One);
    replicate_spawn(reps, seed, threads, |mut rng, _| {
        let mut sim = AggregateSim::new(&voter, start).unwrap();
        run_to_consensus(&mut sim, &mut rng, 1 << 20).rounds_censored()
    })
}

fn bench_pool_vs_spawn(c: &mut Criterion) {
    assert_eq!(
        convergence_batch(pooled, 16),
        convergence_batch(spawned, 16),
        "the two engines must agree before their speed is compared"
    );

    let mut group = c.benchmark_group("pool_vs_spawn");
    group.sample_size(10);
    // Sweep-shaped load: many small batches (a sweep point each), where the
    // persistent pool amortizes thread startup across points.
    for &reps in &[8usize, 32, 128] {
        group.bench_function(format!("pool_reps{reps}"), |b| {
            b.iter(|| std::hint::black_box(convergence_batch(pooled, reps)));
        });
        group.bench_function(format!("spawn_reps{reps}"), |b| {
            b.iter(|| std::hint::black_box(convergence_batch(spawned, reps)));
        });
    }
    group.finish();
}

fn bench_batch_overhead(c: &mut Criterion) {
    // Pure dispatch cost: empty tasks expose the per-batch fixed overhead
    // (chunk dealing, publish, close handshake) vs spawn/join.
    let mut group = c.benchmark_group("batch_overhead");
    let pool = Pool::new(3);
    group.bench_function("pool_noop_batch64", |b| {
        b.iter(|| {
            pool.run_batch(64, 4, &|i| {
                std::hint::black_box(i);
            })
            .tasks
        });
    });
    group.bench_function("spawn_noop_batch64", |b| {
        b.iter(|| std::hint::black_box(replicate_spawn(64, 0, Some(4), |_, rep| rep)));
    });
    group.finish();
}

criterion_group!(pool_benches, bench_pool_vs_spawn, bench_batch_overhead);
criterion_main!(pool_benches);
