//! Benchmarks regenerating the structural validations E5, E6, E8, E9
//! (bias-polynomial figures, Doob decomposition, Propositions 3 and 4).

use bitdissem_bench::{bench_experiment, experiment_criterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    bench_experiment(c, "bench_e5_bias_roots", "e5");
    bench_experiment(c, "bench_e6_doob", "e6");
    bench_experiment(c, "bench_e8_jump", "e8");
    bench_experiment(c, "bench_e9_prop3", "e9");
}

criterion_group! {
    name = structure;
    config = experiment_criterion();
    targets = benches
}
criterion_main!(structure);
