//! Shared helpers for the Criterion benchmark binaries.
//!
//! Each reproduced table/figure has a named benchmark (`bench_e1_…` through
//! `bench_a3_…`) that regenerates the experiment at smoke scale; `micro`
//! benches cover the engine primitives. Run a single one with, e.g.,
//! `cargo bench bench_e1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use criterion::Criterion;

use bitdissem_experiments::{registry, RunConfig};

/// Registers one experiment as a Criterion benchmark with the given
/// benchmark name; the measured unit of work is a full smoke-scale run.
///
/// # Panics
///
/// Panics if `id` is not a registered experiment.
pub fn bench_experiment(c: &mut Criterion, bench_name: &str, id: &str) {
    let cfg = RunConfig { threads: Some(1), ..RunConfig::smoke(99) };
    // Validate the id once, eagerly.
    assert!(registry::all().iter().any(|e| e.id == id), "unknown experiment id {id}");
    c.bench_function(bench_name, |b| {
        b.iter(|| {
            let report = registry::run(id, &cfg).expect("registered");
            std::hint::black_box(report.tables.len())
        });
    });
}

/// A Criterion instance tuned for coarse-grained experiment benchmarks
/// (each iteration is a whole experiment, so short measurement windows
/// suffice).
#[must_use]
pub fn experiment_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}
