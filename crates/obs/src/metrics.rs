//! Coarse run metrics: lock-free counters plus named phase timers.

use crate::hist::LogHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated counters and phase timings for one run.
///
/// Counters are relaxed atomics: instrumented code batches additions
/// (e.g. once per replication, not once per round) so contention and
/// overhead stay negligible.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total parallel rounds simulated across all replications.
    pub rounds_simulated: AtomicU64,
    /// Total opinion samples drawn by agents (≈ rounds × population).
    pub opinion_samples: AtomicU64,
    /// Independent RNG streams derived (one per replication).
    pub rng_streams: AtomicU64,
    /// Replications completed.
    pub replications: AtomicU64,
    /// Batches submitted to the worker pool.
    pub pool_batches: AtomicU64,
    /// Tasks executed by the worker pool.
    pub pool_tasks: AtomicU64,
    /// Chunks stolen from another participant's deque by the pool.
    pub pool_steals: AtomicU64,
    /// Replications satisfied from the checkpoint log instead of re-run.
    pub checkpoint_hits: AtomicU64,
    phases: Mutex<BTreeMap<String, PhaseEntry>>,
    spans: Mutex<BTreeMap<String, LogHistogram>>,
}

/// Internal per-phase accumulator: the flat totals exposed as
/// [`PhaseStat`] plus a streaming latency histogram of the individual
/// entries.
#[derive(Debug, Default)]
struct PhaseEntry {
    stat: PhaseStat,
    hist: LogHistogram,
}

/// Accumulated timing for one named phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase was entered.
    pub calls: u64,
    /// Total nanoseconds spent in the phase.
    pub nanos: u64,
}

impl Metrics {
    /// Creates a zeroed metrics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to `rounds_simulated`.
    pub fn add_rounds(&self, n: u64) {
        self.rounds_simulated.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to `opinion_samples`.
    pub fn add_samples(&self, n: u64) {
        self.opinion_samples.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to `rng_streams`.
    pub fn add_rng_streams(&self, n: u64) {
        self.rng_streams.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to `replications`.
    pub fn add_replications(&self, n: u64) {
        self.replications.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one pool batch: its task and steal counts.
    pub fn add_pool_batch(&self, tasks: u64, steals: u64) {
        self.pool_batches.fetch_add(1, Ordering::Relaxed);
        self.pool_tasks.fetch_add(tasks, Ordering::Relaxed);
        self.pool_steals.fetch_add(steals, Ordering::Relaxed);
    }

    /// Adds to `checkpoint_hits`.
    pub fn add_checkpoint_hits(&self, n: u64) {
        self.checkpoint_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one timed entry into phase `name`.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    pub fn record_phase(&self, name: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut phases = self.phases.lock().expect("metrics poisoned");
        let entry = phases.entry(name.to_string()).or_default();
        entry.stat.calls += 1;
        entry.stat.nanos = entry.stat.nanos.saturating_add(nanos);
        entry.hist.record(nanos);
    }

    /// Snapshot of all phase timings, sorted by phase name.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    #[must_use]
    pub fn phases(&self) -> Vec<(String, PhaseStat)> {
        self.phases
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, entry)| (name.clone(), entry.stat))
            .collect()
    }

    /// Snapshot of the per-phase latency histograms (nanoseconds), sorted
    /// by phase name.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    #[must_use]
    pub fn phase_histograms(&self) -> Vec<(String, LogHistogram)> {
        self.phases
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, entry)| (name.clone(), entry.hist.clone()))
            .collect()
    }

    /// Records one completed span (see [`crate::profile::SpanGuard`])
    /// under its `/`-joined path.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.spans
            .lock()
            .expect("metrics poisoned")
            .entry(path.to_string())
            .or_default()
            .record(nanos);
    }

    /// Snapshot of all span histograms (nanoseconds), sorted by path.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    #[must_use]
    pub fn spans(&self) -> Vec<(String, LogHistogram)> {
        self.spans.lock().expect("metrics poisoned").clone().into_iter().collect()
    }

    /// Renders a human-readable multi-line summary (counters, then one
    /// line per phase).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        let counter =
            |label: &str, v: &AtomicU64| format!("  {:<24} {}\n", label, v.load(Ordering::Relaxed));
        out.push_str(&counter("rounds_simulated", &self.rounds_simulated));
        out.push_str(&counter("opinion_samples", &self.opinion_samples));
        out.push_str(&counter("rng_streams", &self.rng_streams));
        out.push_str(&counter("replications", &self.replications));
        out.push_str(&counter("pool_batches", &self.pool_batches));
        out.push_str(&counter("pool_tasks", &self.pool_tasks));
        out.push_str(&counter("pool_steals", &self.pool_steals));
        out.push_str(&counter("checkpoint_hits", &self.checkpoint_hits));
        let phases = self.phase_histograms();
        if !phases.is_empty() {
            out.push_str("phases:\n");
            for (name, hist) in phases {
                let ms = hist.sum() as f64 / 1e6;
                out.push_str(&format!(
                    "  {:<24} {:>6} calls  {:>10.3} ms  [{}]\n",
                    name,
                    hist.count(),
                    ms,
                    hist.render_nanos()
                ));
            }
        }
        let spans = self.spans();
        if !spans.is_empty() {
            out.push_str("spans:\n");
            for (path, hist) in spans {
                out.push_str(&format!("  {:<24} [{}]\n", path, hist.render_nanos()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_rounds(10);
        m.add_rounds(5);
        m.add_samples(300);
        m.add_rng_streams(2);
        m.add_replications(2);
        assert_eq!(m.rounds_simulated.load(Ordering::Relaxed), 15);
        assert_eq!(m.opinion_samples.load(Ordering::Relaxed), 300);
        assert_eq!(m.rng_streams.load(Ordering::Relaxed), 2);
        assert_eq!(m.replications.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_and_checkpoint_counters_accumulate() {
        let m = Metrics::new();
        m.add_pool_batch(100, 7);
        m.add_pool_batch(50, 0);
        m.add_checkpoint_hits(30);
        assert_eq!(m.pool_batches.load(Ordering::Relaxed), 2);
        assert_eq!(m.pool_tasks.load(Ordering::Relaxed), 150);
        assert_eq!(m.pool_steals.load(Ordering::Relaxed), 7);
        assert_eq!(m.checkpoint_hits.load(Ordering::Relaxed), 30);
        let text = m.render();
        assert!(text.contains("pool_batches"));
        assert!(text.contains("pool_steals"));
        assert!(text.contains("checkpoint_hits"));
    }

    #[test]
    fn phases_accumulate_and_sort() {
        let m = Metrics::new();
        m.record_phase("zeta", Duration::from_nanos(50));
        m.record_phase("alpha", Duration::from_nanos(100));
        m.record_phase("zeta", Duration::from_nanos(25));
        let phases = m.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "alpha");
        assert_eq!(phases[0].1, PhaseStat { calls: 1, nanos: 100 });
        assert_eq!(phases[1].1, PhaseStat { calls: 2, nanos: 75 });
    }

    #[test]
    fn phase_histograms_track_individual_entries() {
        let m = Metrics::new();
        m.record_phase("step", Duration::from_nanos(100));
        m.record_phase("step", Duration::from_nanos(10_000));
        let hists = m.phase_histograms();
        assert_eq!(hists.len(), 1);
        let (name, hist) = &hists[0];
        assert_eq!(name, "step");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.min(), 100);
        assert_eq!(hist.max(), 10_000);
        // Flat totals stay consistent with the histogram.
        assert_eq!(m.phases()[0].1, PhaseStat { calls: 2, nanos: 10_100 });
    }

    #[test]
    fn spans_record_under_paths() {
        let m = Metrics::new();
        m.record_span("run/replicate", Duration::from_nanos(500));
        m.record_span("run/replicate", Duration::from_nanos(700));
        m.record_span("run", Duration::from_nanos(1_300));
        let spans = m.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "run");
        assert_eq!(spans[1].0, "run/replicate");
        assert_eq!(spans[1].1.count(), 2);
        let text = m.render();
        assert!(text.contains("spans:"), "{text}");
        assert!(text.contains("run/replicate"), "{text}");
    }

    #[test]
    fn render_mentions_every_counter_and_phase() {
        let m = Metrics::new();
        m.add_rounds(7);
        m.record_phase("simulate", Duration::from_millis(2));
        let text = m.render();
        assert!(text.contains("rounds_simulated"));
        assert!(text.contains('7'));
        assert!(text.contains("simulate"));
        assert!(text.contains("1 calls"));
    }
}
