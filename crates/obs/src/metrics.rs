//! Coarse run metrics: sharded lock-free counters plus named phase
//! timers.

use crate::hist::LogHistogram;
use crate::telemetry::{AtomicHistogram, Counter};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of hot-path latency channels (see [`LatencyId`]).
pub const N_LATENCIES: usize = 2;
/// Number of gauges (see [`GaugeId`]).
pub const N_GAUGES: usize = 3;

const LATENCY_NAMES: [&str; N_LATENCIES] = ["replication", "round_pass"];
const GAUGE_NAMES: [&str; N_GAUGES] =
    ["sweep_batches_started", "sweep_batches_done", "inflight_replications"];

/// Hot-path latency channels, each backed by a striped
/// [`AtomicHistogram`] so recording never contends across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyId {
    /// One full replication (consensus run) on a pool worker.
    Replication = 0,
    /// One flat pass / round batch inside an engine's round loop.
    RoundPass = 1,
}

/// Stride at which engine round loops time a [`LatencyId::RoundPass`]:
/// every `LATENCY_SAMPLE_EVERY`-th round, not every round. A wide-engine
/// round is a few microseconds, and the two `Instant::now()` calls
/// bracketing it cost ~2-3% of the round on hosts with a slow clock
/// source — systematic 1-in-8 sampling keeps the quantiles unbiased
/// (round costs drift smoothly, they don't oscillate at the stride) while
/// pushing the instrumentation under the telemetry overhead budget.
/// Power of two, so the hot-loop stride check compiles to a mask.
pub const LATENCY_SAMPLE_EVERY: u64 = 8;

/// Instantaneous values set (not accumulated) by the workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Replicated batches started so far across the run's sweeps.
    SweepBatchesTotal = 0,
    /// Replicated batches finished so far across the run's sweeps.
    SweepBatchesDone = 1,
    /// Replications currently executing on the pool.
    InflightReplications = 2,
}

/// Aggregated counters and phase timings for one run.
///
/// Counters are striped across cache-line-padded cells (one per pool
/// worker, see [`crate::telemetry::Counter`]): the write path is a
/// relaxed increment on a line the calling thread owns, so per-round
/// instrumentation from many workers never contends. Reads sum the
/// stripes; the [`Counter::load`] signature mirrors `AtomicU64::load`
/// so call sites written against the original shared-atomic fields
/// compile unchanged.
#[derive(Debug)]
pub struct Metrics {
    /// Total parallel rounds simulated across all replications.
    pub rounds_simulated: Counter,
    /// Total opinion samples drawn by agents (≈ rounds × population).
    pub opinion_samples: Counter,
    /// Independent RNG streams derived (one per replication).
    pub rng_streams: Counter,
    /// Replications completed.
    pub replications: Counter,
    /// Batches submitted to the worker pool.
    pub pool_batches: Counter,
    /// Tasks executed by the worker pool.
    pub pool_tasks: Counter,
    /// Chunks stolen from another participant's deque by the pool.
    pub pool_steals: Counter,
    /// Replications satisfied from the checkpoint log instead of re-run.
    pub checkpoint_hits: Counter,
    /// Replicas retired (reached consensus / budget) inside the batched
    /// and wide lock-step engines.
    pub replicas_retired: Counter,
    /// Environment perturbation events applied (source flips, noise
    /// rounds, adversarial resets) across all replications.
    pub perturbations_applied: Counter,
    /// Rounds from each disruptive perturbation back to the correct
    /// consensus, one entry per resolved disruption (see `sim::env`).
    reconverge: AtomicHistogram,
    gauges: [AtomicU64; N_GAUGES],
    latencies: [AtomicHistogram; N_LATENCIES],
    phases: Mutex<BTreeMap<String, PhaseEntry>>,
    spans: Mutex<BTreeMap<String, LogHistogram>>,
}

/// Plain-value copy of every counter, taken by summing the stripes.
///
/// This is the compat read API: one call yields a coherent-enough view
/// for end-of-run reporting, manifests, and snapshot deltas without
/// touching the striped internals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// See [`Metrics::rounds_simulated`].
    pub rounds_simulated: u64,
    /// See [`Metrics::opinion_samples`].
    pub opinion_samples: u64,
    /// See [`Metrics::rng_streams`].
    pub rng_streams: u64,
    /// See [`Metrics::replications`].
    pub replications: u64,
    /// See [`Metrics::pool_batches`].
    pub pool_batches: u64,
    /// See [`Metrics::pool_tasks`].
    pub pool_tasks: u64,
    /// See [`Metrics::pool_steals`].
    pub pool_steals: u64,
    /// See [`Metrics::checkpoint_hits`].
    pub checkpoint_hits: u64,
    /// See [`Metrics::replicas_retired`].
    pub replicas_retired: u64,
    /// See [`Metrics::perturbations_applied`].
    pub perturbations_applied: u64,
}

impl CounterSnapshot {
    /// `(name, value)` pairs in fixed registry order — the canonical
    /// naming used by every telemetry exporter and the run manifest.
    #[must_use]
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rounds_simulated", self.rounds_simulated),
            ("opinion_samples", self.opinion_samples),
            ("rng_streams", self.rng_streams),
            ("replications", self.replications),
            ("pool_batches", self.pool_batches),
            ("pool_tasks", self.pool_tasks),
            ("pool_steals", self.pool_steals),
            ("checkpoint_hits", self.checkpoint_hits),
            ("replicas_retired", self.replicas_retired),
            ("perturbations_applied", self.perturbations_applied),
        ]
    }
}

/// Internal per-phase accumulator: the flat totals exposed as
/// [`PhaseStat`] plus a streaming latency histogram of the individual
/// entries.
#[derive(Debug, Default)]
struct PhaseEntry {
    stat: PhaseStat,
    hist: LogHistogram,
}

/// Accumulated timing for one named phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase was entered.
    pub calls: u64,
    /// Total nanoseconds spent in the phase.
    pub nanos: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            rounds_simulated: Counter::new(),
            opinion_samples: Counter::new(),
            rng_streams: Counter::new(),
            replications: Counter::new(),
            pool_batches: Counter::new(),
            pool_tasks: Counter::new(),
            pool_steals: Counter::new(),
            checkpoint_hits: Counter::new(),
            replicas_retired: Counter::new(),
            perturbations_applied: Counter::new(),
            reconverge: AtomicHistogram::new(),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            latencies: std::array::from_fn(|_| AtomicHistogram::new()),
            phases: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// Creates a zeroed metrics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to `rounds_simulated`.
    pub fn add_rounds(&self, n: u64) {
        self.rounds_simulated.add(n);
    }

    /// Adds to `opinion_samples`.
    pub fn add_samples(&self, n: u64) {
        self.opinion_samples.add(n);
    }

    /// Adds to `rng_streams`.
    pub fn add_rng_streams(&self, n: u64) {
        self.rng_streams.add(n);
    }

    /// Adds to `replications`.
    pub fn add_replications(&self, n: u64) {
        self.replications.add(n);
    }

    /// Records one pool batch: its task and steal counts.
    pub fn add_pool_batch(&self, tasks: u64, steals: u64) {
        self.pool_batches.add(1);
        self.pool_tasks.add(tasks);
        self.pool_steals.add(steals);
    }

    /// Adds to `checkpoint_hits`.
    pub fn add_checkpoint_hits(&self, n: u64) {
        self.checkpoint_hits.add(n);
    }

    /// Adds to `replicas_retired`.
    pub fn add_retired(&self, n: u64) {
        self.replicas_retired.add(n);
    }

    /// Adds to `perturbations_applied`.
    pub fn add_perturbations(&self, n: u64) {
        self.perturbations_applied.add(n);
    }

    /// Records one resolved re-convergence time (rounds from a disruptive
    /// perturbation back to the correct consensus) into the
    /// `reconverge_rounds` histogram. Lock-free; safe from any worker.
    #[inline]
    pub fn record_reconverge(&self, rounds: u64) {
        self.reconverge.record(rounds);
    }

    /// Merged snapshot of the `reconverge_rounds` histogram.
    #[must_use]
    pub fn reconverge_snapshot(&self) -> bitdissem_stats::LogHistogram {
        self.reconverge.snapshot()
    }

    /// Coherent plain-value copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            rounds_simulated: self.rounds_simulated.get(),
            opinion_samples: self.opinion_samples.get(),
            rng_streams: self.rng_streams.get(),
            replications: self.replications.get(),
            pool_batches: self.pool_batches.get(),
            pool_tasks: self.pool_tasks.get(),
            pool_steals: self.pool_steals.get(),
            checkpoint_hits: self.checkpoint_hits.get(),
            replicas_retired: self.replicas_retired.get(),
            perturbations_applied: self.perturbations_applied.get(),
        }
    }

    /// Sets gauge `id` to `v`.
    pub fn set_gauge(&self, id: GaugeId, v: u64) {
        self.gauges[id as usize].store(v, Ordering::Relaxed);
    }

    /// Current value of gauge `id`.
    #[must_use]
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// All gauges as `(name, value)` pairs in registry order.
    #[must_use]
    pub fn gauges(&self) -> Vec<(&'static str, u64)> {
        GAUGE_NAMES
            .iter()
            .zip(self.gauges.iter())
            .map(|(&name, v)| (name, v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Records one latency sample (nanoseconds) into the striped
    /// histogram for channel `id`. Lock-free; safe from any worker at
    /// round-loop frequency.
    #[inline]
    pub fn record_latency(&self, id: LatencyId, nanos: u64) {
        self.latencies[id as usize].record(nanos);
    }

    /// Merged snapshots of every latency channel, as `(name,
    /// histogram)` pairs in registry order.
    #[must_use]
    pub fn latency_snapshots(&self) -> Vec<(&'static str, bitdissem_stats::LogHistogram)> {
        LATENCY_NAMES
            .iter()
            .zip(self.latencies.iter())
            .map(|(&name, h)| (name, h.snapshot()))
            .collect()
    }

    /// Records one timed entry into phase `name`.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    pub fn record_phase(&self, name: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut phases = self.phases.lock().expect("metrics poisoned");
        let entry = phases.entry(name.to_string()).or_default();
        entry.stat.calls += 1;
        entry.stat.nanos = entry.stat.nanos.saturating_add(nanos);
        entry.hist.record(nanos);
    }

    /// Snapshot of all phase timings, sorted by phase name.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    #[must_use]
    pub fn phases(&self) -> Vec<(String, PhaseStat)> {
        self.phases
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, entry)| (name.clone(), entry.stat))
            .collect()
    }

    /// Snapshot of the per-phase latency histograms (nanoseconds), sorted
    /// by phase name.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    #[must_use]
    pub fn phase_histograms(&self) -> Vec<(String, LogHistogram)> {
        self.phases
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, entry)| (name.clone(), entry.hist.clone()))
            .collect()
    }

    /// Records one completed span (see [`crate::profile::SpanGuard`])
    /// under its `/`-joined path.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.spans
            .lock()
            .expect("metrics poisoned")
            .entry(path.to_string())
            .or_default()
            .record(nanos);
    }

    /// Snapshot of all span histograms (nanoseconds), sorted by path.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the metrics block panicked mid-update.
    #[must_use]
    pub fn spans(&self) -> Vec<(String, LogHistogram)> {
        self.spans.lock().expect("metrics poisoned").clone().into_iter().collect()
    }

    /// Renders a human-readable multi-line summary (counters, then one
    /// line per phase).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        for (label, v) in self.snapshot().named() {
            out.push_str(&format!("  {label:<24} {v}\n"));
        }
        let phases = self.phase_histograms();
        if !phases.is_empty() {
            out.push_str("phases:\n");
            for (name, hist) in phases {
                let ms = hist.sum() as f64 / 1e6;
                out.push_str(&format!(
                    "  {:<24} {:>6} calls  {:>10.3} ms  [{}]\n",
                    name,
                    hist.count(),
                    ms,
                    hist.render_nanos()
                ));
            }
        }
        let spans = self.spans();
        if !spans.is_empty() {
            out.push_str("spans:\n");
            for (path, hist) in spans {
                out.push_str(&format!("  {:<24} [{}]\n", path, hist.render_nanos()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_rounds(10);
        m.add_rounds(5);
        m.add_samples(300);
        m.add_rng_streams(2);
        m.add_replications(2);
        assert_eq!(m.rounds_simulated.load(Ordering::Relaxed), 15);
        assert_eq!(m.opinion_samples.load(Ordering::Relaxed), 300);
        assert_eq!(m.rng_streams.load(Ordering::Relaxed), 2);
        assert_eq!(m.replications.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_and_checkpoint_counters_accumulate() {
        let m = Metrics::new();
        m.add_pool_batch(100, 7);
        m.add_pool_batch(50, 0);
        m.add_checkpoint_hits(30);
        assert_eq!(m.pool_batches.load(Ordering::Relaxed), 2);
        assert_eq!(m.pool_tasks.load(Ordering::Relaxed), 150);
        assert_eq!(m.pool_steals.load(Ordering::Relaxed), 7);
        assert_eq!(m.checkpoint_hits.load(Ordering::Relaxed), 30);
        let text = m.render();
        assert!(text.contains("pool_batches"));
        assert!(text.contains("pool_steals"));
        assert!(text.contains("checkpoint_hits"));
    }

    #[test]
    fn snapshot_copies_every_counter() {
        let m = Metrics::new();
        m.add_rounds(4);
        m.add_retired(3);
        m.add_pool_batch(2, 1);
        let snap = m.snapshot();
        assert_eq!(snap.rounds_simulated, 4);
        assert_eq!(snap.replicas_retired, 3);
        assert_eq!(snap.pool_batches, 1);
        assert_eq!(snap.pool_tasks, 2);
        let named = snap.named();
        assert_eq!(named.len(), 10);
        assert_eq!(named[0], ("rounds_simulated", 4));
        assert_eq!(named[8], ("replicas_retired", 3));
        assert_eq!(named[9], ("perturbations_applied", 0));
    }

    #[test]
    fn perturbation_counter_and_reconverge_histogram_accumulate() {
        let m = Metrics::new();
        m.add_perturbations(3);
        m.add_perturbations(2);
        m.record_reconverge(40);
        m.record_reconverge(900);
        assert_eq!(m.perturbations_applied.load(Ordering::Relaxed), 5);
        let h = m.reconverge_snapshot();
        assert_eq!(h.count(), 2);
        assert!(m.render().contains("perturbations_applied"));
    }

    #[test]
    fn gauges_store_and_read_back() {
        let m = Metrics::new();
        m.set_gauge(GaugeId::SweepBatchesTotal, 12);
        m.set_gauge(GaugeId::SweepBatchesDone, 5);
        assert_eq!(m.gauge(GaugeId::SweepBatchesTotal), 12);
        let gauges = m.gauges();
        assert_eq!(gauges[0], ("sweep_batches_started", 12));
        assert_eq!(gauges[1], ("sweep_batches_done", 5));
        assert_eq!(gauges[2], ("inflight_replications", 0));
    }

    #[test]
    fn latency_channels_record_into_striped_histograms() {
        let m = Metrics::new();
        m.record_latency(LatencyId::Replication, 1_000);
        m.record_latency(LatencyId::Replication, 2_000);
        m.record_latency(LatencyId::RoundPass, 500);
        let snaps = m.latency_snapshots();
        assert_eq!(snaps[0].0, "replication");
        assert_eq!(snaps[0].1.count(), 2);
        assert_eq!(snaps[1].0, "round_pass");
        assert_eq!(snaps[1].1.count(), 1);
    }

    #[test]
    fn phases_accumulate_and_sort() {
        let m = Metrics::new();
        m.record_phase("zeta", Duration::from_nanos(50));
        m.record_phase("alpha", Duration::from_nanos(100));
        m.record_phase("zeta", Duration::from_nanos(25));
        let phases = m.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "alpha");
        assert_eq!(phases[0].1, PhaseStat { calls: 1, nanos: 100 });
        assert_eq!(phases[1].1, PhaseStat { calls: 2, nanos: 75 });
    }

    #[test]
    fn phase_histograms_track_individual_entries() {
        let m = Metrics::new();
        m.record_phase("step", Duration::from_nanos(100));
        m.record_phase("step", Duration::from_nanos(10_000));
        let hists = m.phase_histograms();
        assert_eq!(hists.len(), 1);
        let (name, hist) = &hists[0];
        assert_eq!(name, "step");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.min(), 100);
        assert_eq!(hist.max(), 10_000);
        // Flat totals stay consistent with the histogram.
        assert_eq!(m.phases()[0].1, PhaseStat { calls: 2, nanos: 10_100 });
    }

    #[test]
    fn spans_record_under_paths() {
        let m = Metrics::new();
        m.record_span("run/replicate", Duration::from_nanos(500));
        m.record_span("run/replicate", Duration::from_nanos(700));
        m.record_span("run", Duration::from_nanos(1_300));
        let spans = m.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "run");
        assert_eq!(spans[1].0, "run/replicate");
        assert_eq!(spans[1].1.count(), 2);
        let text = m.render();
        assert!(text.contains("spans:"), "{text}");
        assert!(text.contains("run/replicate"), "{text}");
    }

    #[test]
    fn render_mentions_every_counter_and_phase() {
        let m = Metrics::new();
        m.add_rounds(7);
        m.record_phase("simulate", Duration::from_millis(2));
        let text = m.render();
        assert!(text.contains("rounds_simulated"));
        assert!(text.contains("replicas_retired"));
        assert!(text.contains('7'));
        assert!(text.contains("simulate"));
        assert!(text.contains("1 calls"));
    }
}
