//! Reading JSONL traces back from disk, tolerating torn lines.
//!
//! A trace produced by [`crate::JsonlSink`] can end mid-line: the sink
//! swallows I/O errors by design (a full disk must not abort a
//! simulation), and a crashed or killed process leaves whatever the
//! `BufWriter` had flushed. The reader therefore treats a line that does
//! not decode as damage to *that line only* — every complete event is
//! still recovered, and the caller gets a count of what was dropped so
//! it can report the trace as truncated rather than silently shortened.

use crate::event::Event;
use std::path::Path;

/// The result of reading a trace: the decoded events plus a tally of
/// undecodable (torn or foreign) lines.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRead {
    /// Every event that decoded cleanly, in file order.
    pub events: Vec<Event>,
    /// Lines that failed to decode (torn final line, unknown event
    /// types from a newer writer, stray garbage). Blank lines are not
    /// counted.
    pub skipped: usize,
    /// Whether the trace ends in a torn final line — text after the last
    /// newline that does not decode as an event. Such a trace was cut off
    /// mid-write (crash, kill, full disk) and the caller should report it
    /// as truncated rather than merely containing skipped lines.
    pub torn_tail: bool,
}

/// Decodes a trace from in-memory JSONL text. Undecodable lines are
/// skipped and counted, never fatal; a torn final line is additionally
/// flagged as [`TraceRead::torn_tail`].
#[must_use]
pub fn parse_trace(text: &str) -> TraceRead {
    let mut events = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Ok(ev) => events.push(ev),
            Err(_) => skipped += 1,
        }
    }
    let torn_tail = match text.rfind('\n') {
        Some(pos) => {
            let tail = &text[pos + 1..];
            !tail.trim().is_empty() && Event::from_json(tail).is_err()
        }
        None => !text.trim().is_empty() && Event::from_json(text).is_err(),
    };
    TraceRead { events, skipped, torn_tail }
}

/// Reads and decodes the JSONL trace at `path`.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be read; decode failures
/// within the file are tolerated (see [`parse_trace`]).
pub fn read_trace(path: impl AsRef<Path>) -> std::io::Result<TraceRead> {
    Ok(parse_trace(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplicationOutcome;

    fn events() -> Vec<Event> {
        vec![
            Event::RoundCompleted { rep: 0, round: 1, ones: 2, source_opinion: 1 },
            Event::RoundCompleted { rep: 0, round: 2, ones: 5, source_opinion: 1 },
            Event::ReplicationFinished {
                rep: 0,
                outcome: ReplicationOutcome::Converged,
                rounds: 2,
                elapsed_us: 17,
            },
        ]
    }

    fn render(events: &[Event]) -> String {
        events.iter().map(|e| format!("{}\n", e.to_json())).collect()
    }

    #[test]
    fn clean_trace_round_trips() {
        let trace = parse_trace(&render(&events()));
        assert_eq!(trace.events, events());
        assert_eq!(trace.skipped, 0);
        assert!(!trace.torn_tail);
    }

    #[test]
    fn truncated_final_line_loses_only_that_line() {
        let mut text = render(&events());
        // Simulate a crash mid-write: a final line cut off mid-object.
        text.push_str("{\"type\":\"round_completed\",\"rep\":0,\"rou");
        let trace = parse_trace(&text);
        assert_eq!(trace.events, events());
        assert_eq!(trace.skipped, 1);
        assert!(trace.torn_tail, "an undecodable unterminated tail marks the trace torn");
    }

    #[test]
    fn garbage_between_events_is_counted_not_fatal() {
        let all = events();
        let text = format!(
            "{}\nnot json at all\n\n{}\n{}\n",
            all[0].to_json(),
            all[1].to_json(),
            all[2].to_json()
        );
        let trace = parse_trace(&text);
        assert_eq!(trace.events, all);
        // The blank line is ignored; the garbage line is counted.
        assert_eq!(trace.skipped, 1);
        // Mid-file garbage is not a torn tail: the trace ends cleanly.
        assert!(!trace.torn_tail);
    }

    #[test]
    fn unterminated_but_decodable_final_line_is_not_torn() {
        // A writer killed between the record and its newline: the event is
        // complete, so nothing was lost.
        let all = events();
        let text = format!("{}\n{}", all[0].to_json(), all[1].to_json());
        let trace = parse_trace(&text);
        assert_eq!(trace.events, all[..2]);
        assert_eq!(trace.skipped, 0);
        assert!(!trace.torn_tail);
    }

    #[test]
    fn read_trace_from_disk() {
        let path =
            std::env::temp_dir().join(format!("obs_reader_test_{}.jsonl", std::process::id()));
        let mut text = render(&events());
        text.push_str("{\"torn");
        std::fs::write(&path, &text).unwrap();
        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.events, events());
        assert_eq!(trace.skipped, 1);
        assert!(trace.torn_tail);
        let _ = std::fs::remove_file(&path);
        assert!(read_trace(&path).is_err());
    }
}
