//! Reading JSONL traces back from disk, tolerating torn lines.
//!
//! A trace produced by [`crate::JsonlSink`] can end mid-line: the sink
//! swallows I/O errors by design (a full disk must not abort a
//! simulation), and a crashed or killed process leaves whatever the
//! `BufWriter` had flushed. The reader therefore treats a line that does
//! not decode as damage to *that line only* — every complete event is
//! still recovered, and the caller gets a count of what was dropped so
//! it can report the trace as truncated rather than silently shortened.

use crate::event::Event;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// The result of reading a trace: the decoded events plus a tally of
/// undecodable (torn or foreign) lines.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRead {
    /// Every event that decoded cleanly, in file order.
    pub events: Vec<Event>,
    /// Lines that failed to decode (torn final line, unknown event
    /// types from a newer writer, stray garbage). Blank lines are not
    /// counted.
    pub skipped: usize,
    /// Whether the trace ends in a torn final line — text after the last
    /// newline that does not decode as an event. Such a trace was cut off
    /// mid-write (crash, kill, full disk) and the caller should report it
    /// as truncated rather than merely containing skipped lines.
    pub torn_tail: bool,
}

/// Decodes a trace from in-memory JSONL text. Undecodable lines are
/// skipped and counted, never fatal; a torn final line is additionally
/// flagged as [`TraceRead::torn_tail`].
#[must_use]
pub fn parse_trace(text: &str) -> TraceRead {
    let mut events = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Ok(ev) => events.push(ev),
            Err(_) => skipped += 1,
        }
    }
    let torn_tail = match text.rfind('\n') {
        Some(pos) => {
            let tail = &text[pos + 1..];
            !tail.trim().is_empty() && Event::from_json(tail).is_err()
        }
        None => !text.trim().is_empty() && Event::from_json(text).is_err(),
    };
    TraceRead { events, skipped, torn_tail }
}

/// Per-file statistics from a streaming pass (the counts of
/// [`TraceRead`] without the materialized events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Events that decoded cleanly and were handed to the callback.
    pub events: usize,
    /// Undecodable lines (see [`TraceRead::skipped`]).
    pub skipped: usize,
    /// Whether the trace ends in a torn final line (see
    /// [`TraceRead::torn_tail`]).
    pub torn_tail: bool,
}

/// Streams the JSONL trace at `path` line by line, invoking `visit` for
/// every event that decodes — O(longest line) memory instead of O(file).
/// Undecodable lines are counted, never fatal; a torn final line (no
/// trailing newline, does not decode) is flagged in the returned stats,
/// with the same semantics as [`parse_trace`].
///
/// # Errors
///
/// Propagates I/O errors, including invalid UTF-8 reported by the
/// underlying reader.
pub fn stream_trace(
    path: impl AsRef<Path>,
    mut visit: impl FnMut(Event),
) -> std::io::Result<StreamStats> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut stats = StreamStats::default();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        let terminated = line.ends_with('\n');
        let body = line.trim();
        if body.is_empty() {
            continue;
        }
        match Event::from_json(body) {
            Ok(ev) => {
                stats.events += 1;
                visit(ev);
            }
            Err(_) => {
                stats.skipped += 1;
                // Only an *unterminated* undecodable final line is torn:
                // mid-file garbage ends with a newline and clears this.
                stats.torn_tail = !terminated;
                continue;
            }
        }
        stats.torn_tail = false;
    }
    Ok(stats)
}

/// Reads and decodes the JSONL trace at `path`, streaming lines through
/// [`stream_trace`] (O(line) memory, not O(file)).
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be read; decode failures
/// within the file are tolerated (see [`parse_trace`]).
pub fn read_trace(path: impl AsRef<Path>) -> std::io::Result<TraceRead> {
    let mut events = Vec::new();
    let stats = stream_trace(path, |ev| events.push(ev))?;
    Ok(TraceRead { events, skipped: stats.skipped, torn_tail: stats.torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplicationOutcome;

    fn events() -> Vec<Event> {
        vec![
            Event::RoundCompleted { rep: 0, round: 1, ones: 2, source_opinion: 1 },
            Event::RoundCompleted { rep: 0, round: 2, ones: 5, source_opinion: 1 },
            Event::ReplicationFinished {
                rep: 0,
                outcome: ReplicationOutcome::Converged,
                rounds: 2,
                elapsed_us: 17,
            },
        ]
    }

    fn render(events: &[Event]) -> String {
        events.iter().map(|e| format!("{}\n", e.to_json())).collect()
    }

    #[test]
    fn clean_trace_round_trips() {
        let trace = parse_trace(&render(&events()));
        assert_eq!(trace.events, events());
        assert_eq!(trace.skipped, 0);
        assert!(!trace.torn_tail);
    }

    #[test]
    fn truncated_final_line_loses_only_that_line() {
        let mut text = render(&events());
        // Simulate a crash mid-write: a final line cut off mid-object.
        text.push_str("{\"type\":\"round_completed\",\"rep\":0,\"rou");
        let trace = parse_trace(&text);
        assert_eq!(trace.events, events());
        assert_eq!(trace.skipped, 1);
        assert!(trace.torn_tail, "an undecodable unterminated tail marks the trace torn");
    }

    #[test]
    fn garbage_between_events_is_counted_not_fatal() {
        let all = events();
        let text = format!(
            "{}\nnot json at all\n\n{}\n{}\n",
            all[0].to_json(),
            all[1].to_json(),
            all[2].to_json()
        );
        let trace = parse_trace(&text);
        assert_eq!(trace.events, all);
        // The blank line is ignored; the garbage line is counted.
        assert_eq!(trace.skipped, 1);
        // Mid-file garbage is not a torn tail: the trace ends cleanly.
        assert!(!trace.torn_tail);
    }

    #[test]
    fn unterminated_but_decodable_final_line_is_not_torn() {
        // A writer killed between the record and its newline: the event is
        // complete, so nothing was lost.
        let all = events();
        let text = format!("{}\n{}", all[0].to_json(), all[1].to_json());
        let trace = parse_trace(&text);
        assert_eq!(trace.events, all[..2]);
        assert_eq!(trace.skipped, 0);
        assert!(!trace.torn_tail);
    }

    #[test]
    fn stream_trace_matches_parse_trace_on_every_shape() {
        // The streaming pass must agree with the in-memory parser on
        // events, skip counts and the torn-tail flag for every trace
        // shape the tests above exercise.
        let clean = render(&events());
        let torn = format!("{clean}{{\"type\":\"round_completed\",\"rep\":0,\"rou");
        let garbage = format!(
            "{}\nnot json at all\n\n{}\n{}\n",
            events()[0].to_json(),
            events()[1].to_json(),
            events()[2].to_json()
        );
        let unterminated = format!("{}\n{}", events()[0].to_json(), events()[1].to_json());
        let terminated_garbage_tail = format!("{clean}garbage line\n");
        for (i, text) in
            [clean, torn, garbage, unterminated, terminated_garbage_tail].iter().enumerate()
        {
            let path = std::env::temp_dir()
                .join(format!("obs_stream_test_{}_{i}.jsonl", std::process::id()));
            std::fs::write(&path, text).unwrap();
            let expected = parse_trace(text);
            let mut streamed = Vec::new();
            let stats = stream_trace(&path, |ev| streamed.push(ev)).unwrap();
            assert_eq!(streamed, expected.events, "shape {i}");
            assert_eq!(stats.events, expected.events.len(), "shape {i}");
            assert_eq!(stats.skipped, expected.skipped, "shape {i}");
            assert_eq!(stats.torn_tail, expected.torn_tail, "shape {i}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn read_trace_from_disk() {
        let path =
            std::env::temp_dir().join(format!("obs_reader_test_{}.jsonl", std::process::id()));
        let mut text = render(&events());
        text.push_str("{\"torn");
        std::fs::write(&path, &text).unwrap();
        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.events, events());
        assert_eq!(trace.skipped, 1);
        assert!(trace.torn_tail);
        let _ = std::fs::remove_file(&path);
        assert!(read_trace(&path).is_err());
    }
}
