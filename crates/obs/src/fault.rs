//! Fault injection for the durable-write path.
//!
//! [`FaultyWriter`] wraps any [`Write`] and injects the failure modes a
//! real deployment sees — torn final writes (crash / `kill -9` mid-line),
//! short writes, transient `Interrupted`/`WouldBlock` errors — so the
//! conformance harness can prove that the checkpoint/manifest machinery
//! recovers from each of them. It lives in the obs crate (rather than the
//! conformance crate) so the crate's own durability tests can use it
//! without a dependency cycle.
//!
//! The wrapper is deterministic: faults fire according to the configured
//! schedule, never randomly, so every scenario is reproducible.

use std::io::{ErrorKind, Write};

/// Deterministic fault-injecting [`Write`] wrapper.
///
/// Configure with the builder methods, then hand it to the component
/// under test (e.g. via `CheckpointLog::with_writer`). Faults compose:
/// the transient-error queue is consumed first, then the tear budget and
/// the short-write cap apply to the bytes actually written.
pub struct FaultyWriter<W: Write> {
    inner: W,
    /// Error kinds returned (in order) by successive `write` calls before
    /// any bytes are accepted again.
    transient: Vec<ErrorKind>,
    /// Per-call ceiling on accepted bytes (a "short write"); `None` means
    /// unlimited.
    short_write_cap: Option<usize>,
    /// Total bytes accepted before the writer "dies" (simulated crash
    /// mid-write): the final write is torn and every later call fails
    /// hard. `None` means immortal.
    tear_after: Option<usize>,
    written: usize,
    injected_transients: usize,
    dead: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with no faults configured (a transparent writer).
    pub fn new(inner: W) -> Self {
        FaultyWriter {
            inner,
            transient: Vec::new(),
            short_write_cap: None,
            tear_after: None,
            written: 0,
            injected_transients: 0,
            dead: false,
        }
    }

    /// Queue transient errors: the next `kinds.len()` write calls return
    /// these kinds in order (use `ErrorKind::Interrupted` /
    /// `ErrorKind::WouldBlock`), after which writes proceed normally.
    #[must_use]
    pub fn with_transient_errors(mut self, kinds: Vec<ErrorKind>) -> Self {
        // Stored reversed so firing is a cheap pop.
        self.transient = kinds.into_iter().rev().collect();
        self
    }

    /// Accept at most `cap` bytes per `write` call (forces callers to
    /// handle short writes).
    #[must_use]
    pub fn with_short_writes(mut self, cap: usize) -> Self {
        assert!(cap > 0, "a zero cap would starve compliant callers");
        self.short_write_cap = Some(cap);
        self
    }

    /// Die after accepting `budget` total bytes: the write that crosses
    /// the budget is torn (its prefix reaches the inner writer) and all
    /// subsequent writes fail with `BrokenPipe` — a crash mid-record.
    #[must_use]
    pub fn with_tear_after(mut self, budget: usize) -> Self {
        self.tear_after = Some(budget);
        self
    }

    /// Number of transient errors injected so far.
    pub fn injected_transients(&self) -> usize {
        self.injected_transients
    }

    /// Total bytes accepted by the inner writer.
    pub fn bytes_written(&self) -> usize {
        self.written
    }

    /// Whether the simulated crash has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(kind) = self.transient.pop() {
            self.injected_transients += 1;
            return Err(std::io::Error::new(kind, "injected transient fault"));
        }
        if self.dead {
            return Err(std::io::Error::new(ErrorKind::BrokenPipe, "writer died (injected)"));
        }
        let mut allowed = buf.len();
        if let Some(cap) = self.short_write_cap {
            allowed = allowed.min(cap);
        }
        if let Some(budget) = self.tear_after {
            let remaining = budget.saturating_sub(self.written);
            if remaining == 0 {
                self.dead = true;
                return Err(std::io::Error::new(ErrorKind::BrokenPipe, "writer died (injected)"));
            }
            if allowed >= remaining {
                // The torn write: deliver the prefix, then die.
                allowed = remaining;
                self.dead = true;
            }
        }
        let n = self.inner.write(&buf[..allowed])?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::new(ErrorKind::BrokenPipe, "writer died (injected)"));
        }
        self.inner.flush()
    }
}

impl<W: Write> std::fmt::Debug for FaultyWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyWriter")
            .field("pending_transients", &self.transient.len())
            .field("short_write_cap", &self.short_write_cap)
            .field("tear_after", &self.tear_after)
            .field("written", &self.written)
            .field("dead", &self.dead)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_by_default() {
        let mut w = FaultyWriter::new(Vec::new());
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.inner, b"hello");
        assert_eq!(w.bytes_written(), 5);
        assert!(!w.is_dead());
    }

    #[test]
    fn transient_errors_fire_in_order_then_clear() {
        let mut w = FaultyWriter::new(Vec::new())
            .with_transient_errors(vec![ErrorKind::Interrupted, ErrorKind::WouldBlock]);
        assert_eq!(w.write(b"x").unwrap_err().kind(), ErrorKind::Interrupted);
        assert_eq!(w.write(b"x").unwrap_err().kind(), ErrorKind::WouldBlock);
        assert_eq!(w.write(b"x").unwrap(), 1);
        assert_eq!(w.injected_transients(), 2);
    }

    #[test]
    fn short_writes_cap_each_call() {
        let mut w = FaultyWriter::new(Vec::new()).with_short_writes(4);
        assert_eq!(w.write(b"longer than four").unwrap(), 4);
        assert_eq!(w.inner, b"long");
    }

    #[test]
    fn tear_kills_mid_write() {
        let mut w = FaultyWriter::new(Vec::new()).with_tear_after(7);
        assert_eq!(w.write(b"first").unwrap(), 5);
        // This write crosses the budget: only 2 more bytes land.
        assert_eq!(w.write(b"second-record").unwrap(), 2);
        assert!(w.is_dead());
        assert_eq!(w.inner, b"firstse");
        assert_eq!(w.write(b"more").unwrap_err().kind(), ErrorKind::BrokenPipe);
        assert_eq!(w.flush().unwrap_err().kind(), ErrorKind::BrokenPipe);
    }
}
