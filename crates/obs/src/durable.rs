//! Durable write primitives: retry-with-backoff and atomic
//! rename-on-commit.
//!
//! The checkpoint log and the manifest ledger are the only state that
//! survives a crash, so their writes get stronger guarantees than the
//! best-effort trace sink:
//!
//! * [`write_all_retry`] / [`flush_retry`] absorb *transient* failures —
//!   short writes, `ErrorKind::Interrupted`, `ErrorKind::WouldBlock` —
//!   with a bounded exponential backoff, so a record either lands in full
//!   or the caller learns about a persistent failure;
//! * [`atomic_replace`] / [`atomic_append_line`] commit a whole file via
//!   write-to-temp + `sync_all` + rename, so readers (and a resumed run)
//!   never observe a half-written file even if the process dies
//!   mid-commit.

use std::io::{ErrorKind, Write};
use std::path::Path;
use std::time::Duration;

/// Maximum number of transient-error retries before a write is reported
/// as failed. Short writes do not count against this budget — only actual
/// `Interrupted`/`WouldBlock` errors do.
const MAX_TRANSIENT_RETRIES: u32 = 64;

/// Initial backoff between transient-error retries; doubles up to
/// [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_micros(50);

/// Backoff ceiling.
const MAX_BACKOFF: Duration = Duration::from_millis(5);

fn is_transient(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Interrupted | ErrorKind::WouldBlock)
}

/// Writes all of `buf`, resuming short writes and retrying transient
/// errors (`Interrupted`, `WouldBlock`) with exponential backoff.
///
/// # Errors
///
/// Returns the last error once the retry budget is exhausted, or
/// immediately for non-transient errors. `WriteZero` is reported if the
/// writer keeps accepting zero bytes.
pub fn write_all_retry<W: Write + ?Sized>(w: &mut W, mut buf: &[u8]) -> std::io::Result<()> {
    let mut retries = 0u32;
    let mut backoff = INITIAL_BACKOFF;
    let mut zero_writes = 0u32;
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                // A compliant writer making no progress: bounded patience,
                // then report, mirroring std's write_all.
                zero_writes += 1;
                if zero_writes > MAX_TRANSIENT_RETRIES {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "writer accepted no bytes",
                    ));
                }
            }
            Ok(n) => {
                buf = &buf[n..];
                zero_writes = 0;
            }
            Err(e) if is_transient(e.kind()) => {
                retries += 1;
                if retries > MAX_TRANSIENT_RETRIES {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Flushes `w`, retrying transient errors with the same policy as
/// [`write_all_retry`].
///
/// # Errors
///
/// Returns the last error once the retry budget is exhausted, or
/// immediately for non-transient errors.
pub fn flush_retry<W: Write + ?Sized>(w: &mut W) -> std::io::Result<()> {
    let mut retries = 0u32;
    let mut backoff = INITIAL_BACKOFF;
    loop {
        match w.flush() {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(e.kind()) => {
                retries += 1;
                if retries > MAX_TRANSIENT_RETRIES {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Atomically replaces the contents of `path` with `bytes`: the data is
/// written to a sibling temp file, synced to disk, then renamed over
/// `path`. A crash at any point leaves either the old or the new file —
/// never a torn mixture.
///
/// # Errors
///
/// Propagates I/O errors from the temp-file write, sync, or rename.
///
/// # Panics
///
/// Panics if `path` has no file name component.
pub fn atomic_replace(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path.file_name().expect("atomic_replace target must be a file path");
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        write_all_retry(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Appends `line` (a newline is added) to the JSONL file at `path` with
/// rename-on-commit semantics: the existing content plus the new line is
/// committed atomically, so a crash mid-append can never leave a torn
/// final record for a resumed run to trip over.
///
/// The read-rewrite cost is linear in the file size, which is fine for
/// low-frequency ledgers (run manifests); high-frequency appenders like
/// the checkpoint log instead use flushed appends plus torn-tail repair
/// on open.
///
/// # Errors
///
/// Propagates I/O errors from reading the existing file (except
/// `NotFound`) or committing the new one.
pub fn atomic_append_line(path: &Path, line: &str) -> std::io::Result<()> {
    let mut bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    // Repair a torn tail left by a non-atomic writer before appending.
    if !bytes.is_empty() && !bytes.ends_with(b"\n") {
        bytes.push(b'\n');
    }
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    atomic_replace(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("obs_durable_{}_{}.jsonl", name, std::process::id()))
    }

    #[test]
    fn atomic_replace_round_trips() {
        let path = tmp("replace");
        atomic_replace(&path, b"first\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first\n");
        atomic_replace(&path, b"second\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second\n");
        let mut tmp_name = path.file_name().unwrap().to_os_string();
        tmp_name.push(".tmp");
        assert!(!path.with_file_name(tmp_name).exists(), "temp file must not linger");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_append_line_builds_a_ledger() {
        let path = tmp("append");
        let _ = std::fs::remove_file(&path);
        atomic_append_line(&path, "{\"a\":1}").unwrap();
        atomic_append_line(&path, "{\"b\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_append_line_repairs_torn_tail() {
        let path = tmp("append_torn");
        std::fs::write(&path, "{\"ok\":1}\n{\"torn").unwrap();
        atomic_append_line(&path, "{\"next\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":1}\n{\"torn\n{\"next\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_all_retry_handles_short_writes() {
        struct Short(Vec<u8>);
        impl Write for Short {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = Short(Vec::new());
        write_all_retry(&mut w, b"hello durable world").unwrap();
        assert_eq!(w.0, b"hello durable world");
    }

    #[test]
    fn write_all_retry_absorbs_transient_errors() {
        struct Flaky {
            out: Vec<u8>,
            failures: u32,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.failures > 0 {
                    self.failures -= 1;
                    let kind = if self.failures.is_multiple_of(2) {
                        ErrorKind::Interrupted
                    } else {
                        ErrorKind::WouldBlock
                    };
                    return Err(std::io::Error::new(kind, "transient"));
                }
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = Flaky { out: Vec::new(), failures: 5 };
        write_all_retry(&mut w, b"record").unwrap();
        assert_eq!(w.out, b"record");
    }

    #[test]
    fn write_all_retry_gives_up_on_persistent_transients() {
        struct AlwaysBusy;
        impl Write for AlwaysBusy {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "busy forever"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_retry(&mut AlwaysBusy, b"x").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
    }

    #[test]
    fn hard_errors_are_immediate() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::new(ErrorKind::BrokenPipe, "gone"))
            }
        }
        assert_eq!(write_all_retry(&mut Broken, b"x").unwrap_err().kind(), ErrorKind::BrokenPipe);
        assert_eq!(flush_retry(&mut Broken).unwrap_err().kind(), ErrorKind::BrokenPipe);
    }
}
