//! Event sinks: where trace events go.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Destination for trace events.
///
/// Implementations must be cheap to query via [`EventSink::enabled`]:
/// instrumented hot paths call it (through `Obs::active`) before
/// constructing any [`Event`], so a disabled sink costs one predictable
/// branch per instrumentation site.
pub trait EventSink: Send + Sync {
    /// Whether this sink wants events at all. Callers should skip event
    /// construction entirely when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Discards everything; `enabled()` is `false` so instrumented code
/// skips event construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &Event) {}
}

/// Collects events in memory, for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a snapshot of all events recorded so far, in emission order.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the sink panicked while emitting.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the sink panicked while emitting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink poisoned").push(event.clone());
    }
}

/// Writes one compact JSON object per event, newline-delimited (JSONL).
///
/// Output is buffered; it is flushed on [`EventSink::flush`] and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        // An I/O error mid-trace (e.g. disk full) must not abort the
        // simulation; the trace just ends early.
        let _ = writer.write_all(event.to_json().as_bytes());
        let _ = writer.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplicationOutcome;

    fn sample() -> Event {
        Event::RoundCompleted { rep: 1, round: 2, ones: 3, source_opinion: 1 }
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(&sample()); // must be a no-op, not a panic
        sink.flush();
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        let events = vec![
            sample(),
            Event::ReplicationFinished {
                rep: 1,
                outcome: ReplicationOutcome::Converged,
                rounds: 3,
                elapsed_us: 10,
            },
        ];
        for ev in &events {
            sink.emit(ev);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events(), events);
    }

    #[test]
    fn jsonl_sink_survives_concurrent_emitters() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const EVENTS_PER_THREAD: u64 = 200;
        let path =
            std::env::temp_dir().join(format!("obs_sink_concurrent_{}.jsonl", std::process::id()));
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let handles: Vec<_> = (0..THREADS)
            .map(|rep| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for round in 1..=EVENTS_PER_THREAD {
                        sink.emit(&Event::RoundCompleted {
                            rep,
                            round,
                            ones: round,
                            source_opinion: 1,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sink.flush();
        let trace = crate::reader::read_trace(&path).unwrap();
        // Every line is a complete event: per-event lines never interleave
        // because the writer is emitted under one lock.
        assert_eq!(trace.skipped, 0);
        assert_eq!(trace.events.len(), (THREADS * EVENTS_PER_THREAD) as usize);
        // Per-thread emission order is preserved.
        let mut last_round = vec![0u64; THREADS as usize];
        for ev in &trace.events {
            let Event::RoundCompleted { rep, round, .. } = ev else {
                panic!("unexpected event {ev:?}");
            };
            assert_eq!(*round, last_round[*rep as usize] + 1);
            last_round[*rep as usize] = *round;
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("obs_sink_test_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&sample());
        sink.emit(&Event::ExperimentFinished { id: "e1".to_string(), pass: true, elapsed_us: 5 });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::from_json(lines[0]).unwrap(), sample());
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }
}
