//! Versioned, machine-readable performance baselines.
//!
//! A [`BenchRecord`] is the on-disk contract between a benchmark run and
//! everything that later consumes it (regression comparison, CI
//! artifacts): one `BENCH_<label>.json` file carrying a schema version,
//! the run's provenance knobs (scale, seed, worker cap) and a list of
//! entries, each holding the *raw samples* of one workload rather than a
//! pre-digested summary — so a comparison can pick its own statistic and
//! run a distribution test instead of trusting a stored mean.
//!
//! The schema is versioned explicitly: readers accept records up to
//! [`BENCH_SCHEMA_VERSION`] and refuse newer ones, so a stale binary
//! fails loudly instead of silently misreading a future layout.

use crate::json::{self, Value};
use std::path::{Path, PathBuf};

/// Current `BENCH_*.json` schema version. Bump when the layout changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Raw samples for one benchmark workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Workload id, e.g. `agent_step` or `pool_scaling_w4`.
    pub id: String,
    /// Unit of each sample, e.g. `steps/s`. All bundled workloads use
    /// throughput units: higher is better.
    pub unit: String,
    /// One measured value per repetition.
    pub samples: Vec<f64>,
}

impl BenchEntry {
    /// Median of the samples (0 when empty).
    #[must_use]
    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }
}

/// One benchmark run: provenance plus per-workload samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Schema version the record was written with.
    pub schema_version: u64,
    /// Human-chosen label; determines the file name.
    pub label: String,
    /// Scale name the workloads ran at (`smoke` / `standard` / `full`).
    pub scale: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Highest worker count exercised by the pool-scaling workloads.
    pub pool_workers: u64,
    /// Per-workload results.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// Creates an empty record with the current schema version.
    #[must_use]
    pub fn new(label: &str, scale: &str, seed: u64, pool_workers: u64) -> Self {
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            label: label.to_string(),
            scale: scale.to_string(),
            seed,
            pool_workers,
            entries: Vec::new(),
        }
    }

    /// Appends one workload's samples.
    pub fn push(&mut self, id: &str, unit: &str, samples: Vec<f64>) {
        self.entries.push(BenchEntry { id: id.to_string(), unit: unit.to_string(), samples });
    }

    /// The entry with the given workload id, if present.
    #[must_use]
    pub fn entry(&self, id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// The conventional file name for this record: `BENCH_<label>.json`
    /// with path-hostile characters in the label replaced by `-`.
    #[must_use]
    pub fn filename(&self) -> String {
        let safe: String = self
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        format!("BENCH_{safe}.json")
    }

    /// Encodes the record as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("id".to_string(), Value::Str(e.id.clone())),
                    ("unit".to_string(), Value::Str(e.unit.clone())),
                    (
                        "samples".to_string(),
                        Value::Arr(e.samples.iter().map(|&s| Value::Num(s)).collect()),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema_version".to_string(), Value::Int(i128::from(self.schema_version))),
            ("label".to_string(), Value::Str(self.label.clone())),
            ("scale".to_string(), Value::Str(self.scale.clone())),
            ("seed".to_string(), Value::Int(i128::from(self.seed))),
            ("pool_workers".to_string(), Value::Int(i128::from(self.pool_workers))),
            ("entries".to_string(), Value::Arr(entries)),
        ])
        .render()
    }

    /// Decodes a record, refusing schema versions newer than this build
    /// understands.
    ///
    /// # Errors
    ///
    /// Returns a description on malformed JSON, missing fields, or an
    /// unsupported schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let version =
            value.get("schema_version").and_then(Value::as_u64).ok_or("missing schema_version")?;
        if version > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema version {version} is newer than supported {BENCH_SCHEMA_VERSION}"
            ));
        }
        let str_field = |k: &str| {
            value.get(k).and_then(Value::as_str).map(str::to_string).ok_or(format!("missing {k}"))
        };
        let u64_field =
            |k: &str| value.get(k).and_then(Value::as_u64).ok_or(format!("missing {k}"));
        let Some(Value::Arr(raw_entries)) = value.get("entries") else {
            return Err("missing entries".to_string());
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for raw in raw_entries {
            let id = raw.get("id").and_then(Value::as_str).ok_or("entry missing id")?;
            let unit = raw.get("unit").and_then(Value::as_str).ok_or("entry missing unit")?;
            let Some(Value::Arr(raw_samples)) = raw.get("samples") else {
                return Err(format!("entry {id} missing samples"));
            };
            let samples = raw_samples
                .iter()
                .map(|s| s.as_f64().ok_or(format!("entry {id} has a non-numeric sample")))
                .collect::<Result<Vec<f64>, String>>()?;
            entries.push(BenchEntry { id: id.to_string(), unit: unit.to_string(), samples });
        }
        Ok(BenchRecord {
            schema_version: version,
            label: str_field("label")?,
            scale: str_field("scale")?,
            seed: u64_field("seed")?,
            pool_workers: u64_field("pool_workers")?,
            entries,
        })
    }

    /// Writes the record to `dir` under its conventional file name and
    /// returns the full path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.filename());
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }

    /// Reads and decodes a record from `path`.
    ///
    /// # Errors
    ///
    /// Returns a description on I/O failure or any [`Self::from_json`]
    /// error.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> BenchRecord {
        let mut rec = BenchRecord::new("smoke", "smoke", 42, 4);
        rec.push("agent_step", "steps/s", vec![1.0e6, 1.2e6, 1.1e6]);
        rec.push("pool_scaling_w4", "reps/s", vec![800.0, 760.5]);
        rec
    }

    #[test]
    fn round_trips_through_json() {
        let rec = sample_record();
        let back = BenchRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
    }

    #[test]
    fn median_handles_even_and_odd_counts() {
        let rec = sample_record();
        assert_eq!(rec.entry("agent_step").unwrap().median(), 1.1e6);
        assert_eq!(rec.entry("pool_scaling_w4").unwrap().median(), 780.25);
        assert_eq!(
            BenchEntry { id: String::new(), unit: String::new(), samples: vec![] }.median(),
            0.0
        );
    }

    #[test]
    fn filename_is_sanitized() {
        let rec = BenchRecord::new("ci/base line", "smoke", 0, 1);
        assert_eq!(rec.filename(), "BENCH_ci-base-line.json");
    }

    #[test]
    fn newer_schema_versions_are_refused() {
        let mut rec = sample_record();
        rec.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchRecord::from_json(&rec.to_json()).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(BenchRecord::from_json("not json").is_err());
        assert!(BenchRecord::from_json("{}").is_err());
        assert!(BenchRecord::from_json(r#"{"schema_version":1,"label":"x"}"#).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir();
        let mut rec = sample_record();
        rec.label = format!("rec_test_{}", std::process::id());
        let path = rec.save(&dir).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("BENCH_rec_test_"));
        let back = BenchRecord::load(&path).unwrap();
        assert_eq!(back, rec);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entry_lookup() {
        let rec = sample_record();
        assert!(rec.entry("agent_step").is_some());
        assert!(rec.entry("missing").is_none());
    }
}
