//! A minimal stderr progress meter for long replication batches.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-safe progress meter that rewrites one output line (`\r`).
///
/// With a known total it only redraws when the integer percentage
/// changes, so ticking from a tight loop is cheap. A total of `0` means
/// indeterminate: every tick redraws a plain completion count.
///
/// The meter owns its output line until [`Progress::finish`] is called,
/// which erases the rewritten line and prints one final summary line —
/// so whatever the process writes next starts on a clean line instead of
/// clobbering a half-drawn percentage. `finish` is idempotent and ticks
/// arriving after it are counted but no longer drawn.
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    last_pct: AtomicU64,
    /// Visible width of the most recent redraw (0 = nothing drawn yet).
    drawn_width: AtomicUsize,
    finished: AtomicBool,
    out: Mutex<Box<dyn Write + Send>>,
}

impl Progress {
    /// A meter for `total` units of work under `label` (`0` =
    /// indeterminate), drawing to stderr.
    #[must_use]
    pub fn new(label: &str, total: u64) -> Self {
        Self::with_writer(label, total, Box::new(std::io::stderr()))
    }

    /// A meter drawing to an arbitrary writer (tests, alternative TTYs).
    #[must_use]
    pub fn with_writer(label: &str, total: u64, out: Box<dyn Write + Send>) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: AtomicU64::new(0),
            last_pct: AtomicU64::new(u64::MAX),
            drawn_width: AtomicUsize::new(0),
            finished: AtomicBool::new(false),
            out: Mutex::new(out),
        }
    }

    /// Redraws the meter line, padding with spaces when the previous
    /// draw was wider so stale characters never survive a shrink.
    fn draw(&self, line: &str) {
        let width = line.chars().count();
        let prev = self.drawn_width.swap(width, Ordering::Relaxed);
        let pad = prev.saturating_sub(width);
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = write!(out, "\r{line}{:pad$}", "");
        let _ = out.flush();
    }

    /// Records `n` completed units and redraws if the meter moved.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the meter panicked mid-draw.
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if self.finished.load(Ordering::Relaxed) {
            return;
        }
        if self.total == 0 {
            self.draw(&format!("{}: {} done", self.label, done));
            return;
        }
        let pct = (done.min(self.total) * 100) / self.total;
        if self.last_pct.swap(pct, Ordering::Relaxed) != pct {
            self.draw(&format!("{}: {:>3}% ({}/{})", self.label, pct, done, self.total));
        }
    }

    /// Units completed so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Finalizes the meter: erases the rewritten line and prints one
    /// newline-terminated summary, leaving the cursor on a fresh line.
    /// Idempotent — only the first call writes anything — and a meter
    /// that never drew stays silent.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the meter panicked mid-draw.
    pub fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        let width = self.drawn_width.swap(0, Ordering::Relaxed);
        if width == 0 {
            return;
        }
        let done = self.done();
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = write!(out, "\r{:width$}\r", "");
        if self.total == 0 {
            let _ = writeln!(out, "{}: {} done", self.label, done);
        } else {
            let _ = writeln!(out, "{}: {}/{} done", self.label, done.min(self.total), self.total);
        }
        let _ = out.flush();
    }
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("label", &self.label)
            .field("total", &self.total)
            .field("done", &self.done())
            .field("finished", &self.finished.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A writer whose buffer the test can read back after handing the
    /// meter its `Box<dyn Write>` half.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn meter(label: &str, total: u64) -> (Progress, SharedBuf) {
        let buf = SharedBuf::default();
        (Progress::with_writer(label, total, Box::new(buf.clone())), buf)
    }

    #[test]
    fn counts_ticks() {
        let (p, _) = meter("reps", 10);
        p.tick(3);
        p.tick(4);
        assert_eq!(p.done(), 7);
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let (p, _) = meter("empty", 0);
        p.tick(1); // must not panic
        assert_eq!(p.done(), 1);
    }

    #[test]
    fn finish_clears_the_rewritten_line() {
        let (p, buf) = meter("reps", 4);
        p.tick(2);
        p.tick(2);
        p.finish();
        let out = buf.contents();
        // The line is erased (carriage return + blanks + carriage return)
        // before the final summary, so the summary starts at column 0 and
        // is newline-terminated.
        let erase_start = out.rfind("\r\u{20}").expect("erase sequence present");
        let tail = &out[erase_start..];
        assert!(tail.trim_start_matches(['\r', ' ']).starts_with("reps: 4/4 done"), "{out:?}");
        assert!(out.ends_with("reps: 4/4 done\n"), "{out:?}");
    }

    #[test]
    fn finish_is_idempotent() {
        let (p, buf) = meter("reps", 2);
        p.tick(2);
        p.finish();
        let after_first = buf.contents();
        p.finish();
        p.finish();
        assert_eq!(buf.contents(), after_first);
    }

    #[test]
    fn finish_without_draw_stays_silent() {
        let (p, buf) = meter("reps", 5);
        p.finish();
        assert_eq!(buf.contents(), "");
    }

    #[test]
    fn finish_finalizes_indeterminate_meters_too() {
        let (p, buf) = meter("work", 0);
        p.tick(3);
        p.finish();
        assert!(buf.contents().ends_with("work: 3 done\n"), "{:?}", buf.contents());
    }

    #[test]
    fn ticks_after_finish_count_but_do_not_draw() {
        let (p, buf) = meter("reps", 10);
        p.tick(5);
        p.finish();
        let after_finish = buf.contents();
        p.tick(5);
        assert_eq!(p.done(), 10);
        assert_eq!(buf.contents(), after_finish);
    }

    #[test]
    fn finish_erases_the_full_width_of_the_last_draw() {
        let (p, buf) = meter("x", 0);
        p.tick(99); // draws "x: 99 done"
        p.tick(1); // draws "x: 100 done" (11 chars wide)
        p.finish();
        let out = buf.contents();
        assert!(out.contains("\r           \r"), "{out:?}");
    }
}
