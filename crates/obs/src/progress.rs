//! A minimal stderr progress meter for long replication batches.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Smoothing factor for the tick-rate EWMA: high enough to follow a
/// sweep moving between batch regimes, low enough to damp per-tick
/// scheduling jitter.
const EWMA_ALPHA: f64 = 0.2;

/// Thread-safe progress meter that rewrites one output line (`\r`).
///
/// With a known total it only redraws when the integer percentage
/// changes, so ticking from a tight loop is cheap. A total of `0` means
/// indeterminate: every tick redraws a plain completion count.
///
/// Each tick also feeds an exponentially weighted moving average of the
/// completion rate; the live line shows the smoothed rate plus an ETA
/// when the total is known, and [`Progress::finish`] reports the final
/// whole-run average rate. The telemetry snapshot thread reads the same
/// estimators via [`Progress::rate_per_sec`] / [`Progress::eta_secs`].
///
/// The meter owns its output line until [`Progress::finish`] is called,
/// which erases the rewritten line and prints one final summary line —
/// so whatever the process writes next starts on a clean line instead of
/// clobbering a half-drawn percentage. `finish` is idempotent and ticks
/// arriving after it are counted but no longer drawn.
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    last_pct: AtomicU64,
    /// Visible width of the most recent redraw (0 = nothing drawn yet).
    drawn_width: AtomicUsize,
    finished: AtomicBool,
    started: Instant,
    /// Nanoseconds since `started` at the previous tick.
    last_tick_nanos: AtomicU64,
    /// EWMA of the tick rate, stored as `f64::to_bits`.
    ewma_rate: AtomicU64,
    out: Mutex<Box<dyn Write + Send>>,
}

impl Progress {
    /// A meter for `total` units of work under `label` (`0` =
    /// indeterminate), drawing to stderr.
    #[must_use]
    pub fn new(label: &str, total: u64) -> Self {
        Self::with_writer(label, total, Box::new(std::io::stderr()))
    }

    /// A meter drawing to an arbitrary writer (tests, alternative TTYs).
    #[must_use]
    pub fn with_writer(label: &str, total: u64, out: Box<dyn Write + Send>) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: AtomicU64::new(0),
            last_pct: AtomicU64::new(u64::MAX),
            drawn_width: AtomicUsize::new(0),
            finished: AtomicBool::new(false),
            started: Instant::now(),
            last_tick_nanos: AtomicU64::new(0),
            // NaN is the "never ticked" sentinel: a genuine smoothed rate
            // of exactly 0.0 (a long stall) must keep feeding the EWMA
            // instead of restarting the smoothing from the next
            // instantaneous rate.
            ewma_rate: AtomicU64::new(f64::NAN.to_bits()),
            out: Mutex::new(out),
        }
    }

    /// Redraws the meter line, padding with spaces when the previous
    /// draw was wider so stale characters never survive a shrink.
    fn draw(&self, line: &str) {
        let width = line.chars().count();
        let prev = self.drawn_width.swap(width, Ordering::Relaxed);
        let pad = prev.saturating_sub(width);
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = write!(out, "\r{line}{:pad$}", "");
        let _ = out.flush();
    }

    /// Folds `n` completed units into the rate EWMA. Concurrent tickers
    /// race on the previous-tick timestamp; the estimate is statistical,
    /// so the occasional lost update is acceptable.
    fn update_rate(&self, n: u64) {
        let now = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let prev = self.last_tick_nanos.swap(now, Ordering::Relaxed);
        let dt = now.saturating_sub(prev);
        if dt == 0 {
            return;
        }
        let inst = n as f64 * 1e9 / dt as f64;
        let old = f64::from_bits(self.ewma_rate.load(Ordering::Relaxed));
        // NaN means "first tick" (see the field init); any finite value —
        // including a genuine 0.0 after a stall — is smoothed normally, so
        // the rate and ETA never jump discontinuously.
        let next = if old.is_nan() { inst } else { EWMA_ALPHA * inst + (1.0 - EWMA_ALPHA) * old };
        self.ewma_rate.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Records `n` completed units and redraws if the meter moved.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the meter panicked mid-draw.
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        self.update_rate(n);
        if self.finished.load(Ordering::Relaxed) {
            return;
        }
        if self.total == 0 {
            self.draw(&format!("{}: {} done", self.label, done));
            return;
        }
        let pct = (done.min(self.total) * 100) / self.total;
        if self.last_pct.swap(pct, Ordering::Relaxed) != pct {
            let rate = self.rate_per_sec();
            let line = match self.eta_secs() {
                Some(eta) if rate > 0.0 => format!(
                    "{}: {:>3}% ({}/{}) {}/s eta {}",
                    self.label,
                    pct,
                    done,
                    self.total,
                    fmt_rate(rate),
                    fmt_eta(eta)
                ),
                _ => format!("{}: {:>3}% ({}/{})", self.label, pct, done, self.total),
            };
            self.draw(&line);
        }
    }

    /// Units completed so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Units expected in total (`0` = indeterminate).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smoothed completion rate in units per second (`0.0` before the
    /// first tick).
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        let rate = f64::from_bits(self.ewma_rate.load(Ordering::Relaxed));
        if rate.is_nan() {
            0.0
        } else {
            rate
        }
    }

    /// Estimated seconds until `done` reaches `total`, from the smoothed
    /// rate. `None` when the total is unknown, nothing has ticked yet,
    /// or the meter is already complete.
    #[must_use]
    pub fn eta_secs(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let remaining = self.total.saturating_sub(self.done());
        if remaining == 0 {
            return Some(0.0);
        }
        let rate = self.rate_per_sec();
        if rate > 0.0 {
            Some(remaining as f64 / rate)
        } else {
            None
        }
    }

    /// Whole-run average rate: units completed per second since the
    /// meter was created.
    #[must_use]
    pub fn average_rate_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.done() as f64 / secs
        }
    }

    /// Finalizes the meter: erases the rewritten line and prints one
    /// newline-terminated summary (including the final average rate),
    /// leaving the cursor on a fresh line. Idempotent — only the first
    /// call writes anything — and a meter that never drew stays silent.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the meter panicked mid-draw.
    pub fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        let width = self.drawn_width.swap(0, Ordering::Relaxed);
        if width == 0 {
            return;
        }
        let done = self.done();
        let rate = fmt_rate(self.average_rate_per_sec());
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = write!(out, "\r{:width$}\r", "");
        if self.total == 0 {
            let _ = writeln!(out, "{}: {} done ({rate}/s)", self.label, done);
        } else {
            let _ = writeln!(
                out,
                "{}: {}/{} done ({rate}/s)",
                self.label,
                done.min(self.total),
                self.total
            );
        }
        let _ = out.flush();
    }
}

/// Compact rate: `8.6M`, `12.3k`, `45`, `1.5`.
fn fmt_rate(r: f64) -> String {
    if !r.is_finite() {
        return "?".to_string();
    }
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else if r >= 10.0 {
        format!("{r:.0}")
    } else {
        format!("{r:.1}")
    }
}

/// Compact ETA: `2.1h`, `3.5m`, `42s`.
fn fmt_eta(s: f64) -> String {
    if !s.is_finite() {
        return "?".to_string();
    }
    if s >= 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{s:.0}s")
    }
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("label", &self.label)
            .field("total", &self.total)
            .field("done", &self.done())
            .field("rate_per_sec", &self.rate_per_sec())
            .field("finished", &self.finished.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A writer whose buffer the test can read back after handing the
    /// meter its `Box<dyn Write>` half.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn meter(label: &str, total: u64) -> (Progress, SharedBuf) {
        let buf = SharedBuf::default();
        (Progress::with_writer(label, total, Box::new(buf.clone())), buf)
    }

    #[test]
    fn counts_ticks() {
        let (p, _) = meter("reps", 10);
        p.tick(3);
        p.tick(4);
        assert_eq!(p.done(), 7);
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let (p, _) = meter("empty", 0);
        p.tick(1); // must not panic
        assert_eq!(p.done(), 1);
    }

    #[test]
    fn ticks_feed_the_rate_estimate() {
        let (p, _) = meter("reps", 100);
        assert_eq!(p.rate_per_sec(), 0.0);
        assert_eq!(p.eta_secs(), None, "no rate before the first tick");
        p.tick(10);
        assert!(p.rate_per_sec() > 0.0, "EWMA primed by the first tick");
        let eta = p.eta_secs().expect("known total + rate gives an ETA");
        assert!(eta >= 0.0);
        // Finishing the work pins the ETA to zero regardless of rate.
        p.tick(90);
        assert_eq!(p.eta_secs(), Some(0.0));
    }

    #[test]
    fn a_zero_ewma_keeps_smoothing_instead_of_restarting() {
        // Regression: `update_rate` used `old == 0.0` as the "uninitialized"
        // test, so a smoothed rate that genuinely decayed to 0.0 (a long
        // stall) restarted the EWMA at the next instantaneous rate instead
        // of blending it, making the displayed rate and ETA jump. The
        // sentinel is now NaN; 0.0 is an ordinary sample.
        let (p, _) = meter("reps", 100);
        p.ewma_rate.store(0.0f64.to_bits(), Ordering::Relaxed);
        let prev = p.last_tick_nanos.load(Ordering::Relaxed);
        p.tick(10);
        // `update_rate` recorded its own `now`; reading it back lets the
        // test recompute the exact instantaneous rate the tick saw.
        let now = p.last_tick_nanos.load(Ordering::Relaxed);
        let dt = now - prev;
        assert!(dt > 0, "time advanced since the meter was created");
        let inst = 10.0 * 1e9 / dt as f64;
        let rate = p.rate_per_sec();
        // Fixed behaviour: next = ALPHA * inst + (1 - ALPHA) * 0.0.
        // Buggy behaviour restarted at `inst`, 1/ALPHA = 5x larger.
        assert!(
            (rate - EWMA_ALPHA * inst).abs() <= 1e-9 * inst,
            "a genuine 0.0 EWMA must be smoothed, not restarted: got {rate}, inst {inst}"
        );
    }

    #[test]
    fn indeterminate_meters_have_no_eta() {
        let (p, _) = meter("work", 0);
        p.tick(5);
        assert!(p.rate_per_sec() > 0.0);
        assert_eq!(p.eta_secs(), None);
    }

    #[test]
    fn live_line_includes_rate_and_eta() {
        let (p, buf) = meter("reps", 4);
        p.tick(2);
        let out = buf.contents();
        assert!(out.contains("reps:  50% (2/4)"), "{out:?}");
        assert!(out.contains("/s eta "), "{out:?}");
    }

    #[test]
    fn finish_clears_the_rewritten_line() {
        let (p, buf) = meter("reps", 4);
        p.tick(2);
        p.tick(2);
        p.finish();
        let out = buf.contents();
        // The line is erased (carriage return + blanks + carriage return)
        // before the final summary, so the summary starts at column 0 and
        // is newline-terminated.
        let erase_start = out.rfind("\r\u{20}").expect("erase sequence present");
        let tail = &out[erase_start..];
        assert!(tail.trim_start_matches(['\r', ' ']).starts_with("reps: 4/4 done ("), "{out:?}");
        assert!(out.ends_with("/s)\n"), "{out:?}");
    }

    #[test]
    fn finish_reports_the_final_rate() {
        let (p, buf) = meter("reps", 2);
        p.tick(2);
        p.finish();
        let out = buf.contents();
        assert!(out.contains("reps: 2/2 done ("), "{out:?}");
        assert!(out.ends_with("/s)\n"), "{out:?}");
    }

    #[test]
    fn finish_is_idempotent() {
        let (p, buf) = meter("reps", 2);
        p.tick(2);
        p.finish();
        let after_first = buf.contents();
        p.finish();
        p.finish();
        assert_eq!(buf.contents(), after_first);
    }

    #[test]
    fn finish_without_draw_stays_silent() {
        let (p, buf) = meter("reps", 5);
        p.finish();
        assert_eq!(buf.contents(), "");
    }

    #[test]
    fn finish_finalizes_indeterminate_meters_too() {
        let (p, buf) = meter("work", 0);
        p.tick(3);
        p.finish();
        let out = buf.contents();
        assert!(out.contains("work: 3 done ("), "{out:?}");
        assert!(out.ends_with("/s)\n"), "{out:?}");
    }

    #[test]
    fn ticks_after_finish_count_but_do_not_draw() {
        let (p, buf) = meter("reps", 10);
        p.tick(5);
        p.finish();
        let after_finish = buf.contents();
        p.tick(5);
        assert_eq!(p.done(), 10);
        assert_eq!(buf.contents(), after_finish);
    }

    #[test]
    fn finish_erases_the_full_width_of_the_last_draw() {
        let (p, buf) = meter("x", 0);
        p.tick(99); // draws "x: 99 done"
        p.tick(1); // draws "x: 100 done" (11 chars wide)
        p.finish();
        let out = buf.contents();
        assert!(out.contains("\r           \r"), "{out:?}");
    }

    #[test]
    fn rate_formats_compactly() {
        assert_eq!(fmt_rate(2_500_000.0), "2.5M");
        assert_eq!(fmt_rate(12_300.0), "12.3k");
        assert_eq!(fmt_rate(45.0), "45");
        assert_eq!(fmt_rate(1.52), "1.5");
        assert_eq!(fmt_eta(7200.0), "2.0h");
        assert_eq!(fmt_eta(90.0), "1.5m");
        assert_eq!(fmt_eta(42.0), "42s");
    }
}
