//! A minimal stderr progress meter for long replication batches.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe progress meter that rewrites one stderr line (`\r`).
///
/// With a known total it only redraws when the integer percentage
/// changes, so ticking from a tight loop is cheap. A total of `0` means
/// indeterminate: every tick redraws a plain completion count.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    last_pct: AtomicU64,
}

impl Progress {
    /// A meter for `total` units of work under `label` (`0` =
    /// indeterminate).
    #[must_use]
    pub fn new(label: &str, total: u64) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: AtomicU64::new(0),
            last_pct: AtomicU64::new(u64::MAX),
        }
    }

    /// Records `n` completed units and redraws if the meter moved.
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if self.total == 0 {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{}: {} done", self.label, done);
            let _ = err.flush();
            return;
        }
        let pct = (done.min(self.total) * 100) / self.total;
        if self.last_pct.swap(pct, Ordering::Relaxed) != pct {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{}: {:>3}% ({}/{})", self.label, pct, done, self.total);
            let _ = err.flush();
        }
    }

    /// Units completed so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Finishes the meter line with a newline.
    pub fn finish(&self) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks() {
        let p = Progress::new("reps", 10);
        p.tick(3);
        p.tick(4);
        assert_eq!(p.done(), 7);
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let p = Progress::new("empty", 0);
        p.tick(1); // must not panic
        assert_eq!(p.done(), 1);
    }
}
