//! Structured observability for the bitdissem engine.
//!
//! The crate provides four small pieces that compose into a tracing /
//! metrics layer threaded through `sim` → `experiments` → `cli`:
//!
//! - [`EventSink`] + typed [`Event`]s — structured trace records
//!   (JSONL to a file, in-memory for tests, or discarded),
//! - [`Metrics`] — coarse atomic counters and named phase timers,
//! - [`Timer`] / [`Scope`] — monotonic span timing,
//! - [`RunManifest`] — a provenance record serialized next to reports.
//!
//! Everything funnels through one cheap handle, [`Obs`]. The contract
//! for instrumented hot paths is: **check [`Obs::active`] (one bool
//! load) before constructing any event**. With the default
//! [`Obs::none`] handle, `active()` is `false`, counters are skipped,
//! and instrumentation compiles down to a predictable never-taken
//! branch — simulation results are bit-identical with and without it.
//!
//! ```
//! use bitdissem_obs::{Event, MemorySink, Obs};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let obs = Obs::none().with_sink(sink.clone());
//! if obs.active() {
//!     obs.emit(&Event::RoundCompleted { rep: 0, round: 0, ones: 1, source_opinion: 1 });
//! }
//! assert_eq!(sink.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod bench_record;
pub mod checkpoint;
pub mod columnar;
pub mod durable;
pub mod event;
pub mod fault;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod reader;
pub mod sink;
pub mod telemetry;
pub mod time;

pub use bench_record::{BenchEntry, BenchRecord, BENCH_SCHEMA_VERSION};
pub use checkpoint::{CheckpointLog, ResumeStats};
pub use columnar::{detect_format, ColumnarReader, ColumnarSink, TraceFormat};
pub use event::{Event, ReplicationOutcome};
pub use fault::FaultyWriter;
pub use hist::LogHistogram;
pub use manifest::RunManifest;
pub use metrics::{CounterSnapshot, GaugeId, LatencyId, Metrics, PhaseStat, LATENCY_SAMPLE_EVERY};
pub use profile::SpanGuard;
pub use progress::Progress;
pub use reader::{parse_trace, read_trace, stream_trace, StreamStats, TraceRead};
pub use sink::{EventSink, JsonlSink, MemorySink, NullSink};
pub use telemetry::{
    start_telemetry, Counter, SnapshotRing, TelemetryExporter, TelemetryHandle, TelemetrySnapshot,
};
pub use time::{Scope, Timer};

use std::sync::Arc;

/// Shared observability handle passed down the simulation stack.
///
/// Cloning is cheap (three `Arc`s and two scalars). The handle is
/// immutable after construction, so worker threads can share one clone
/// freely.
#[derive(Clone)]
pub struct Obs {
    sink: Arc<dyn EventSink>,
    metrics: Arc<Metrics>,
    progress: Option<Arc<Progress>>,
    checkpoint: Option<Arc<CheckpointLog>>,
    checkpoint_ns: Arc<str>,
    active: bool,
    metrics_on: bool,
    round_stride: u64,
}

impl Obs {
    /// The disabled handle: no events, no metrics, no progress.
    /// [`Obs::active`] is `false` and every emit helper is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Obs {
            sink: Arc::new(NullSink),
            metrics: Arc::new(Metrics::new()),
            progress: None,
            checkpoint: None,
            checkpoint_ns: Arc::from(""),
            active: false,
            metrics_on: false,
            round_stride: 1,
        }
    }

    /// Attaches an event sink; activates event emission if the sink is
    /// enabled.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.active = sink.enabled();
        self.sink = sink;
        self
    }

    /// Turns on metrics collection (counters + phase timers).
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics_on = true;
        self
    }

    /// Attaches a progress meter.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Emit `RoundCompleted` only every `stride`-th round (and always
    /// round 0). `stride` 0 is treated as 1.
    #[must_use]
    pub fn with_round_stride(mut self, stride: u64) -> Self {
        self.round_stride = stride.max(1);
        self
    }

    /// Attaches a checkpoint log. Replicated workloads consult the log
    /// before running a replication and record each fresh result.
    #[must_use]
    pub fn with_checkpoint(mut self, log: Arc<CheckpointLog>) -> Self {
        self.checkpoint = Some(log);
        self
    }

    /// Sets the namespace prepended to checkpoint keys (conventionally
    /// the experiment id), isolating experiments within a shared log.
    #[must_use]
    pub fn with_checkpoint_ns(mut self, ns: &str) -> Self {
        self.checkpoint_ns = Arc::from(ns);
        self
    }

    /// The checkpoint log, if one is attached.
    #[must_use]
    pub fn checkpoint(&self) -> Option<&Arc<CheckpointLog>> {
        self.checkpoint.as_ref()
    }

    /// Builds a namespaced checkpoint key: `<ns>/<body>` (or `body`
    /// alone when no namespace is set).
    #[must_use]
    pub fn checkpoint_key(&self, body: &str) -> String {
        if self.checkpoint_ns.is_empty() {
            body.to_string()
        } else {
            format!("{}/{}", self.checkpoint_ns, body)
        }
    }

    /// Whether event emission is on. Hot paths must check this before
    /// building events.
    #[inline]
    #[must_use]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Whether metrics collection is on.
    #[inline]
    #[must_use]
    pub fn metrics_on(&self) -> bool {
        self.metrics_on
    }

    /// Whether a `RoundCompleted` event should be emitted for `round`.
    #[inline]
    #[must_use]
    pub fn wants_round(&self, round: u64) -> bool {
        self.active && round.is_multiple_of(self.round_stride)
    }

    /// Sends one event to the sink (unconditionally — gate on
    /// [`Obs::active`] first).
    pub fn emit(&self, event: &Event) {
        self.sink.emit(event);
    }

    /// The metrics block (always present; only populated when
    /// [`Obs::metrics_on`]).
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The progress meter, if one is attached.
    #[must_use]
    pub fn progress(&self) -> Option<&Arc<Progress>> {
        self.progress.as_ref()
    }

    /// Starts a phase timing scope; disabled (zero state) when metrics
    /// are off.
    #[must_use]
    pub fn scope(&self, name: &'static str) -> Scope {
        if self.metrics_on {
            Scope::enabled(Arc::clone(&self.metrics), name)
        } else {
            Scope::disabled()
        }
    }

    /// Opens a profiling span (latency histogram under a nested path;
    /// see [`SpanGuard`]); disabled when metrics are off.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if self.metrics_on {
            SpanGuard::enabled(Arc::clone(&self.metrics), name)
        } else {
            SpanGuard::disabled()
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("active", &self.active)
            .field("metrics_on", &self.metrics_on)
            .field("round_stride", &self.round_stride)
            .field("has_progress", &self.progress.is_some())
            .field("has_checkpoint", &self.checkpoint.is_some())
            .field("checkpoint_ns", &self.checkpoint_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_fully_disabled() {
        let obs = Obs::none();
        assert!(!obs.active());
        assert!(!obs.metrics_on());
        assert!(!obs.wants_round(0));
        obs.emit(&Event::ExperimentFinished { id: "x".into(), pass: true, elapsed_us: 1 });
        obs.flush();
        drop(obs.scope("noop"));
        assert!(obs.metrics().phases().is_empty());
    }

    #[test]
    fn with_sink_activates_enabled_sinks_only() {
        let obs = Obs::none().with_sink(Arc::new(MemorySink::new()));
        assert!(obs.active());
        let obs = Obs::none().with_sink(Arc::new(NullSink));
        assert!(!obs.active());
    }

    #[test]
    fn round_stride_filters_rounds() {
        let obs = Obs::none().with_sink(Arc::new(MemorySink::new())).with_round_stride(10);
        assert!(obs.wants_round(0));
        assert!(!obs.wants_round(5));
        assert!(obs.wants_round(20));
        // Stride 0 coerces to 1.
        let obs = Obs::none().with_sink(Arc::new(MemorySink::new())).with_round_stride(0);
        assert!(obs.wants_round(1));
    }

    #[test]
    fn scope_records_when_metrics_on() {
        let obs = Obs::none().with_metrics();
        drop(obs.scope("measured"));
        assert_eq!(obs.metrics().phases().len(), 1);
    }

    #[test]
    fn span_records_when_metrics_on() {
        let obs = Obs::none().with_metrics();
        drop(obs.span("profiled"));
        let spans = obs.metrics().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "profiled");
        let off = Obs::none();
        drop(off.span("ignored"));
        assert!(off.metrics().spans().is_empty());
    }

    #[test]
    fn checkpoint_keys_are_namespaced() {
        let obs = Obs::none();
        assert!(obs.checkpoint().is_none());
        assert_eq!(obs.checkpoint_key("conv#3"), "conv#3");
        let obs =
            obs.with_checkpoint(Arc::new(CheckpointLog::in_memory())).with_checkpoint_ns("e2");
        assert!(obs.checkpoint().is_some());
        assert_eq!(obs.checkpoint_key("conv#3"), "e2/conv#3");
    }

    #[test]
    fn obs_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Obs>();
    }
}
