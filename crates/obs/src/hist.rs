//! Streaming log-bucketed duration histograms.
//!
//! [`LogHistogram`] records `u64` values (conventionally nanoseconds) into
//! HDR-style buckets: each power-of-two range is split into
//! [`LogHistogram::SUB_BUCKETS`] linear sub-buckets, so quantile estimates
//! carry a bounded relative error (≤ 1/16 ≈ 6.25%) while the histogram
//! itself stays a fixed ~8 KiB of counters — no samples are stored, and
//! recording is a handful of bit operations. This is what makes it safe to
//! attach one to every metrics phase: p50/p90/p99/max come for free without
//! turning the metrics block into an unbounded sample buffer.

use std::time::Duration;

/// Number of linear sub-buckets per power-of-two range.
const SUB_BUCKETS: u64 = 16;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;
/// Values below `SUB_BUCKETS` get one exact bucket each; every later
/// power-of-two range contributes `SUB_BUCKETS` buckets.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A streaming histogram over `u64` values with logarithmic buckets.
///
/// # Examples
///
/// ```
/// use bitdissem_obs::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [100, 200, 300, 400, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 10_000);
/// // Quantiles are bucket upper bounds: within 1/16 of the true value.
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((187..=320).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    bins: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram { bins: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        // Exponent of the leading bit (≥ SUB_BITS here); the SUB_BITS bits
        // below it select the linear sub-bucket within the range.
        let e = 63 - v.leading_zeros();
        let sub = (v >> (e - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((u64::from(e) - u64::from(SUB_BITS) + 1) * SUB_BUCKETS + sub) as usize
    }

    /// The inclusive upper bound of bucket `idx` (the value a quantile
    /// falling in this bucket reports).
    fn upper_bound(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let e = idx / SUB_BUCKETS - 1 + u64::from(SUB_BITS);
        let sub = idx % SUB_BUCKETS;
        let lower = (SUB_BUCKETS + sub) << (e - u64::from(SUB_BITS));
        lower + ((1u64 << (e - u64::from(SUB_BITS))) - 1)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.bins[Self::index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration as whole nanoseconds (saturating).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded value (`None` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) as a bucket upper bound, clamped to
    /// the exact observed maximum. Returns `None` on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample (1-based, at least 1).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// One-line `p50/p90/p99/max` summary, values rendered as durations
    /// (the conventional unit is nanoseconds).
    #[must_use]
    pub fn render_nanos(&self) -> String {
        if self.count == 0 {
            return "empty".to_string();
        }
        let q = |p: f64| fmt_nanos(self.quantile(p).unwrap_or(0));
        format!(
            "p50={} p90={} p99={} max={} ({} samples)",
            q(0.50),
            q(0.90),
            q(0.99),
            fmt_nanos(self.max),
            self.count
        )
    }
}

/// Formats a nanosecond count with an adaptive unit.
#[must_use]
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if n < 1e3 {
        format!("{nanos}ns")
    } else if n < 1e6 {
        format!("{:.1}us", n / 1e3)
    } else if n < 1e9 {
        format!("{:.2}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.render_nanos(), "empty");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        // Below SUB_BUCKETS each value has its own bucket: the median of
        // 0..=15 is exact.
        assert_eq!(h.quantile(0.5), Some(7));
    }

    #[test]
    fn index_and_upper_bound_are_consistent() {
        // Every value must land in a bucket whose upper bound is >= the
        // value and within 1/16 relative error.
        for &v in &[0u64, 1, 15, 16, 17, 31, 32, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let idx = LogHistogram::index(v);
            let ub = LogHistogram::upper_bound(idx);
            assert!(ub >= v, "v={v} idx={idx} ub={ub}");
            assert!(ub as f64 <= v as f64 * (1.0 + 1.0 / 16.0) + 1.0, "v={v} ub={ub}");
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0;
        for idx in 1..BUCKETS {
            let ub = LogHistogram::upper_bound(idx);
            assert!(ub > prev, "idx={idx}: {ub} <= {prev}");
            prev = ub;
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for &(q, exact) in &[(0.5, 5_000.0f64), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let est = h.quantile(q).unwrap() as f64;
            assert!(est >= exact * 0.99, "q={q}: {est} vs {exact}");
            assert!(est <= exact * 1.07, "q={q}: {est} vs {exact}");
        }
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        a.record(1_000);
        b.record(5);
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100_000);
        assert_eq!(a.sum(), 101_015);
        // Merging an empty histogram changes nothing.
        let snapshot = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn record_duration_and_render() {
        let mut h = LogHistogram::new();
        h.record_duration(Duration::from_micros(250));
        h.record_duration(Duration::from_millis(3));
        let text = h.render_nanos();
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("max=3.00ms"), "{text}");
        assert!(text.contains("2 samples"), "{text}");
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(900), "900ns");
        assert_eq!(fmt_nanos(1_500), "1.5us");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }
}
