//! A deliberately small JSON value, writer and parser.
//!
//! The offline build environment has no `serde_json`, so trace events and
//! run manifests are serialized through this module instead. It supports
//! exactly the JSON this crate produces: objects with string keys, arrays,
//! strings with standard escapes, integers (kept exact as `i128`, so `u64`
//! seeds round-trip losslessly), floats, booleans and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no decimal point or exponent), kept exact.
    Int(i128),
    /// A floating-point literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers are converted).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse().map(Value::Num).map_err(|_| self.err("invalid float"))
        } else {
            text.parse().map(Value::Int).map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Int(i128::from(u64::MAX)),
            Value::Num(1.5),
            Value::Str("hi \"there\"\n\\".to_string()),
        ] {
            assert_eq!(parse(&v.render()).unwrap(), v, "{}", v.render());
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Value::Obj(vec![
            ("type".to_string(), Value::Str("round".to_string())),
            ("xs".to_string(), Value::Arr(vec![Value::Int(1), Value::Num(0.25), Value::Null])),
            ("nested".to_string(), Value::Obj(vec![("k".to_string(), Value::Bool(false))])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(text, r#"{"type":"round","xs":[1,0.25,null],"nested":{"k":false}}"#);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 7, "b": "x", "c": true, "d": 1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("d").and_then(Value::as_f64), Some(1.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Arr(vec![Value::Int(1), Value::Int(2)])));
    }
}
