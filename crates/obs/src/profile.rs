//! A lightweight span profiler nesting under the [`Metrics`] phase timers.
//!
//! Phase timers ([`crate::Scope`]) aggregate flat totals per name. Spans
//! add two things on top: a per-span latency distribution (a streaming
//! [`crate::hist::LogHistogram`], so p50/p90/p99 come out without storing
//! samples) and hierarchical names — a span opened while another span is
//! live on the same thread records under the joined path
//! (`outer/inner`), giving a cheap flamegraph-shaped breakdown.
//!
//! Nesting is tracked per thread with a thread-local stack, which is why
//! [`SpanGuard`] is `!Send`: a guard must be dropped on the thread that
//! created it, in reverse creation order (the natural RAII discipline).
//! Worker threads each get their own stack, so cross-thread spans simply
//! start fresh paths.

use crate::metrics::Metrics;
use crate::time::Timer;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII span: records its elapsed time into the [`Metrics`] span
/// histograms under its `/`-joined thread-local path when dropped.
///
/// Created via `Obs::span`; a disabled guard (metrics off) holds no
/// state and records nothing.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Arc<Metrics>, Timer)>,
    // The thread-local stack makes moving a live guard across threads
    // unsound-by-accounting; forbid it at compile time.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span named `name`, pushing it onto this thread's path.
    #[must_use]
    pub fn enabled(metrics: Arc<Metrics>, name: &'static str) -> Self {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard { inner: Some((metrics, Timer::start())), _not_send: PhantomData }
    }

    /// A span that does nothing (metrics off).
    #[must_use]
    pub fn disabled() -> Self {
        SpanGuard { inner: None, _not_send: PhantomData }
    }

    /// Whether this guard will record on drop.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((metrics, timer)) = self.inner.take() {
            let elapsed = timer.elapsed();
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack.join("/");
                stack.pop();
                path
            });
            metrics.record_span(&path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_span_records_nothing() {
        let metrics = Arc::new(Metrics::new());
        drop(SpanGuard::disabled());
        assert!(!SpanGuard::disabled().is_enabled());
        assert!(metrics.spans().is_empty());
    }

    #[test]
    fn nested_spans_record_joined_paths() {
        let metrics = Arc::new(Metrics::new());
        {
            let _outer = SpanGuard::enabled(Arc::clone(&metrics), "outer");
            {
                let _inner = SpanGuard::enabled(Arc::clone(&metrics), "inner");
            }
            {
                let _inner = SpanGuard::enabled(Arc::clone(&metrics), "inner");
            }
        }
        let spans = metrics.spans();
        let names: Vec<&str> = spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["outer", "outer/inner"]);
        assert_eq!(spans[0].1.count(), 1);
        assert_eq!(spans[1].1.count(), 2);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let metrics = Arc::new(Metrics::new());
        drop(SpanGuard::enabled(Arc::clone(&metrics), "a"));
        drop(SpanGuard::enabled(Arc::clone(&metrics), "b"));
        let names: Vec<String> = metrics.spans().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn disabled_inner_span_keeps_outer_path_intact() {
        let metrics = Arc::new(Metrics::new());
        {
            let _outer = SpanGuard::enabled(Arc::clone(&metrics), "outer");
            // A disabled span must not push (it would never pop).
            drop(SpanGuard::disabled());
            drop(SpanGuard::enabled(Arc::clone(&metrics), "leaf"));
        }
        let names: Vec<String> = metrics.spans().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["outer", "outer/leaf"]);
    }

    #[test]
    fn span_histogram_sees_elapsed_time() {
        let metrics = Arc::new(Metrics::new());
        {
            let _span = SpanGuard::enabled(Arc::clone(&metrics), "sleepy");
            std::thread::sleep(Duration::from_millis(2));
        }
        let spans = metrics.spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].1.max() >= 2_000_000, "max = {}ns", spans[0].1.max());
    }

    #[test]
    fn threads_have_independent_stacks() {
        let metrics = Arc::new(Metrics::new());
        let _outer = SpanGuard::enabled(Arc::clone(&metrics), "main_outer");
        let m = Arc::clone(&metrics);
        std::thread::spawn(move || {
            // A fresh thread starts a fresh path: no "main_outer/" prefix.
            drop(SpanGuard::enabled(m, "worker"));
        })
        .join()
        .unwrap();
        let names: Vec<String> = metrics.spans().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["worker"]);
    }
}
