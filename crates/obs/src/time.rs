//! Monotonic timers and RAII phase scopes.

use crate::metrics::Metrics;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Timer { start: Instant::now() }
    }

    /// Elapsed time since [`Timer::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in whole microseconds (saturating).
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

/// RAII phase timer: records elapsed time into a [`Metrics`] block under
/// a phase name when dropped.
///
/// A disabled scope (from `Obs::scope` with metrics off) holds no state
/// and records nothing, so instrumented code can create scopes
/// unconditionally.
#[derive(Debug)]
pub struct Scope {
    inner: Option<(Arc<Metrics>, &'static str, Timer)>,
}

impl Scope {
    /// A scope that records into `metrics` under `name` when dropped.
    #[must_use]
    pub fn enabled(metrics: Arc<Metrics>, name: &'static str) -> Self {
        Scope { inner: Some((metrics, name, Timer::start())) }
    }

    /// A scope that does nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Scope { inner: None }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((metrics, name, timer)) = self.inner.take() {
            metrics.record_phase(name, timer.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic() {
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.elapsed() >= Duration::from_millis(1));
        assert!(t.elapsed_us() >= 1_000);
    }

    #[test]
    fn enabled_scope_records_on_drop() {
        let metrics = Arc::new(Metrics::new());
        {
            let _scope = Scope::enabled(Arc::clone(&metrics), "phase_a");
        }
        let phases = metrics.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "phase_a");
        assert_eq!(phases[0].1.calls, 1);
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let metrics = Arc::new(Metrics::new());
        {
            let _scope = Scope::disabled();
        }
        assert!(metrics.phases().is_empty());
    }
}
