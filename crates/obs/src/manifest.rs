//! Run manifests: a small self-describing record of how a report was
//! produced, serialized next to every experiment report and embedded in
//! JSONL traces.

use crate::json::{self, Value};
use std::time::{SystemTime, UNIX_EPOCH};

/// Provenance record for one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Experiment id (`e1`…`e18`, `a1`…`a3`).
    pub experiment_id: String,
    /// Base seed used for the run.
    pub seed: u64,
    /// Scale name (`smoke` / `standard` / `full`).
    pub scale: String,
    /// Worker threads used for replication (0 = library default).
    pub threads: u64,
    /// Version of the workspace crates that produced the run.
    pub crate_version: String,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Total run duration in microseconds.
    pub duration_us: u64,
    /// Final metric counter totals (`(name, value)` in registry order;
    /// see [`crate::metrics::CounterSnapshot::named`]). Empty when the
    /// run had metrics off — older manifests without the field decode
    /// to empty, so the schema stays backward compatible. Telemetry
    /// exporters reconcile against these totals.
    pub counters: Vec<(String, u64)>,
    /// Canonical fingerprint of the environment perturbation schedule the
    /// run was produced under (`None` for the static process). Optional
    /// in the JSON encoding, so older manifests decode unchanged.
    pub env: Option<String>,
}

impl RunManifest {
    /// Starts a manifest for `experiment_id` now; `duration_us` is filled
    /// in by [`RunManifest::finish`].
    #[must_use]
    pub fn begin(experiment_id: &str, seed: u64, scale: &str, threads: usize) -> Self {
        let started_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        RunManifest {
            experiment_id: experiment_id.to_string(),
            seed,
            scale: scale.to_string(),
            threads: threads as u64,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            started_unix_ms,
            duration_us: 0,
            counters: Vec::new(),
            env: None,
        }
    }

    /// Records the total duration and returns the completed manifest.
    #[must_use]
    pub fn finish(mut self, elapsed: std::time::Duration) -> Self {
        self.duration_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self
    }

    /// Attaches final counter totals (from
    /// [`crate::Metrics::snapshot`]) for telemetry reconciliation.
    #[must_use]
    pub fn with_counters(mut self, counters: Vec<(String, u64)>) -> Self {
        self.counters = counters;
        self
    }

    /// Records the environment schedule fingerprint the run was produced
    /// under (`None` leaves the manifest marked static).
    #[must_use]
    pub fn with_env(mut self, env: Option<String>) -> Self {
        self.env = env;
        self
    }

    /// The recorded total for counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A fixed manifest for tests and doc examples.
    #[must_use]
    pub fn example() -> Self {
        RunManifest {
            experiment_id: "e2".to_string(),
            seed: 0xDEAD_BEEF_CAFE_F00D,
            scale: "smoke".to_string(),
            threads: 2,
            crate_version: "0.1.0".to_string(),
            started_unix_ms: 1_700_000_000_000,
            duration_us: 250_000,
            counters: vec![("rounds_simulated".to_string(), 4_964)],
            env: None,
        }
    }

    /// Encodes the manifest as a JSON object value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("experiment_id".to_string(), Value::Str(self.experiment_id.clone())),
            ("seed".to_string(), Value::Int(i128::from(self.seed))),
            ("scale".to_string(), Value::Str(self.scale.clone())),
            ("threads".to_string(), Value::Int(i128::from(self.threads))),
            ("crate_version".to_string(), Value::Str(self.crate_version.clone())),
            ("started_unix_ms".to_string(), Value::Int(i128::from(self.started_unix_ms))),
            ("duration_us".to_string(), Value::Int(i128::from(self.duration_us))),
        ];
        if let Some(env) = &self.env {
            fields.push(("env".to_string(), Value::Str(env.clone())));
        }
        if !self.counters.is_empty() {
            fields.push((
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Int(i128::from(*v))))
                        .collect(),
                ),
            ));
        }
        Value::Obj(fields)
    }

    /// Encodes the manifest as one compact JSON object string.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Decodes a manifest from a JSON object value (extra fields, such as
    /// an event `"type"` tag, are ignored).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let str_field = |k: &str| {
            value.get(k).and_then(Value::as_str).map(str::to_string).ok_or(format!("missing {k}"))
        };
        let u64_field =
            |k: &str| value.get(k).and_then(Value::as_u64).ok_or(format!("missing {k}"));
        let counters = match value.get("counters") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(n, v)| {
                    v.as_u64().map(|v| (n.clone(), v)).ok_or(format!("ill-typed counter {n}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("ill-typed counters field".to_string()),
            None => Vec::new(),
        };
        Ok(RunManifest {
            experiment_id: str_field("experiment_id")?,
            seed: u64_field("seed")?,
            scale: str_field("scale")?,
            threads: u64_field("threads")?,
            crate_version: str_field("crate_version")?,
            started_unix_ms: u64_field("started_unix_ms")?,
            duration_us: u64_field("duration_us")?,
            counters,
            env: value.get("env").and_then(Value::as_str).map(str::to_string),
        })
    }

    /// Decodes a manifest from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a description on malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_value(&json::parse(text).map_err(|e| e.to_string())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let m = RunManifest::example();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn large_seed_is_lossless() {
        let mut m = RunManifest::example();
        m.seed = u64::MAX;
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.seed, u64::MAX);
    }

    #[test]
    fn begin_and_finish_populate_timing() {
        let m = RunManifest::begin("e1", 7, "standard", 4);
        assert_eq!(m.experiment_id, "e1");
        assert_eq!(m.threads, 4);
        assert!(m.started_unix_ms > 0);
        let done = m.finish(std::time::Duration::from_micros(123));
        assert_eq!(done.duration_us, 123);
    }

    #[test]
    fn env_fingerprint_is_optional_and_round_trips() {
        // Static manifests omit the field entirely and decode to None.
        let bare = RunManifest::example();
        assert!(!bare.to_json().contains("\"env\""));
        assert_eq!(RunManifest::from_json(&bare.to_json()).unwrap().env, None);
        let m = bare.with_env(Some("flip@500,noise:0.01".to_string()));
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.env.as_deref(), Some("flip@500,noise:0.01"));
    }

    #[test]
    fn missing_field_is_an_error() {
        assert!(RunManifest::from_json("{\"experiment_id\":\"e1\"}").is_err());
    }

    #[test]
    fn counters_are_optional_and_round_trip() {
        // Older manifests (no counters field) decode to empty.
        let mut bare = RunManifest::example();
        bare.counters.clear();
        let back = RunManifest::from_json(&bare.to_json()).unwrap();
        assert!(back.counters.is_empty());
        // Attached totals survive the round trip and are queryable.
        let m = bare.with_counters(vec![
            ("rounds_simulated".to_string(), 123),
            ("replications".to_string(), 4),
        ]);
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.counter("rounds_simulated"), Some(123));
        assert_eq!(back.counter("nope"), None);
    }
}
