//! Sweep checkpointing: a durable, append-only log of completed
//! replication results.
//!
//! Long sweeps (`run --all` at full scale) used to lose everything on an
//! interruption. The checkpoint log persists each completed unit of work as
//! one JSONL line — `{"type":"checkpoint","key":…,"payload":…}` — next to
//! the run-manifest provenance records, so a resumed run
//! (`run --all --resume`) loads the log and skips every replication whose
//! key is already present.
//!
//! Keys are opaque strings built by the caller; the convention used by the
//! experiments layer is
//! `<experiment>/<kind>:<batch-params-hash>…#<replication-index>`, which
//! makes a key collision equivalent to "bit-identical batch parameters" —
//! exactly the case where reusing the stored result *is* correct (see the
//! determinism contract in `bitdissem-pool`). Payloads are equally opaque;
//! the caller owns their encoding.
//!
//! # Crash safety
//!
//! Each record is written to completion (short writes resumed, transient
//! `Interrupted`/`WouldBlock` retried with backoff — see
//! [`crate::durable`]) and flushed before [`CheckpointLog::record`]
//! returns. A crash can still tear the *final* line; on
//! [`CheckpointLog::open`] a torn tail is **detected, counted and
//! truncated away** via an atomic rewrite (write-to-temp + rename), never
//! silently skipped — so the on-disk log always ends on a record
//! boundary after a resume, and [`CheckpointLog::resume_stats`] reports
//! exactly what recovery did.

use crate::durable::{atomic_replace, flush_retry, write_all_retry};
use crate::json::{self, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// What [`CheckpointLog::open`] found (and repaired) while loading an
/// existing log — the resume-time damage report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeStats {
    /// Entries recovered from complete, parseable lines.
    pub recovered: usize,
    /// Complete lines that did not parse as checkpoint records (foreign
    /// or corrupt); they are preserved on disk but carry no entries.
    pub skipped_lines: usize,
    /// Whether a torn final line (no trailing newline) was found and the
    /// file truncated back to the last record boundary.
    pub torn_tail_repaired: bool,
}

struct Inner {
    done: HashMap<String, String>,
    writer: Option<Box<dyn Write + Send>>,
}

/// A thread-safe checkpoint log: an in-memory `key → payload` map mirrored
/// to an append-only JSONL file (when opened with a path).
pub struct CheckpointLog {
    inner: Mutex<Inner>,
    resume_stats: ResumeStats,
}

impl CheckpointLog {
    /// An in-memory log with no backing file (tests, opt-out runs).
    #[must_use]
    pub fn in_memory() -> Self {
        CheckpointLog {
            inner: Mutex::new(Inner { done: HashMap::new(), writer: None }),
            resume_stats: ResumeStats::default(),
        }
    }

    /// A log appending through an arbitrary writer, with no entries
    /// pre-loaded. This is the fault-injection seam: wrap a real file in a
    /// [`crate::fault::FaultyWriter`] to exercise the durability machinery
    /// against torn lines, short writes and transient errors.
    #[must_use]
    pub fn with_writer(writer: Box<dyn Write + Send>) -> Self {
        CheckpointLog {
            inner: Mutex::new(Inner { done: HashMap::new(), writer: Some(writer) }),
            resume_stats: ResumeStats::default(),
        }
    }

    /// Opens (or creates) the log at `path`. Existing entries are loaded
    /// and new entries are appended, so an interrupted run can resume.
    ///
    /// A torn final line (crash mid-write) is detected and truncated away
    /// with an atomic rewrite; complete lines that fail to parse are
    /// skipped but preserved. Both are reported in
    /// [`CheckpointLog::resume_stats`].
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened, read, or
    /// repaired.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let mut done = HashMap::new();
        let mut stats = ResumeStats::default();
        if path.exists() {
            let text = std::fs::read_to_string(path)?;
            // Complete lines end in '\n'; whatever follows the last
            // newline is a torn tail from an interrupted write.
            let (complete, tail) = match text.rfind('\n') {
                Some(pos) => text.split_at(pos + 1),
                None => ("", text.as_str()),
            };
            for line in complete.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                if let Some((key, payload)) = Self::parse_line(line) {
                    done.insert(key, payload);
                    stats.recovered += 1;
                } else {
                    stats.skipped_lines += 1;
                }
            }
            if !tail.is_empty() {
                // Truncate back to the last record boundary, atomically:
                // a crash during the repair leaves either the damaged file
                // (repaired again next open) or the clean one.
                stats.torn_tail_repaired = true;
                atomic_replace(path, complete.as_bytes())?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(CheckpointLog {
            inner: Mutex::new(Inner { done, writer: Some(Box::new(BufWriter::new(file))) }),
            resume_stats: stats,
        })
    }

    /// Creates the log at `path`, discarding any previous contents (a
    /// fresh, non-resumed run).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(CheckpointLog {
            inner: Mutex::new(Inner {
                done: HashMap::new(),
                writer: Some(Box::new(BufWriter::new(file))),
            }),
            resume_stats: ResumeStats::default(),
        })
    }

    /// What [`CheckpointLog::open`] recovered, skipped and repaired.
    /// All-default for logs not opened from a file.
    #[must_use]
    pub fn resume_stats(&self) -> ResumeStats {
        self.resume_stats
    }

    fn parse_line(line: &str) -> Option<(String, String)> {
        let value = json::parse(line).ok()?;
        if value.get("type").and_then(Value::as_str) != Some("checkpoint") {
            return None;
        }
        let key = value.get("key").and_then(Value::as_str)?.to_string();
        let payload = value.get("payload").and_then(Value::as_str)?.to_string();
        Some((key, payload))
    }

    /// The stored payload for `key`, if this unit of work already
    /// completed in a previous (or the current) run.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the log panicked mid-update.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<String> {
        self.inner.lock().expect("checkpoint log poisoned").done.get(key).cloned()
    }

    /// Records a completed unit of work: the line is written to
    /// completion (transient errors retried with backoff) and flushed, so
    /// the entry survives an interruption right after the call.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the log panicked mid-update.
    pub fn record(&self, key: &str, payload: &str) {
        let mut inner = self.inner.lock().expect("checkpoint log poisoned");
        if inner.done.contains_key(key) {
            return;
        }
        inner.done.insert(key.to_string(), payload.to_string());
        if let Some(writer) = inner.writer.as_mut() {
            let mut line = Value::Obj(vec![
                ("type".to_string(), Value::Str("checkpoint".to_string())),
                ("key".to_string(), Value::Str(key.to_string())),
                ("payload".to_string(), Value::Str(payload.to_string())),
            ])
            .render();
            line.push('\n');
            // A *persistent* I/O error (e.g. disk full) must not abort the
            // sweep; the run degrades to non-checkpointed. Transient errors
            // and short writes are absorbed by the retry loop, and the
            // flush makes the record durable before we return.
            let _ = write_all_retry(writer, line.as_bytes()).and_then(|()| flush_retry(writer));
        }
    }

    /// Number of completed entries in the log.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the log panicked mid-update.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("checkpoint log poisoned").done.len()
    }

    /// Whether the log holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for CheckpointLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointLog")
            .field("entries", &self.len())
            .field("resume_stats", &self.resume_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyWriter;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("obs_ckpt_{}_{}.jsonl", name, std::process::id()))
    }

    #[test]
    fn in_memory_round_trip() {
        let log = CheckpointLog::in_memory();
        assert!(log.is_empty());
        assert_eq!(log.lookup("a"), None);
        log.record("a", "payload-1");
        assert_eq!(log.lookup("a").as_deref(), Some("payload-1"));
        assert_eq!(log.len(), 1);
        assert_eq!(log.resume_stats(), ResumeStats::default());
    }

    #[test]
    fn first_record_wins() {
        let log = CheckpointLog::in_memory();
        log.record("k", "first");
        log.record("k", "second");
        assert_eq!(log.lookup("k").as_deref(), Some("first"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn reopen_resumes_previous_entries() {
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("e2/conv#0", "c:12");
            log.record("e2/conv#1", "t:99");
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.resume_stats().recovered, 2);
        assert_eq!(log.lookup("e2/conv#0").as_deref(), Some("c:12"));
        log.record("e2/conv#2", "c:5");
        drop(log);
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates_previous_entries() {
        let path = tmp("truncate");
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("old", "x");
        }
        let log = CheckpointLog::create(&path).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.lookup("old"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_detected_and_truncated() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("good", "v");
        }
        let clean = std::fs::read_to_string(&path).unwrap();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"type\":\"checkpoint\",\"key\":\"trunc").unwrap();
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.lookup("good").as_deref(), Some("v"));
        // The damage is reported, not papered over...
        let stats = log.resume_stats();
        assert!(stats.torn_tail_repaired);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.skipped_lines, 0);
        drop(log);
        // ...and the file is physically truncated back to the last record
        // boundary, so the next reader sees a clean log.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), clean);
        let log = CheckpointLog::open(&path).unwrap();
        assert!(!log.resume_stats().torn_tail_repaired);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn complete_foreign_lines_are_preserved_but_skipped() {
        let path = tmp("foreign");
        let _ = std::fs::remove_file(&path);
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("mine", "v");
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{\"type\":\"manifest\",\"id\":\"other-writer\"}}").unwrap();
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        let stats = log.resume_stats();
        assert_eq!(stats.skipped_lines, 1);
        assert!(!stats.torn_tail_repaired);
        drop(log);
        // Complete lines survive the repair pass verbatim.
        assert!(std::fs::read_to_string(&path).unwrap().contains("other-writer"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keys_with_escapes_round_trip() {
        let path = tmp("escape");
        let _ = std::fs::remove_file(&path);
        let key = "e1/\"quoted\"\\slash\nnewline";
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record(key, "p\"x\"");
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.lookup(key).as_deref(), Some("p\"x\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_land_through_short_and_transient_writes() {
        use std::io::ErrorKind;
        let path = tmp("faulty_ok");
        let _ = std::fs::remove_file(&path);
        {
            let file = File::create(&path).unwrap();
            let writer = FaultyWriter::new(file).with_short_writes(5).with_transient_errors(vec![
                ErrorKind::Interrupted,
                ErrorKind::WouldBlock,
                ErrorKind::Interrupted,
            ]);
            let log = CheckpointLog::with_writer(Box::new(writer));
            log.record("a", "c:10");
            log.record("b", "t:20");
        }
        // Despite the injected faults every record is complete on disk.
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.lookup("a").as_deref(), Some("c:10"));
        assert_eq!(log.lookup("b").as_deref(), Some("t:20"));
        let stats = log.resume_stats();
        assert_eq!(stats.recovered, 2);
        assert!(!stats.torn_tail_repaired);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_mid_record_loses_only_that_record() {
        let path = tmp("faulty_tear");
        let _ = std::fs::remove_file(&path);
        {
            let file = File::create(&path).unwrap();
            // Enough budget for the first record, dies inside the second.
            let writer = FaultyWriter::new(file).with_tear_after(60);
            let log = CheckpointLog::with_writer(Box::new(writer));
            log.record("a", "c:10");
            log.record("b", "t:20");
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.lookup("a").as_deref(), Some("c:10"));
        assert_eq!(log.lookup("b"), None);
        assert!(log.resume_stats().torn_tail_repaired);
        let _ = std::fs::remove_file(&path);
    }
}
