//! Sweep checkpointing: a durable, append-only log of completed
//! replication results.
//!
//! Long sweeps (`run --all` at full scale) used to lose everything on an
//! interruption. The checkpoint log persists each completed unit of work as
//! one JSONL line — `{"type":"checkpoint","key":…,"payload":…}` — next to
//! the run-manifest provenance records, so a resumed run
//! (`run --all --resume`) loads the log and skips every replication whose
//! key is already present.
//!
//! Keys are opaque strings built by the caller; the convention used by the
//! experiments layer is
//! `<experiment>/<kind>:<batch-params-hash>…#<replication-index>`, which
//! makes a key collision equivalent to "bit-identical batch parameters" —
//! exactly the case where reusing the stored result *is* correct (see the
//! determinism contract in `bitdissem-pool`). Payloads are equally opaque;
//! the caller owns their encoding.

use crate::json::{self, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

struct Inner {
    done: HashMap<String, String>,
    writer: Option<BufWriter<File>>,
}

/// A thread-safe checkpoint log: an in-memory `key → payload` map mirrored
/// to an append-only JSONL file (when opened with a path).
pub struct CheckpointLog {
    inner: Mutex<Inner>,
}

impl CheckpointLog {
    /// An in-memory log with no backing file (tests, opt-out runs).
    #[must_use]
    pub fn in_memory() -> Self {
        CheckpointLog { inner: Mutex::new(Inner { done: HashMap::new(), writer: None }) }
    }

    /// Opens (or creates) the log at `path`. Existing entries are loaded
    /// and new entries are appended, so an interrupted run can resume.
    /// Unparseable lines (e.g. a torn final line after a crash) are
    /// skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened or read.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let mut done = HashMap::new();
        if path.exists() {
            for line in std::fs::read_to_string(path)?.lines() {
                if let Some((key, payload)) = Self::parse_line(line) {
                    done.insert(key, payload);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(CheckpointLog { inner: Mutex::new(Inner { done, writer: Some(BufWriter::new(file)) }) })
    }

    /// Creates the log at `path`, discarding any previous contents (a
    /// fresh, non-resumed run).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(CheckpointLog {
            inner: Mutex::new(Inner { done: HashMap::new(), writer: Some(BufWriter::new(file)) }),
        })
    }

    fn parse_line(line: &str) -> Option<(String, String)> {
        let value = json::parse(line).ok()?;
        if value.get("type").and_then(Value::as_str) != Some("checkpoint") {
            return None;
        }
        let key = value.get("key").and_then(Value::as_str)?.to_string();
        let payload = value.get("payload").and_then(Value::as_str)?.to_string();
        Some((key, payload))
    }

    /// The stored payload for `key`, if this unit of work already
    /// completed in a previous (or the current) run.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the log panicked mid-update.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<String> {
        self.inner.lock().expect("checkpoint log poisoned").done.get(key).cloned()
    }

    /// Records a completed unit of work and flushes the line to disk, so
    /// the entry survives an interruption right after the call.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the log panicked mid-update.
    pub fn record(&self, key: &str, payload: &str) {
        let mut inner = self.inner.lock().expect("checkpoint log poisoned");
        if inner.done.contains_key(key) {
            return;
        }
        inner.done.insert(key.to_string(), payload.to_string());
        if let Some(writer) = inner.writer.as_mut() {
            let line = Value::Obj(vec![
                ("type".to_string(), Value::Str("checkpoint".to_string())),
                ("key".to_string(), Value::Str(key.to_string())),
                ("payload".to_string(), Value::Str(payload.to_string())),
            ])
            .render();
            // An I/O error (e.g. disk full) must not abort the sweep; the
            // run degrades to non-checkpointed.
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
        }
    }

    /// Number of completed entries in the log.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the log panicked mid-update.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("checkpoint log poisoned").done.len()
    }

    /// Whether the log holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for CheckpointLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointLog").field("entries", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("obs_ckpt_{}_{}.jsonl", name, std::process::id()))
    }

    #[test]
    fn in_memory_round_trip() {
        let log = CheckpointLog::in_memory();
        assert!(log.is_empty());
        assert_eq!(log.lookup("a"), None);
        log.record("a", "payload-1");
        assert_eq!(log.lookup("a").as_deref(), Some("payload-1"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn first_record_wins() {
        let log = CheckpointLog::in_memory();
        log.record("k", "first");
        log.record("k", "second");
        assert_eq!(log.lookup("k").as_deref(), Some("first"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn reopen_resumes_previous_entries() {
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("e2/conv#0", "c:12");
            log.record("e2/conv#1", "t:99");
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.lookup("e2/conv#0").as_deref(), Some("c:12"));
        log.record("e2/conv#2", "c:5");
        drop(log);
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates_previous_entries() {
        let path = tmp("truncate");
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("old", "x");
        }
        let log = CheckpointLog::create(&path).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.lookup("old"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let path = tmp("torn");
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record("good", "v");
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"type\":\"checkpoint\",\"key\":\"trunc").unwrap();
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.lookup("good").as_deref(), Some("v"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keys_with_escapes_round_trip() {
        let path = tmp("escape");
        let _ = std::fs::remove_file(&path);
        let key = "e1/\"quoted\"\\slash\nnewline";
        {
            let log = CheckpointLog::open(&path).unwrap();
            log.record(key, "p\"x\"");
        }
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.lookup(key).as_deref(), Some("p\"x\""));
        let _ = std::fs::remove_file(&path);
    }
}
