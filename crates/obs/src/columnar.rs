//! Append-only binary columnar trace store.
//!
//! JSONL traces (see [`crate::JsonlSink`]) pay a text encode on the hot
//! path and a full re-parse on every `trace` query — fine for debugging,
//! a bottleneck for "analyze a million replications". This module is the
//! production store: events are packed **per event type into per-field
//! binary columns**, framed into self-checking blocks, so a reader can
//! stream a typed column (`ones`, `round`, …) straight off the file
//! bytes without constructing a single event or string.
//!
//! # On-disk layout
//!
//! ```text
//! [8-byte magic "BDCT0001"]
//! [block][block][block]…
//!
//! block := [u8 type-id][u32 row-count][u32 payload-len][u64 fnv1a-64 checksum of payload]
//!          [payload: the block's columns, concatenated field by field]
//! ```
//!
//! All integers are little-endian. Fixed-width fields (`u64`, `u8`,
//! `f64`, dictionary ids as `u32`) serialize as `row-count` consecutive
//! values per column; variable-width columns (the `g`-table rows of a
//! batch header, embedded manifest JSON) serialize each row as
//! `[u32 len][bytes…]`. Strings are **dictionary-encoded**: a string
//! column stores `u32` ids into a file-global dictionary, and dictionary
//! entries ride in dedicated blocks (type 0) emitted *before* the first
//! block that references them, with densely increasing ids — so a
//! sequential scan always resolves every reference.
//!
//! # Order and batch grouping
//!
//! A block holds a **run** of consecutive same-typed events: the sink
//! seals the open block whenever the event type changes (or the block
//! reaches [`BLOCK_ROWS`] rows, or [`EventSink::flush`] is called).
//! Expanding blocks in file order therefore reproduces the original
//! event stream *exactly* — batch grouping, round interleaving and
//! convert round-trips are all order-faithful.
//!
//! # Torn-tail semantics
//!
//! The trace sink is best-effort by design (a full disk must not abort a
//! simulation), so a crashed writer can leave a torn final block. The
//! framing makes the damage detectable and bounded, mirroring
//! [`crate::CheckpointLog`]'s JSONL contract: a reader walks blocks from
//! the front, validating the header geometry, the checksum and the
//! column structure of every block, and treats the first invalid frame
//! as the torn tail — every complete block before it is recovered, and
//! [`repair`] physically truncates the file back to the last valid block
//! boundary with an atomic rewrite, exactly as `CheckpointLog::open`
//! repairs its log.

use crate::durable::atomic_replace;
use crate::event::{Event, ReplicationOutcome};
use crate::json;
use crate::manifest::RunManifest;
use crate::sink::EventSink;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::path::Path;
use std::sync::Mutex;

/// File magic: identifies a columnar trace (and its layout version).
pub const MAGIC: [u8; 8] = *b"BDCT0001";

/// Rows per block before the sink seals it even mid-run. Bounds both the
/// sink's buffer memory and the worst-case tail loss after a crash.
pub const BLOCK_ROWS: usize = 4096;

/// Block header size: type id (1) + row count (4) + payload len (4) +
/// checksum (8).
const HEADER_LEN: usize = 17;

/// Block type ids. 0 is the dictionary; the rest mirror the [`Event`]
/// variants.
mod ty {
    pub const DICT: u8 = 0;
    pub const EXPERIMENT_STARTED: u8 = 1;
    pub const EXPERIMENT_FINISHED: u8 = 2;
    pub const BATCH_STARTED: u8 = 3;
    pub const REPLICATION_FINISHED: u8 = 4;
    pub const ROUND_COMPLETED: u8 = 5;
    pub const CONSENSUS_EXITED: u8 = 6;
    pub const MANIFEST: u8 = 7;
    pub const TELEMETRY_SAMPLE: u8 = 8;
    pub const MAX: u8 = TELEMETRY_SAMPLE;
}

/// FNV-1a 64-bit over `bytes` — dependency-free integrity check, plenty
/// to detect torn writes and bit rot in a block payload.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Format detection
// ---------------------------------------------------------------------------

/// Trace file formats the tooling understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (the debug sink).
    Jsonl,
    /// The binary columnar store in this module.
    Columnar,
}

impl TraceFormat {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Columnar => "columnar",
        }
    }
}

/// Sniffs the format of the file at `path` from its leading bytes: the
/// columnar magic wins, a leading `{` (after ASCII whitespace) reads as
/// JSONL, anything else is `None` — not a trace.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be opened or read.
pub fn detect_format(path: impl AsRef<Path>) -> std::io::Result<Option<TraceFormat>> {
    let mut head = [0u8; 8];
    let mut file = File::open(path)?;
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(sniff_bytes(&head[..filled]))
}

/// [`detect_format`] over in-memory leading bytes.
#[must_use]
pub fn sniff_bytes(head: &[u8]) -> Option<TraceFormat> {
    if head.starts_with(&MAGIC) {
        return Some(TraceFormat::Columnar);
    }
    match head.iter().find(|b| !b" \t\r\n".contains(b)) {
        Some(b'{') => Some(TraceFormat::Jsonl),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// One buffered `BatchStarted` row (dictionary ids already interned).
struct BatchRow {
    kind: u32,
    protocol: u32,
    ell: u64,
    n: u64,
    x0: u64,
    source_opinion: u8,
    reps: u64,
    budget: u64,
    seed: u64,
    g0: Vec<f64>,
    g1: Vec<f64>,
}

/// Per-type row buffers. The type-switch sealing policy guarantees at
/// most one buffer is non-empty at any time.
#[derive(Default)]
struct Buffers {
    experiment_started: Vec<(u32, u32, u64, u32)>,
    experiment_finished: Vec<(u32, u8, u64)>,
    batch_started: Vec<BatchRow>,
    replication_finished: Vec<(u64, u8, u64, u64)>,
    round_completed: Vec<(u64, u64, u64, u8)>,
    consensus_exited: Vec<(u64, u64, u64)>,
    manifest: Vec<String>,
    telemetry_sample: Vec<(u32, u64, u64, u64)>,
}

struct ColumnarInner {
    out: Box<dyn Write + Send>,
    buffers: Buffers,
    /// Type id of the open (possibly empty) run; sealing happens when a
    /// differently-typed event arrives.
    open_type: Option<u8>,
    /// String → dictionary id, for every string interned so far.
    dict: HashMap<String, u32>,
    /// Interned entries not yet written to a dictionary block, in id
    /// order (ids are dense, so `pending` always ends at `dict.len()`).
    pending_dict: Vec<String>,
}

/// Binary columnar [`EventSink`]: buffers events per type and writes
/// framed column blocks. Like [`crate::JsonlSink`] it is best-effort —
/// I/O errors end the trace early instead of aborting the simulation —
/// and it flushes on [`EventSink::flush`] and on drop.
pub struct ColumnarSink {
    inner: Mutex<ColumnarInner>,
}

impl ColumnarSink {
    /// Creates (truncating) the columnar trace at `path` and writes the
    /// file magic.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created or the
    /// magic cannot be written.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Self::from_writer(Box::new(BufWriter::new(file)))
    }

    /// Builds a sink over an arbitrary writer — the fault-injection seam
    /// (wrap a file in [`crate::FaultyWriter`]) and the unit-test seam.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the magic cannot be written.
    pub fn from_writer(mut out: Box<dyn Write + Send>) -> std::io::Result<Self> {
        out.write_all(&MAGIC)?;
        Ok(ColumnarSink {
            inner: Mutex::new(ColumnarInner {
                out,
                buffers: Buffers::default(),
                open_type: None,
                dict: HashMap::new(),
                pending_dict: Vec::new(),
            }),
        })
    }
}

impl ColumnarInner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.dict.get(s) {
            return id;
        }
        let id = u32::try_from(self.dict.len()).expect("< 2^32 distinct strings per trace");
        self.dict.insert(s.to_string(), id);
        self.pending_dict.push(s.to_string());
        id
    }

    fn buffered_rows(&self, type_id: u8) -> usize {
        let b = &self.buffers;
        match type_id {
            ty::EXPERIMENT_STARTED => b.experiment_started.len(),
            ty::EXPERIMENT_FINISHED => b.experiment_finished.len(),
            ty::BATCH_STARTED => b.batch_started.len(),
            ty::REPLICATION_FINISHED => b.replication_finished.len(),
            ty::ROUND_COMPLETED => b.round_completed.len(),
            ty::CONSENSUS_EXITED => b.consensus_exited.len(),
            ty::MANIFEST => b.manifest.len(),
            ty::TELEMETRY_SAMPLE => b.telemetry_sample.len(),
            _ => 0,
        }
    }

    /// Serializes and writes the open run's block (plus any pending
    /// dictionary block), clearing the buffer. Errors are swallowed: the
    /// trace just ends early, like the JSONL sink.
    fn seal(&mut self) {
        let Some(type_id) = self.open_type else { return };
        let count = self.buffered_rows(type_id);
        if count == 0 {
            return;
        }
        // Dictionary entries referenced by this block must land first.
        if !self.pending_dict.is_empty() {
            let first_id = self.dict.len() - self.pending_dict.len();
            let mut payload = Vec::new();
            for (i, s) in self.pending_dict.iter().enumerate() {
                put_u32(&mut payload, u32::try_from(first_id + i).expect("dense ids"));
                put_bytes(&mut payload, s.as_bytes());
            }
            let n = self.pending_dict.len();
            self.pending_dict.clear();
            let _ = write_block(&mut self.out, ty::DICT, n, &payload);
        }
        let payload = serialize_payload(type_id, &mut self.buffers);
        let _ = write_block(&mut self.out, type_id, count, &payload);
    }

    fn push(&mut self, event: &Event) {
        let type_id = event_type_id(event);
        if self.open_type != Some(type_id) || self.buffered_rows(type_id) >= BLOCK_ROWS {
            self.seal();
            self.open_type = Some(type_id);
        }
        match event {
            Event::ExperimentStarted { id, title, seed, scale } => {
                let row = (self.intern(id), self.intern(title), *seed, self.intern(scale));
                self.buffers.experiment_started.push(row);
            }
            Event::ExperimentFinished { id, pass, elapsed_us } => {
                let row = (self.intern(id), u8::from(*pass), *elapsed_us);
                self.buffers.experiment_finished.push(row);
            }
            Event::BatchStarted {
                kind,
                protocol,
                ell,
                n,
                x0,
                source_opinion,
                reps,
                budget,
                seed,
                g0,
                g1,
            } => {
                let row = BatchRow {
                    kind: self.intern(kind),
                    protocol: self.intern(protocol),
                    ell: *ell,
                    n: *n,
                    x0: *x0,
                    source_opinion: *source_opinion,
                    reps: *reps,
                    budget: *budget,
                    seed: *seed,
                    g0: g0.clone(),
                    g1: g1.clone(),
                };
                self.buffers.batch_started.push(row);
            }
            Event::ReplicationFinished { rep, outcome, rounds, elapsed_us } => {
                let tag = u8::from(matches!(outcome, ReplicationOutcome::Converged));
                self.buffers.replication_finished.push((*rep, tag, *rounds, *elapsed_us));
            }
            Event::RoundCompleted { rep, round, ones, source_opinion } => {
                self.buffers.round_completed.push((*rep, *round, *ones, *source_opinion));
            }
            Event::ConsensusExited { rep, entered, exited } => {
                self.buffers.consensus_exited.push((*rep, *entered, *exited));
            }
            Event::Manifest(m) => self.buffers.manifest.push(m.to_json()),
            Event::TelemetrySample { series, version, elapsed_us, value } => {
                let row = (self.intern(series), *version, *elapsed_us, *value);
                self.buffers.telemetry_sample.push(row);
            }
        }
    }
}

impl EventSink for ColumnarSink {
    fn emit(&self, event: &Event) {
        self.inner.lock().expect("columnar sink poisoned").push(event);
    }

    fn flush(&self) {
        let mut inner = self.inner.lock().expect("columnar sink poisoned");
        inner.seal();
        let _ = inner.out.flush();
    }
}

impl Drop for ColumnarSink {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.seal();
            let _ = inner.out.flush();
        }
    }
}

impl std::fmt::Debug for ColumnarSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarSink").finish_non_exhaustive()
    }
}

fn event_type_id(event: &Event) -> u8 {
    match event {
        Event::ExperimentStarted { .. } => ty::EXPERIMENT_STARTED,
        Event::ExperimentFinished { .. } => ty::EXPERIMENT_FINISHED,
        Event::BatchStarted { .. } => ty::BATCH_STARTED,
        Event::ReplicationFinished { .. } => ty::REPLICATION_FINISHED,
        Event::RoundCompleted { .. } => ty::ROUND_COMPLETED,
        Event::ConsensusExited { .. } => ty::CONSENSUS_EXITED,
        Event::Manifest(_) => ty::MANIFEST,
        Event::TelemetrySample { .. } => ty::TELEMETRY_SAMPLE,
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("var-length field < 4 GiB"));
    out.extend_from_slice(bytes);
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_u32(out, u32::try_from(xs.len()).expect("g-table row < 2^32"));
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Serializes (and drains) the buffer for `type_id` into a column
/// payload: each field's values for every row, field by field.
fn serialize_payload(type_id: u8, buffers: &mut Buffers) -> Vec<u8> {
    let mut p = Vec::new();
    match type_id {
        ty::EXPERIMENT_STARTED => {
            let rows = std::mem::take(&mut buffers.experiment_started);
            rows.iter().for_each(|r| put_u32(&mut p, r.0));
            rows.iter().for_each(|r| put_u32(&mut p, r.1));
            rows.iter().for_each(|r| put_u64(&mut p, r.2));
            rows.iter().for_each(|r| put_u32(&mut p, r.3));
        }
        ty::EXPERIMENT_FINISHED => {
            let rows = std::mem::take(&mut buffers.experiment_finished);
            rows.iter().for_each(|r| put_u32(&mut p, r.0));
            rows.iter().for_each(|r| p.push(r.1));
            rows.iter().for_each(|r| put_u64(&mut p, r.2));
        }
        ty::BATCH_STARTED => {
            let rows = std::mem::take(&mut buffers.batch_started);
            rows.iter().for_each(|r| put_u32(&mut p, r.kind));
            rows.iter().for_each(|r| put_u32(&mut p, r.protocol));
            rows.iter().for_each(|r| put_u64(&mut p, r.ell));
            rows.iter().for_each(|r| put_u64(&mut p, r.n));
            rows.iter().for_each(|r| put_u64(&mut p, r.x0));
            rows.iter().for_each(|r| p.push(r.source_opinion));
            rows.iter().for_each(|r| put_u64(&mut p, r.reps));
            rows.iter().for_each(|r| put_u64(&mut p, r.budget));
            rows.iter().for_each(|r| put_u64(&mut p, r.seed));
            rows.iter().for_each(|r| put_f64s(&mut p, &r.g0));
            rows.iter().for_each(|r| put_f64s(&mut p, &r.g1));
        }
        ty::REPLICATION_FINISHED => {
            let rows = std::mem::take(&mut buffers.replication_finished);
            rows.iter().for_each(|r| put_u64(&mut p, r.0));
            rows.iter().for_each(|r| p.push(r.1));
            rows.iter().for_each(|r| put_u64(&mut p, r.2));
            rows.iter().for_each(|r| put_u64(&mut p, r.3));
        }
        ty::ROUND_COMPLETED => {
            let rows = std::mem::take(&mut buffers.round_completed);
            rows.iter().for_each(|r| put_u64(&mut p, r.0));
            rows.iter().for_each(|r| put_u64(&mut p, r.1));
            rows.iter().for_each(|r| put_u64(&mut p, r.2));
            rows.iter().for_each(|r| p.push(r.3));
        }
        ty::CONSENSUS_EXITED => {
            let rows = std::mem::take(&mut buffers.consensus_exited);
            rows.iter().for_each(|r| put_u64(&mut p, r.0));
            rows.iter().for_each(|r| put_u64(&mut p, r.1));
            rows.iter().for_each(|r| put_u64(&mut p, r.2));
        }
        ty::MANIFEST => {
            let rows = std::mem::take(&mut buffers.manifest);
            rows.iter().for_each(|r| put_bytes(&mut p, r.as_bytes()));
        }
        ty::TELEMETRY_SAMPLE => {
            let rows = std::mem::take(&mut buffers.telemetry_sample);
            rows.iter().for_each(|r| put_u32(&mut p, r.0));
            rows.iter().for_each(|r| put_u64(&mut p, r.1));
            rows.iter().for_each(|r| put_u64(&mut p, r.2));
            rows.iter().for_each(|r| put_u64(&mut p, r.3));
        }
        _ => unreachable!("serialize_payload called with dict/unknown type"),
    }
    p
}

fn write_block<W: Write + ?Sized>(
    out: &mut W,
    type_id: u8,
    count: usize,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = type_id;
    header[1..5].copy_from_slice(&u32::try_from(count).expect("block rows < 2^32").to_le_bytes());
    header[5..9]
        .copy_from_slice(&u32::try_from(payload.len()).expect("block < 4 GiB").to_le_bytes());
    header[9..17].copy_from_slice(&fnv1a64(payload).to_le_bytes());
    out.write_all(&header)?;
    out.write_all(payload)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A fixed-width little-endian `u64` column view over raw file bytes.
///
/// Values are decoded on the fly from the backing slice — no per-row
/// allocation, no intermediate event structs.
#[derive(Debug, Clone, Copy)]
pub struct U64Col<'a>(&'a [u8]);

impl<'a> U64Col<'a> {
    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len() / 8
    }

    /// Whether the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.0[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"))
    }

    /// Streams the column's values in row order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        self.0.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
    }
}

/// A `u8` column view (flags, opinion bits, outcome tags).
#[derive(Debug, Clone, Copy)]
pub struct U8Col<'a>(&'a [u8]);

impl<'a> U8Col<'a> {
    /// The value at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// Streams the column's values in row order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + 'a {
        self.0.iter().copied()
    }
}

/// Typed column views over one `RoundCompleted` block — the hot path of
/// every streaming analytics pass.
#[derive(Debug, Clone, Copy)]
pub struct RoundCols<'a> {
    /// Rows in the block.
    pub len: usize,
    /// Replication index column.
    pub rep: U64Col<'a>,
    /// Round label column.
    pub round: U64Col<'a>,
    /// Ones-count column.
    pub ones: U64Col<'a>,
    /// Source-opinion column.
    pub source_opinion: U8Col<'a>,
}

/// Typed column views over one `ReplicationFinished` block.
#[derive(Debug, Clone, Copy)]
pub struct FinishedCols<'a> {
    /// Rows in the block.
    pub len: usize,
    /// Replication index column.
    pub rep: U64Col<'a>,
    /// Outcome tags (1 = converged, 0 = timed out).
    pub converged: U8Col<'a>,
    /// Rounds-to-consensus column.
    pub rounds: U64Col<'a>,
    /// Wall-clock latency column (µs).
    pub elapsed_us: U64Col<'a>,
}

/// One decoded `BatchStarted` row (strings resolved from the
/// dictionary, `g`-table rows materialized).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchHeader<'a> {
    /// Batch kind (`conv` / `seqconv` / `cross`).
    pub kind: &'a str,
    /// Protocol display name.
    pub protocol: &'a str,
    /// Sample size ℓ.
    pub ell: u64,
    /// Population size.
    pub n: u64,
    /// Ones in `X_0`.
    pub x0: u64,
    /// The source's opinion bit.
    pub source_opinion: u8,
    /// Replications in the batch.
    pub reps: u64,
    /// Per-replication round budget.
    pub budget: u64,
    /// Base seed.
    pub seed: u64,
    /// `g(0, ·)` row.
    pub g0: Vec<f64>,
    /// `g(1, ·)` row.
    pub g1: Vec<f64>,
}

/// Typed column views over one `TelemetrySample` block. The series
/// column stays dictionary-encoded; resolve ids through
/// [`TelemetryCols::series_name`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryCols<'a> {
    /// Rows in the block.
    pub len: usize,
    /// Dictionary ids of the series paths.
    series_ids: &'a [u8],
    /// Resolved dictionary backing the series ids.
    dict: &'a [String],
    /// Snapshot version column.
    pub version: U64Col<'a>,
    /// Elapsed-microseconds column.
    pub elapsed_us: U64Col<'a>,
    /// Sampled-value column.
    pub value: U64Col<'a>,
}

impl<'a> TelemetryCols<'a> {
    /// The series path of row `i`, resolved from the dictionary.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn series_name(&self, i: usize) -> &'a str {
        let id =
            u32::from_le_bytes(self.series_ids[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        self.dict[id as usize].as_str()
    }
}

/// One validated block, exposed as typed columns. Rare block kinds
/// (headers, manifests) decode to rows; hot kinds stay as column views.
#[derive(Debug)]
pub enum Block<'a> {
    /// Experiment-started rows: `(id, title, seed, scale)`.
    ExperimentStarted(Vec<(&'a str, &'a str, u64, &'a str)>),
    /// Experiment-finished rows: `(id, pass, elapsed_us)`.
    ExperimentFinished(Vec<(&'a str, bool, u64)>),
    /// Batch headers.
    BatchStarted(Vec<BatchHeader<'a>>),
    /// Replication results, as columns.
    ReplicationFinished(FinishedCols<'a>),
    /// Per-round states, as columns.
    RoundCompleted(RoundCols<'a>),
    /// Consensus-exit rows: `(rep, entered, exited)`.
    ConsensusExited(Vec<(u64, u64, u64)>),
    /// Embedded manifest JSON rows.
    Manifest(Vec<&'a str>),
    /// Telemetry samples, as columns.
    TelemetrySample(TelemetryCols<'a>),
}

struct BlockRef {
    type_id: u8,
    count: usize,
    payload: std::ops::Range<usize>,
}

/// A scanned columnar trace: validated block index, resolved dictionary
/// and torn-tail damage report. The whole file is held in one buffer
/// (buffered, not memory-mapped — the workspace is dependency-free) and
/// every column access borrows from it.
pub struct ColumnarReader {
    data: Vec<u8>,
    blocks: Vec<BlockRef>,
    dict: Vec<String>,
    torn_at: Option<u64>,
}

impl ColumnarReader {
    /// Opens and scans the columnar trace at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, and reports `InvalidData` when the file
    /// does not start with the columnar magic (it is not a columnar
    /// trace at all — as opposed to a torn one, which opens fine and is
    /// flagged via [`ColumnarReader::torn_tail`]).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Scans an in-memory columnar trace.
    ///
    /// # Errors
    ///
    /// Reports `InvalidData` when the buffer does not start with the
    /// columnar magic.
    pub fn from_bytes(data: Vec<u8>) -> std::io::Result<Self> {
        if !data.starts_with(&MAGIC) {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "not a columnar trace (missing BDCT magic)",
            ));
        }
        let mut blocks = Vec::new();
        let mut dict: Vec<String> = Vec::new();
        let mut torn_at = None;
        let mut offset = MAGIC.len();
        while offset < data.len() {
            match scan_block(&data, offset, &mut dict) {
                Some(block) => {
                    let next = block.payload.end;
                    if block.type_id != ty::DICT {
                        blocks.push(block);
                    }
                    offset = next;
                }
                None => {
                    torn_at = Some(offset as u64);
                    break;
                }
            }
        }
        Ok(ColumnarReader { data, blocks, dict, torn_at })
    }

    /// Whether the trace ends in a torn or corrupt frame: the writer was
    /// cut off mid-block (crash, kill, full disk). Analytics cover the
    /// complete prefix.
    #[must_use]
    pub fn torn_tail(&self) -> bool {
        self.torn_at.is_some()
    }

    /// Byte offset of the first invalid frame, when the trace is torn.
    #[must_use]
    pub fn torn_offset(&self) -> Option<u64> {
        self.torn_at
    }

    /// Total recovered event rows (dictionary blocks excluded).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.blocks.iter().map(|b| b.count).sum()
    }

    /// Number of recovered event blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Streams the recovered blocks as typed columns, in file order.
    pub fn blocks(&self) -> impl Iterator<Item = Block<'_>> {
        self.blocks.iter().map(|b| decode_block(&self.data[b.payload.clone()], b, &self.dict))
    }

    /// Streams the recovered events in original emission order — the
    /// compatibility path (`trace convert`, tests). Analytics should
    /// prefer [`ColumnarReader::blocks`], which never materializes
    /// events.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        self.blocks().flat_map(block_to_events)
    }
}

impl std::fmt::Debug for ColumnarReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarReader")
            .field("bytes", &self.data.len())
            .field("blocks", &self.blocks.len())
            .field("dict_entries", &self.dict.len())
            .field("torn_at", &self.torn_at)
            .finish()
    }
}

/// Validates the frame at `offset` and (for dictionary blocks) extends
/// `dict`. Returns `None` on any inconsistency — the torn-tail signal.
fn scan_block(data: &[u8], offset: usize, dict: &mut Vec<String>) -> Option<BlockRef> {
    let header = data.get(offset..offset + HEADER_LEN)?;
    let type_id = header[0];
    if type_id > ty::MAX {
        return None;
    }
    let count = u32::from_le_bytes(header[1..5].try_into().ok()?) as usize;
    let payload_len = u32::from_le_bytes(header[5..9].try_into().ok()?) as usize;
    let checksum = u64::from_le_bytes(header[9..17].try_into().ok()?);
    let start = offset + HEADER_LEN;
    let payload = data.get(start..start.checked_add(payload_len)?)?;
    if fnv1a64(payload) != checksum {
        return None;
    }
    if type_id == ty::DICT {
        // Decode (and structurally validate) dictionary entries; ids must
        // continue the dense sequence.
        let mut cur = Cursor { bytes: payload, pos: 0 };
        for _ in 0..count {
            let id = cur.u32()? as usize;
            if id != dict.len() {
                return None;
            }
            let s = cur.str()?;
            dict.push(s.to_string());
        }
        if cur.pos != payload.len() {
            return None;
        }
    } else if !validate_payload(type_id, count, payload, dict.len()) {
        return None;
    }
    Some(BlockRef { type_id, count, payload: start..start + payload_len })
}

/// Tiny bounds-checked byte cursor for var-width decoding.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Option<u32> {
        let b = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        let b = self.bytes.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        std::str::from_utf8(b).ok()
    }

    fn f64s(&mut self) -> Option<Vec<f64>> {
        let len = self.u32()? as usize;
        let b = self.bytes.get(self.pos..self.pos.checked_add(len.checked_mul(8)?)?)?;
        self.pos += len * 8;
        Some(
            b.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect(),
        )
    }

    fn skip_var(&mut self, width: usize) -> Option<()> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len.checked_mul(width)?)?;
        if end > self.bytes.len() {
            return None;
        }
        self.pos = end;
        Some(())
    }
}

/// Structural validation of a data-block payload: exact column sizes for
/// fixed-width types, a full var-width walk (and dictionary-bound check
/// on string ids) for the rest. A block that validates here decodes
/// without panicking.
fn validate_payload(type_id: u8, count: usize, payload: &[u8], dict_len: usize) -> bool {
    let fixed = |width: usize| payload.len() == count * width;
    let ids_in_dict = |start: usize| {
        payload[start..start + 4 * count]
            .chunks_exact(4)
            .all(|c| (u32::from_le_bytes(c.try_into().expect("4-byte chunk")) as usize) < dict_len)
    };
    match type_id {
        ty::EXPERIMENT_STARTED => fixed(4 + 4 + 8 + 4) && ids_in_dict(0) && ids_in_dict(4 * count),
        ty::EXPERIMENT_FINISHED => fixed(4 + 1 + 8) && ids_in_dict(0),
        ty::REPLICATION_FINISHED => fixed(8 + 1 + 8 + 8),
        ty::ROUND_COMPLETED => fixed(8 + 8 + 8 + 1),
        ty::CONSENSUS_EXITED => fixed(8 + 8 + 8),
        ty::BATCH_STARTED => {
            let fixed_part = count * (4 + 4 + 8 + 8 + 8 + 1 + 8 + 8 + 8);
            if payload.len() < fixed_part || !ids_in_dict(0) || !ids_in_dict(4 * count) {
                return false;
            }
            let mut cur = Cursor { bytes: payload, pos: fixed_part };
            for _ in 0..2 * count {
                if cur.skip_var(8).is_none() {
                    return false;
                }
            }
            cur.pos == payload.len()
        }
        ty::TELEMETRY_SAMPLE => fixed(4 + 8 + 8 + 8) && ids_in_dict(0),
        ty::MANIFEST => {
            let mut cur = Cursor { bytes: payload, pos: 0 };
            for _ in 0..count {
                match cur.str() {
                    Some(s) => {
                        // Manifest rows must decode back to events later.
                        if json::parse(s).is_err() {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
            cur.pos == payload.len()
        }
        _ => false,
    }
}

fn decode_block<'a>(payload: &'a [u8], b: &BlockRef, dict: &'a [String]) -> Block<'a> {
    let count = b.count;
    let s = |id: u32| dict[id as usize].as_str();
    let u32_at = |pos: usize| {
        u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("validated block geometry"))
    };
    match b.type_id {
        ty::EXPERIMENT_STARTED => {
            let (c_id, c_title) = (0, 4 * count);
            let (c_seed, c_scale) = (8 * count, 16 * count);
            let seeds = U64Col(&payload[c_seed..c_seed + 8 * count]);
            Block::ExperimentStarted(
                (0..count)
                    .map(|i| {
                        (
                            s(u32_at(c_id + 4 * i)),
                            s(u32_at(c_title + 4 * i)),
                            seeds.get(i),
                            s(u32_at(c_scale + 4 * i)),
                        )
                    })
                    .collect(),
            )
        }
        ty::EXPERIMENT_FINISHED => {
            let (c_id, c_pass, c_elapsed) = (0, 4 * count, 5 * count);
            let elapsed = U64Col(&payload[c_elapsed..c_elapsed + 8 * count]);
            Block::ExperimentFinished(
                (0..count)
                    .map(|i| (s(u32_at(c_id + 4 * i)), payload[c_pass + i] != 0, elapsed.get(i)))
                    .collect(),
            )
        }
        ty::BATCH_STARTED => {
            let c_kind = 0;
            let c_protocol = 4 * count;
            let c_ell = 8 * count;
            let c_n = c_ell + 8 * count;
            let c_x0 = c_n + 8 * count;
            let c_source = c_x0 + 8 * count;
            let c_reps = c_source + count;
            let c_budget = c_reps + 8 * count;
            let c_seed = c_budget + 8 * count;
            let u64col = |start: usize| U64Col(&payload[start..start + 8 * count]);
            let (ell, n, x0) = (u64col(c_ell), u64col(c_n), u64col(c_x0));
            let (reps, budget, seed) = (u64col(c_reps), u64col(c_budget), u64col(c_seed));
            let mut cur = Cursor { bytes: payload, pos: c_seed + 8 * count };
            let g0s: Vec<Vec<f64>> =
                (0..count).map(|_| cur.f64s().expect("validated block geometry")).collect();
            let g1s: Vec<Vec<f64>> =
                (0..count).map(|_| cur.f64s().expect("validated block geometry")).collect();
            Block::BatchStarted(
                (0..count)
                    .zip(g0s.into_iter().zip(g1s))
                    .map(|(i, (g0, g1))| BatchHeader {
                        kind: s(u32_at(c_kind + 4 * i)),
                        protocol: s(u32_at(c_protocol + 4 * i)),
                        ell: ell.get(i),
                        n: n.get(i),
                        x0: x0.get(i),
                        source_opinion: payload[c_source + i],
                        reps: reps.get(i),
                        budget: budget.get(i),
                        seed: seed.get(i),
                        g0,
                        g1,
                    })
                    .collect(),
            )
        }
        ty::REPLICATION_FINISHED => Block::ReplicationFinished(FinishedCols {
            len: count,
            rep: U64Col(&payload[..8 * count]),
            converged: U8Col(&payload[8 * count..9 * count]),
            rounds: U64Col(&payload[9 * count..17 * count]),
            elapsed_us: U64Col(&payload[17 * count..25 * count]),
        }),
        ty::ROUND_COMPLETED => Block::RoundCompleted(RoundCols {
            len: count,
            rep: U64Col(&payload[..8 * count]),
            round: U64Col(&payload[8 * count..16 * count]),
            ones: U64Col(&payload[16 * count..24 * count]),
            source_opinion: U8Col(&payload[24 * count..25 * count]),
        }),
        ty::CONSENSUS_EXITED => {
            let rep = U64Col(&payload[..8 * count]);
            let entered = U64Col(&payload[8 * count..16 * count]);
            let exited = U64Col(&payload[16 * count..24 * count]);
            Block::ConsensusExited(
                (0..count).map(|i| (rep.get(i), entered.get(i), exited.get(i))).collect(),
            )
        }
        ty::MANIFEST => {
            let mut cur = Cursor { bytes: payload, pos: 0 };
            Block::Manifest(
                (0..count).map(|_| cur.str().expect("validated block geometry")).collect(),
            )
        }
        ty::TELEMETRY_SAMPLE => Block::TelemetrySample(TelemetryCols {
            len: count,
            series_ids: &payload[..4 * count],
            dict,
            version: U64Col(&payload[4 * count..12 * count]),
            elapsed_us: U64Col(&payload[12 * count..20 * count]),
            value: U64Col(&payload[20 * count..28 * count]),
        }),
        _ => unreachable!("dict blocks are consumed during the scan"),
    }
}

/// Expands one decoded block back into owned [`Event`]s, in row order.
fn block_to_events(block: Block<'_>) -> Vec<Event> {
    match block {
        Block::ExperimentStarted(rows) => rows
            .into_iter()
            .map(|(id, title, seed, scale)| Event::ExperimentStarted {
                id: id.to_string(),
                title: title.to_string(),
                seed,
                scale: scale.to_string(),
            })
            .collect(),
        Block::ExperimentFinished(rows) => rows
            .into_iter()
            .map(|(id, pass, elapsed_us)| Event::ExperimentFinished {
                id: id.to_string(),
                pass,
                elapsed_us,
            })
            .collect(),
        Block::BatchStarted(rows) => rows
            .into_iter()
            .map(|h| Event::BatchStarted {
                kind: h.kind.to_string(),
                protocol: h.protocol.to_string(),
                ell: h.ell,
                n: h.n,
                x0: h.x0,
                source_opinion: h.source_opinion,
                reps: h.reps,
                budget: h.budget,
                seed: h.seed,
                g0: h.g0,
                g1: h.g1,
            })
            .collect(),
        Block::ReplicationFinished(c) => (0..c.len)
            .map(|i| Event::ReplicationFinished {
                rep: c.rep.get(i),
                outcome: if c.converged.get(i) != 0 {
                    ReplicationOutcome::Converged
                } else {
                    ReplicationOutcome::TimedOut
                },
                rounds: c.rounds.get(i),
                elapsed_us: c.elapsed_us.get(i),
            })
            .collect(),
        Block::RoundCompleted(c) => (0..c.len)
            .map(|i| Event::RoundCompleted {
                rep: c.rep.get(i),
                round: c.round.get(i),
                ones: c.ones.get(i),
                source_opinion: c.source_opinion.get(i),
            })
            .collect(),
        Block::ConsensusExited(rows) => rows
            .into_iter()
            .map(|(rep, entered, exited)| Event::ConsensusExited { rep, entered, exited })
            .collect(),
        Block::Manifest(rows) => rows
            .into_iter()
            .filter_map(|s| {
                let value = json::parse(s).ok()?;
                RunManifest::from_value(&value).ok().map(Event::Manifest)
            })
            .collect(),
        Block::TelemetrySample(c) => (0..c.len)
            .map(|i| Event::TelemetrySample {
                series: c.series_name(i).to_string(),
                version: c.version.get(i),
                elapsed_us: c.elapsed_us.get(i),
                value: c.value.get(i),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Repair
// ---------------------------------------------------------------------------

/// What [`repair`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Blocks (dictionary blocks included) preserved by the repair.
    pub blocks_kept: usize,
    /// Event rows preserved.
    pub events_kept: usize,
    /// Bytes of torn tail physically truncated away (0 for a clean
    /// trace).
    pub bytes_truncated: u64,
}

/// Detects and physically truncates a torn tail, exactly as
/// [`crate::CheckpointLog::open`] repairs its JSONL log: the valid
/// prefix is committed back with an atomic write-to-temp + rename, so a
/// crash mid-repair leaves either the damaged file (repaired again next
/// time) or the clean one — never a worse state.
///
/// # Errors
///
/// Propagates I/O errors, including `InvalidData` when the file is not a
/// columnar trace at all.
pub fn repair(path: &Path) -> std::io::Result<RepairStats> {
    let reader = ColumnarReader::open(path)?;
    let stats = RepairStats {
        blocks_kept: reader.block_count(),
        events_kept: reader.event_count(),
        bytes_truncated: reader.torn_at.map_or(0, |at| reader.data.len() as u64 - at),
    };
    if let Some(at) = reader.torn_at {
        atomic_replace(path, &reader.data[..usize::try_from(at).expect("offset fits")])?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::ExperimentStarted {
                id: "e2".to_string(),
                title: "Voter upper bound".to_string(),
                seed: u64::MAX,
                scale: "smoke".to_string(),
            },
            Event::Manifest(RunManifest::example()),
            Event::BatchStarted {
                kind: "conv".to_string(),
                protocol: "voter".to_string(),
                ell: 1,
                n: 128,
                x0: 1,
                source_opinion: 1,
                reps: 2,
                budget: 4_964,
                seed: 0xBAD_5EED,
                g0: vec![0.0, 1.0],
                g1: vec![0.0, 1.0],
            },
            Event::RoundCompleted { rep: 0, round: 1, ones: 2, source_opinion: 1 },
            Event::RoundCompleted { rep: 0, round: 2, ones: 5, source_opinion: 1 },
            Event::ReplicationFinished {
                rep: 0,
                outcome: ReplicationOutcome::Converged,
                rounds: 2,
                elapsed_us: 17,
            },
            Event::RoundCompleted { rep: 1, round: 1, ones: 3, source_opinion: 1 },
            Event::ConsensusExited { rep: 1, entered: 4, exited: 9 },
            Event::ReplicationFinished {
                rep: 1,
                outcome: ReplicationOutcome::TimedOut,
                rounds: 4_964,
                elapsed_us: 900,
            },
            Event::ExperimentFinished { id: "e2".to_string(), pass: true, elapsed_us: 1_000 },
            Event::TelemetrySample {
                series: "counter/rounds_simulated".to_string(),
                version: 1,
                elapsed_us: 250_000,
                value: 4_964,
            },
            Event::TelemetrySample {
                series: "span/replication/p99".to_string(),
                version: 1,
                elapsed_us: 250_000,
                value: 880,
            },
        ]
    }

    fn encode(events: &[Event]) -> Vec<u8> {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = ColumnarSink::from_writer(Box::new(Shared(Arc::clone(&buf)))).unwrap();
        for ev in events {
            sink.emit(ev);
        }
        drop(sink);
        let bytes = buf.lock().unwrap().clone();
        bytes
    }

    #[test]
    fn every_event_kind_round_trips_in_order() {
        let events = sample_events();
        let reader = ColumnarReader::from_bytes(encode(&events)).unwrap();
        assert!(!reader.torn_tail());
        assert_eq!(reader.event_count(), events.len());
        let back: Vec<Event> = reader.events().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn empty_trace_is_valid() {
        let reader = ColumnarReader::from_bytes(MAGIC.to_vec()).unwrap();
        assert!(!reader.torn_tail());
        assert_eq!(reader.event_count(), 0);
        assert_eq!(reader.events().count(), 0);
    }

    #[test]
    fn missing_magic_is_invalid_data_not_torn() {
        let err = ColumnarReader::from_bytes(b"not a trace".to_vec()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        let err = ColumnarReader::from_bytes(Vec::new()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    /// Walks the frames of a *valid* trace and returns every block
    /// boundary offset (positions where a cut leaves only whole blocks).
    fn block_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut bounds = vec![MAGIC.len()];
        let mut offset = MAGIC.len();
        while offset < bytes.len() {
            let payload_len =
                u32::from_le_bytes(bytes[offset + 5..offset + 9].try_into().unwrap()) as usize;
            offset += HEADER_LEN + payload_len;
            bounds.push(offset);
        }
        bounds
    }

    #[test]
    fn truncation_at_every_byte_offset_recovers_a_clean_prefix() {
        // The exhaustive version of the torn-tail contract: cutting the
        // file at *any* byte offset must recover a prefix of whole
        // blocks — never garbage, never a panic. A cut exactly on a
        // block boundary is indistinguishable from a clean shorter
        // trace (just as JSONL cut exactly at a newline), so only
        // mid-block cuts must raise the torn-tail flag.
        let events = sample_events();
        let full = encode(&events);
        let bounds = block_boundaries(&full);
        let all: Vec<Event> = events.clone();
        for cut in MAGIC.len()..full.len() {
            let reader = ColumnarReader::from_bytes(full[..cut].to_vec()).unwrap();
            let recovered: Vec<Event> = reader.events().collect();
            assert!(recovered.len() <= all.len());
            assert_eq!(recovered[..], all[..recovered.len()], "cut at byte {cut}");
            assert_eq!(
                reader.torn_tail(),
                !bounds.contains(&cut),
                "cut at byte {cut}: torn-tail flag must fire exactly on mid-block cuts"
            );
            if reader.torn_tail() {
                assert!(
                    bounds.contains(&(reader.torn_offset().unwrap() as usize)),
                    "cut at byte {cut}: torn offset must be the last block boundary"
                );
            }
        }
    }

    #[test]
    fn corrupt_payload_byte_is_detected_by_checksum() {
        let events = sample_events();
        let mut bytes = encode(&events);
        // Flip one byte inside the first block's payload.
        let idx = MAGIC.len() + HEADER_LEN + 1;
        bytes[idx] ^= 0xFF;
        let reader = ColumnarReader::from_bytes(bytes).unwrap();
        assert!(reader.torn_tail());
        assert_eq!(reader.torn_offset(), Some(MAGIC.len() as u64));
        assert_eq!(reader.event_count(), 0);
    }

    #[test]
    fn dictionary_is_shared_across_blocks() {
        // Two experiment brackets with the same id: the dictionary must
        // dedupe the string, and both decode to the same text.
        let events = vec![
            Event::ExperimentStarted {
                id: "e7".to_string(),
                title: "t".to_string(),
                seed: 1,
                scale: "smoke".to_string(),
            },
            Event::ExperimentFinished { id: "e7".to_string(), pass: false, elapsed_us: 9 },
        ];
        let bytes = encode(&events);
        let reader = ColumnarReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.dict.len(), 3, "e7/t/smoke interned once each");
        let back: Vec<Event> = reader.events().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn long_runs_split_into_bounded_blocks() {
        let mut events = Vec::new();
        for r in 0..(BLOCK_ROWS as u64 * 2 + 10) {
            events.push(Event::RoundCompleted { rep: 0, round: r, ones: r, source_opinion: 1 });
        }
        let reader = ColumnarReader::from_bytes(encode(&events)).unwrap();
        assert_eq!(reader.block_count(), 3, "two full blocks plus the remainder");
        assert_eq!(reader.event_count(), events.len());
        let back: Vec<Event> = reader.events().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn flush_seals_the_open_block() {
        let path =
            std::env::temp_dir().join(format!("obs_columnar_flush_{}.bct", std::process::id()));
        let sink = ColumnarSink::create(&path).unwrap();
        sink.emit(&Event::RoundCompleted { rep: 0, round: 1, ones: 1, source_opinion: 1 });
        sink.flush();
        // Before drop, the flushed event must already be on disk.
        let reader = ColumnarReader::open(&path).unwrap();
        assert_eq!(reader.event_count(), 1);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repair_truncates_torn_tail_atomically() {
        let path =
            std::env::temp_dir().join(format!("obs_columnar_repair_{}.bct", std::process::id()));
        let events = sample_events();
        let full = encode(&events);
        // Tear mid-way through the last block.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let stats = repair(&path).unwrap();
        assert!(stats.bytes_truncated > 0);
        assert!(stats.events_kept < events.len());
        // After repair the file scans clean and a second repair is a
        // no-op.
        let reader = ColumnarReader::open(&path).unwrap();
        assert!(!reader.torn_tail());
        assert_eq!(reader.event_count(), stats.events_kept);
        let again = repair(&path).unwrap();
        assert_eq!(again.bytes_truncated, 0);
        assert_eq!(again.events_kept, stats.events_kept);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repair_rejects_non_columnar_files() {
        let path =
            std::env::temp_dir().join(format!("obs_columnar_notatrace_{}.bct", std::process::id()));
        std::fs::write(&path, b"{\"type\":\"round_completed\"}\n").unwrap();
        assert_eq!(repair(&path).unwrap_err().kind(), ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_sniffing() {
        assert_eq!(sniff_bytes(&MAGIC), Some(TraceFormat::Columnar));
        assert_eq!(sniff_bytes(b"{\"type\":"), Some(TraceFormat::Jsonl));
        assert_eq!(sniff_bytes(b"  \n{\"a\":1}"), Some(TraceFormat::Jsonl));
        assert_eq!(sniff_bytes(b"schema_version,label"), None);
        assert_eq!(sniff_bytes(b""), None);
        assert_eq!(sniff_bytes(&MAGIC[..4]), None, "a partial magic is not a columnar trace");
    }

    #[test]
    fn detect_format_on_disk() {
        let dir = std::env::temp_dir();
        let cpath = dir.join(format!("obs_detect_col_{}.bct", std::process::id()));
        let jpath = dir.join(format!("obs_detect_jsonl_{}.jsonl", std::process::id()));
        let xpath = dir.join(format!("obs_detect_other_{}.txt", std::process::id()));
        drop(ColumnarSink::create(&cpath).unwrap());
        std::fs::write(&jpath, "{\"type\":\"x\"}\n").unwrap();
        std::fs::write(&xpath, "hello\n").unwrap();
        assert_eq!(detect_format(&cpath).unwrap(), Some(TraceFormat::Columnar));
        assert_eq!(detect_format(&jpath).unwrap(), Some(TraceFormat::Jsonl));
        assert_eq!(detect_format(&xpath).unwrap(), None);
        for p in [cpath, jpath, xpath] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn matches_memory_sink_stream_exactly() {
        // The convert-equality contract at the sink level: the columnar
        // round trip of a MemorySink stream is the stream itself.
        let mem = MemorySink::new();
        for ev in sample_events() {
            mem.emit(&ev);
        }
        let reader = ColumnarReader::from_bytes(encode(&mem.events())).unwrap();
        let back: Vec<Event> = reader.events().collect();
        assert_eq!(back, mem.events());
    }
}
