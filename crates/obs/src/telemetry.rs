//! Live telemetry: sharded metric cells, lock-free snapshots, and
//! streaming exporters.
//!
//! The hot-path half of this module is a set of *striped* primitives —
//! [`Counter`] and [`AtomicHistogram`] — where every pool worker (and
//! the main thread) owns one cache-line-padded stripe and writes it
//! with plain relaxed increments. Nothing on the write path takes a
//! lock, issues a read-modify-write on a shared line, or even branches
//! on reader state, so instrumented engines keep their measured
//! replica-round throughput (see the `telemetry_overhead` bench group).
//!
//! The read half is a snapshot thread ([`start_telemetry`]) that merges
//! the stripes at a configurable interval into versioned
//! [`TelemetrySnapshot`]s and fans them out to pluggable
//! [`TelemetryExporter`]s:
//!
//! - [`PrometheusExporter`] — text exposition, atomically replaced on
//!   disk so a scraper never reads a torn file,
//! - [`ColumnarTelemetryExporter`] — `telemetry_sample` rows appended
//!   to a `BDCT` columnar trace, so `trace` analytics (and the
//!   torn-tail `repair()` contract) apply to telemetry series too,
//! - [`SnapshotRing`] — an in-process ring buffer for embedding,
//! - [`SocketPublisher`] — a unix-socket JSON-lines feed that the CLI
//!   `watch` subcommand attaches to.
//!
//! Why relaxed ordering is enough: every stripe value is *monotone*
//! (counters and histogram bins only grow), and a snapshot derives all
//! its totals from the bins it actually read. A racing merge may land
//! between two increments and observe a value that is momentarily
//! stale, but never torn: each load is a single aligned `u64`, each
//! total is the sum of loads, and successive snapshots of the same cell
//! are non-decreasing. Cross-metric skew (counter A observed after a
//! later write than counter B) is inherent to sampling a live system
//! and is bounded by one snapshot interval.

use crate::json::{self, Value};
use crate::metrics::{CounterSnapshot, Metrics};
use crate::progress::Progress;
use crate::sink::EventSink;
use crate::Event;
use bitdissem_stats::LogHistogram as EdgeHistogram;
use std::cell::Cell;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Number of stripes per counter/histogram. A power of two at least as
/// large as the pool sizes we deploy (workers register dedicated slots;
/// unregistered threads hash onto the remainder).
pub const STRIPES: usize = 16;

/// Lower edge of the latency histograms: 100 ns.
pub const LATENCY_LO_NS: f64 = 100.0;
/// Upper edge of the latency histograms: 100 s.
pub const LATENCY_HI_NS: f64 = 1e11;
/// Latency histogram bin count: 8 bins per decade over 9 decades.
pub const LATENCY_BINS: usize = 72;

/// Pads (and aligns) a value to its own cache line pair so adjacent
/// stripes never share a line — 128 bytes covers the spatial prefetcher
/// pairing on current x86 parts as well as 128-byte-line ARM cores.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

thread_local! {
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin slot source for threads that never called
/// [`register_thread_slot`].
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

/// Pins the calling thread to stripe `slot % STRIPES`.
///
/// Pool workers call this once at thread start with their worker index
/// so each worker owns a stable stripe for the life of the pool; the
/// submitting thread and ad-hoc threads fall back to a round-robin
/// assignment on first write.
pub fn register_thread_slot(slot: usize) {
    SLOT.with(|s| s.set(slot % STRIPES));
}

/// The calling thread's stripe index, assigning one round-robin on
/// first use.
#[inline]
#[must_use]
pub fn thread_slot() -> usize {
    SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
            v
        }
    })
}

/// A monotone counter striped across [`STRIPES`] cache-line-padded
/// cells.
///
/// `add` touches only the calling thread's stripe (relaxed
/// `fetch_add`, which on an uncontended line is as cheap as a plain
/// store-forwarded RMW); `load` sums the stripes. The signature of
/// [`Counter::load`] deliberately mirrors `AtomicU64::load` so call
/// sites written against the legacy shared-atomic [`Metrics`] fields
/// compile unchanged.
pub struct Counter {
    stripes: Box<[CachePadded<AtomicU64>]>,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter { stripes: (0..STRIPES).map(|_| CachePadded::default()).collect() }
    }

    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to an explicit stripe — for callers (the pool) that
    /// already know their slot and want to skip the thread-local read.
    #[inline]
    pub fn add_to(&self, slot: usize, n: u64) {
        self.stripes[slot % STRIPES].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all stripes. The `Ordering` parameter is accepted (and
    /// ignored — every load is relaxed) for drop-in compatibility with
    /// `AtomicU64::load` call sites.
    #[must_use]
    pub fn load(&self, _order: Ordering) -> u64 {
        self.stripes.iter().map(|c| c.0.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }

    /// Sum of all stripes.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter").field("value", &self.get()).finish()
    }
}

/// One stripe of histogram bins: its own allocation, so stripes never
/// share cache lines beyond allocator adjacency.
#[derive(Debug)]
struct HistStripe {
    /// `[0]` underflow, `[1..=LATENCY_BINS]` the geometric bins,
    /// `[LATENCY_BINS + 1]` overflow.
    bins: Box<[AtomicU64]>,
}

impl Default for HistStripe {
    fn default() -> Self {
        HistStripe { bins: (0..LATENCY_BINS + 2).map(|_| AtomicU64::new(0)).collect() }
    }
}

/// A log-bucketed latency histogram striped across [`STRIPES`] cells,
/// sharing its geometric bin edges with [`bitdissem_stats::LogHistogram`]
/// (100 ns .. 100 s, 8 bins per decade).
///
/// Recording is one relaxed increment on the calling thread's stripe.
/// [`AtomicHistogram::snapshot`] merges the stripes into an ordinary
/// `stats::LogHistogram`, whose quantile semantics (upper bin edge at
/// the target rank) therefore apply verbatim to live telemetry. Because
/// bins are monotone, a racing snapshot is never torn: its derived
/// count equals the sum of the bins it read.
#[derive(Debug)]
pub struct AtomicHistogram {
    stripes: Box<[HistStripe]>,
    /// Empty template carrying the shared bin edges.
    edges: EdgeHistogram,
}

impl AtomicHistogram {
    /// A zeroed histogram over the standard latency edges.
    ///
    /// # Panics
    ///
    /// Never — the standard edges are statically valid.
    #[must_use]
    pub fn new() -> Self {
        AtomicHistogram {
            stripes: (0..STRIPES).map(|_| HistStripe::default()).collect(),
            edges: EdgeHistogram::new(LATENCY_LO_NS, LATENCY_HI_NS, LATENCY_BINS)
                .expect("static latency edges are valid"),
        }
    }

    /// Records one latency sample (nanoseconds) into the calling
    /// thread's stripe.
    #[inline]
    pub fn record(&self, nanos: u64) {
        let v = nanos as f64;
        let idx = match self.edges.bin_index(v) {
            Some(b) => b + 1,
            None if v < LATENCY_LO_NS => 0,
            None => LATENCY_BINS + 1,
        };
        self.stripes[thread_slot()].bins[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges all stripes into a plain [`bitdissem_stats::LogHistogram`]
    /// with identical edges.
    ///
    /// # Panics
    ///
    /// Never — the merged bin vector matches the static edge layout.
    #[must_use]
    pub fn snapshot(&self) -> EdgeHistogram {
        let mut merged = vec![0u64; LATENCY_BINS + 2];
        for stripe in self.stripes.iter() {
            for (acc, bin) in merged.iter_mut().zip(stripe.bins.iter()) {
                *acc += bin.load(Ordering::Relaxed);
            }
        }
        let overflow = merged.pop().expect("overflow bin");
        let underflow = merged.remove(0);
        EdgeHistogram::from_counts(LATENCY_LO_NS, LATENCY_HI_NS, merged, underflow, overflow)
            .expect("static latency edges are valid")
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Latency quantile summary for one span path, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanQuantiles {
    /// Samples recorded.
    pub count: u64,
    /// 50th percentile (upper bin edge).
    pub p50: u64,
    /// 90th percentile (upper bin edge).
    pub p90: u64,
    /// 99th percentile (upper bin edge).
    pub p99: u64,
    /// Largest sample observed (upper bin edge for merged histograms).
    pub max: u64,
}

/// Live progress as seen by one snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressView {
    /// Units completed.
    pub done: u64,
    /// Units expected (0 = indeterminate).
    pub total: u64,
    /// Smoothed completion rate, units per second.
    pub rate_per_sec: f64,
    /// Estimated seconds to completion; negative when unknown.
    pub eta_secs: f64,
}

/// One merged, versioned view of the live metric cells.
///
/// Snapshots are self-contained values: they serialize to a single
/// JSON object (the unix-socket wire format) and back, and carry
/// everything the `watch` view renders — totals, per-interval rates,
/// gauges, span latency quantiles, the phase tree, and progress.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotone snapshot sequence number, starting at 1.
    pub version: u64,
    /// Wall-clock milliseconds since the unix epoch at merge time.
    pub unix_ms: u64,
    /// Microseconds since the snapshot thread started.
    pub elapsed_us: u64,
    /// Counter totals, in fixed registry order.
    pub counters: Vec<(String, u64)>,
    /// Per-counter rates over the previous snapshot interval, units/s.
    pub rates: Vec<(String, f64)>,
    /// Gauge values.
    pub gauges: Vec<(String, u64)>,
    /// Latency quantiles per span path (profiler spans plus the striped
    /// `latency/*` histograms).
    pub spans: Vec<(String, SpanQuantiles)>,
    /// Phase totals: `(name, calls, nanos)`.
    pub phases: Vec<(String, u64, u64)>,
    /// Progress, when a meter is attached.
    pub progress: Option<ProgressView>,
}

impl TelemetrySnapshot {
    /// Total for counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Pool steal ratio: steals / tasks, or 0 when no tasks ran yet.
    #[must_use]
    pub fn steal_ratio(&self) -> f64 {
        let tasks = self.counter("pool_tasks").unwrap_or(0);
        let steals = self.counter("pool_steals").unwrap_or(0);
        if tasks == 0 {
            0.0
        } else {
            steals as f64 / tasks as f64
        }
    }

    /// Checkpoint hit rate: hits / (hits + replications run), or 0.
    #[must_use]
    pub fn checkpoint_hit_rate(&self) -> f64 {
        let hits = self.counter("checkpoint_hits").unwrap_or(0);
        let run = self.counter("replications").unwrap_or(0);
        if hits + run == 0 {
            0.0
        } else {
            hits as f64 / (hits + run) as f64
        }
    }

    /// Serializes to one JSON object (the socket wire format).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let pairs_u64 = |v: &[(String, u64)]| {
            Value::Obj(v.iter().map(|(n, x)| (n.clone(), Value::Int(i128::from(*x)))).collect())
        };
        let mut obj = vec![
            ("version".to_string(), Value::Int(i128::from(self.version))),
            ("unix_ms".to_string(), Value::Int(i128::from(self.unix_ms))),
            ("elapsed_us".to_string(), Value::Int(i128::from(self.elapsed_us))),
            ("counters".to_string(), pairs_u64(&self.counters)),
            (
                "rates".to_string(),
                Value::Obj(self.rates.iter().map(|(n, r)| (n.clone(), Value::Num(*r))).collect()),
            ),
            ("gauges".to_string(), pairs_u64(&self.gauges)),
            (
                "spans".to_string(),
                Value::Obj(
                    self.spans
                        .iter()
                        .map(|(path, q)| {
                            (
                                path.clone(),
                                Value::Obj(vec![
                                    ("count".to_string(), Value::Int(i128::from(q.count))),
                                    ("p50".to_string(), Value::Int(i128::from(q.p50))),
                                    ("p90".to_string(), Value::Int(i128::from(q.p90))),
                                    ("p99".to_string(), Value::Int(i128::from(q.p99))),
                                    ("max".to_string(), Value::Int(i128::from(q.max))),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "phases".to_string(),
                Value::Obj(
                    self.phases
                        .iter()
                        .map(|(name, calls, nanos)| {
                            (
                                name.clone(),
                                Value::Obj(vec![
                                    ("calls".to_string(), Value::Int(i128::from(*calls))),
                                    ("nanos".to_string(), Value::Int(i128::from(*nanos))),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(p) = &self.progress {
            obj.push((
                "progress".to_string(),
                Value::Obj(vec![
                    ("done".to_string(), Value::Int(i128::from(p.done))),
                    ("total".to_string(), Value::Int(i128::from(p.total))),
                    ("rate_per_sec".to_string(), Value::Num(p.rate_per_sec)),
                    ("eta_secs".to_string(), Value::Num(p.eta_secs)),
                ]),
            ));
        }
        Value::Obj(obj)
    }

    /// Renders the JSON wire form (one line, no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Decodes the JSON wire form.
    #[must_use]
    pub fn from_json(line: &str) -> Option<Self> {
        let v = json::parse(line).ok()?;
        let obj_pairs = |v: &Value| -> Option<Vec<(String, Value)>> {
            match v {
                Value::Obj(pairs) => Some(pairs.clone()),
                _ => None,
            }
        };
        let counters = obj_pairs(v.get("counters")?)?
            .into_iter()
            .map(|(n, x)| Some((n, x.as_u64()?)))
            .collect::<Option<Vec<_>>>()?;
        let rates = obj_pairs(v.get("rates")?)?
            .into_iter()
            .map(|(n, x)| Some((n, x.as_f64()?)))
            .collect::<Option<Vec<_>>>()?;
        let gauges = obj_pairs(v.get("gauges")?)?
            .into_iter()
            .map(|(n, x)| Some((n, x.as_u64()?)))
            .collect::<Option<Vec<_>>>()?;
        let spans = obj_pairs(v.get("spans")?)?
            .into_iter()
            .map(|(path, q)| {
                Some((
                    path,
                    SpanQuantiles {
                        count: q.get("count")?.as_u64()?,
                        p50: q.get("p50")?.as_u64()?,
                        p90: q.get("p90")?.as_u64()?,
                        p99: q.get("p99")?.as_u64()?,
                        max: q.get("max")?.as_u64()?,
                    },
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let phases = obj_pairs(v.get("phases")?)?
            .into_iter()
            .map(|(name, p)| Some((name, p.get("calls")?.as_u64()?, p.get("nanos")?.as_u64()?)))
            .collect::<Option<Vec<_>>>()?;
        let progress = match v.get("progress") {
            Some(p) => Some(ProgressView {
                done: p.get("done")?.as_u64()?,
                total: p.get("total")?.as_u64()?,
                rate_per_sec: p.get("rate_per_sec")?.as_f64()?,
                eta_secs: p.get("eta_secs")?.as_f64()?,
            }),
            None => None,
        };
        Some(TelemetrySnapshot {
            version: v.get("version")?.as_u64()?,
            unix_ms: v.get("unix_ms")?.as_u64()?,
            elapsed_us: v.get("elapsed_us")?.as_u64()?,
            counters,
            rates,
            gauges,
            spans,
            phases,
            progress,
        })
    }
}

fn quantiles_of(hist: &EdgeHistogram) -> SpanQuantiles {
    let q = |p: f64| hist.quantile(p).map(|v| v as u64).unwrap_or(0);
    SpanQuantiles { count: hist.count(), p50: q(0.5), p90: q(0.9), p99: q(0.99), max: q(1.0) }
}

/// Merges the metric cells into one versioned snapshot. `prev` (the
/// preceding snapshot's counters and age) feeds the per-interval rates;
/// the first snapshot rates over the whole elapsed window.
#[must_use]
pub fn build_snapshot(
    metrics: &Metrics,
    progress: Option<&Progress>,
    version: u64,
    started: Instant,
    prev: Option<&(Duration, CounterSnapshot)>,
) -> TelemetrySnapshot {
    let elapsed = started.elapsed();
    let counters = metrics.snapshot();
    let named = counters.named();
    let (prev_elapsed, prev_named) = match prev {
        Some((age, snap)) => (*age, snap.named()),
        None => (Duration::ZERO, Vec::new()),
    };
    let dt = (elapsed.saturating_sub(prev_elapsed)).as_secs_f64().max(1e-9);
    let rates = named
        .iter()
        .map(|&(name, cur)| {
            let before = prev_named.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
            (name.to_string(), cur.saturating_sub(before) as f64 / dt)
        })
        .collect();
    let mut spans: Vec<(String, SpanQuantiles)> = metrics
        .spans()
        .into_iter()
        .map(|(path, h)| {
            (
                path,
                SpanQuantiles {
                    count: h.count(),
                    p50: h.quantile(0.5).unwrap_or(0),
                    p90: h.quantile(0.9).unwrap_or(0),
                    p99: h.quantile(0.99).unwrap_or(0),
                    max: h.max(),
                },
            )
        })
        .collect();
    for (name, hist) in metrics.latency_snapshots() {
        if hist.count() > 0 {
            spans.push((format!("latency/{name}"), quantiles_of(&hist)));
        }
    }
    // The re-convergence histogram shares the log-bucketed quantile
    // machinery but records *rounds*, not nanoseconds: the `hist/`
    // prefix keeps it out of the latency namespace and routes it to its
    // own Prometheus metric family (see `render_prometheus`).
    let reconverge = metrics.reconverge_snapshot();
    if reconverge.count() > 0 {
        spans.push(("hist/reconverge_rounds".to_string(), quantiles_of(&reconverge)));
    }
    let unix_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    TelemetrySnapshot {
        version,
        unix_ms,
        elapsed_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        counters: named.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        rates,
        gauges: metrics.gauges().iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        spans,
        phases: metrics.phases().into_iter().map(|(n, s)| (n, s.calls, s.nanos)).collect(),
        progress: progress.map(|p| ProgressView {
            done: p.done(),
            total: p.total(),
            rate_per_sec: p.rate_per_sec(),
            eta_secs: p.eta_secs().unwrap_or(-1.0),
        }),
    }
}

/// A consumer of merged snapshots. Exporters run on the snapshot
/// thread, so slow exports stretch the effective interval rather than
/// perturbing the instrumented workload.
pub trait TelemetryExporter: Send {
    /// Consumes one snapshot.
    fn export(&mut self, snap: &TelemetrySnapshot);
    /// Called once after the final snapshot, before the thread exits.
    fn finish(&mut self) {}
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Renders a snapshot in Prometheus text exposition format (version
/// 0.0.4): counters as `bitdissem_<name>_total`, gauges and derived
/// ratios as plain gauges, span quantiles as labeled
/// `bitdissem_span_latency_ns` samples.
#[must_use]
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(
        "# HELP bitdissem_snapshot_version Monotone telemetry snapshot sequence number.\n",
    );
    out.push_str("# TYPE bitdissem_snapshot_version gauge\n");
    out.push_str(&format!("bitdissem_snapshot_version {}\n", snap.version));
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE bitdissem_{name}_total counter\n"));
        out.push_str(&format!("bitdissem_{name}_total {v}\n"));
    }
    for (name, r) in &snap.rates {
        out.push_str(&format!("bitdissem_rate_per_sec{{counter=\"{name}\"}} {r}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("# TYPE bitdissem_{name} gauge\n"));
        out.push_str(&format!("bitdissem_{name} {v}\n"));
    }
    out.push_str(&format!("bitdissem_pool_steal_ratio {}\n", snap.steal_ratio()));
    out.push_str(&format!("bitdissem_checkpoint_hit_rate {}\n", snap.checkpoint_hit_rate()));
    for (path, q) in &snap.spans {
        // `hist/<name>` series are unit-bearing histograms (rounds, not
        // nanoseconds): they get their own metric family instead of the
        // latency one, so dashboards never mix units.
        if let Some(name) = path.strip_prefix("hist/") {
            out.push_str(&format!("# TYPE bitdissem_{name} summary\n"));
            for (label, v) in [("0.5", q.p50), ("0.9", q.p90), ("0.99", q.p99)] {
                out.push_str(&format!("bitdissem_{name}{{quantile=\"{label}\"}} {v}\n"));
            }
            out.push_str(&format!("bitdissem_{name}_count {}\n", q.count));
            continue;
        }
        for (label, v) in [("0.5", q.p50), ("0.9", q.p90), ("0.99", q.p99)] {
            out.push_str(&format!(
                "bitdissem_span_latency_ns{{span=\"{path}\",quantile=\"{label}\"}} {v}\n"
            ));
        }
        out.push_str(&format!("bitdissem_span_latency_count{{span=\"{path}\"}} {}\n", q.count));
    }
    if let Some(p) = &snap.progress {
        out.push_str(&format!("bitdissem_progress_done {}\n", p.done));
        out.push_str(&format!("bitdissem_progress_total {}\n", p.total));
        out.push_str(&format!("bitdissem_progress_rate_per_sec {}\n", p.rate_per_sec));
        out.push_str(&format!("bitdissem_progress_eta_secs {}\n", p.eta_secs));
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition into samples. Comment (`#`) and
/// blank lines are skipped; anything else must be
/// `name[{labels}] value`.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (head, value) =
            line.rsplit_once(char::is_whitespace).ok_or_else(|| err("missing value"))?;
        let value: f64 = value.parse().map_err(|_| err("bad value"))?;
        let (name, labels) = match head.split_once('{') {
            None => (head.trim().to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| err("unterminated labels"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label pair"))?;
                    let v = v
                        .trim()
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.trim().to_string(), v.to_string()));
                }
                (name.trim().to_string(), labels)
            }
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        samples.push(PromSample { name, labels, value });
    }
    Ok(samples)
}

/// Atomically rewrites a Prometheus exposition file on every snapshot,
/// so an external scraper (or `watch --prom`) always reads a complete
/// exposition.
#[derive(Debug)]
pub struct PrometheusExporter {
    path: PathBuf,
}

impl PrometheusExporter {
    /// An exporter writing to `path`.
    #[must_use]
    pub fn new(path: &Path) -> Self {
        PrometheusExporter { path: path.to_path_buf() }
    }
}

impl TelemetryExporter for PrometheusExporter {
    fn export(&mut self, snap: &TelemetrySnapshot) {
        // Best-effort like every sink: a full disk must not kill the run.
        let _ = crate::durable::atomic_replace(&self.path, render_prometheus(snap).as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Columnar snapshot series
// ---------------------------------------------------------------------------

/// Flattens snapshots into `telemetry_sample` rows in a `BDCT` columnar
/// trace: one row per counter, gauge, and span quantile, keyed by a
/// `kind/name[/quantile]` series path. The file carries the standard
/// torn-tail contract, so a crash mid-snapshot is recovered by
/// [`crate::columnar::repair`] like any other trace.
pub struct ColumnarTelemetryExporter {
    sink: Box<dyn EventSink>,
}

impl ColumnarTelemetryExporter {
    /// An exporter appending to a columnar trace at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(ColumnarTelemetryExporter {
            sink: Box::new(crate::columnar::ColumnarSink::create(path)?),
        })
    }

    /// An exporter feeding an arbitrary sink (tests, fault injection).
    #[must_use]
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        ColumnarTelemetryExporter { sink }
    }

    fn emit(&self, snap: &TelemetrySnapshot, series: String, value: u64) {
        self.sink.emit(&Event::TelemetrySample {
            series,
            version: snap.version,
            elapsed_us: snap.elapsed_us,
            value,
        });
    }
}

impl TelemetryExporter for ColumnarTelemetryExporter {
    fn export(&mut self, snap: &TelemetrySnapshot) {
        for (name, v) in &snap.counters {
            self.emit(snap, format!("counter/{name}"), *v);
        }
        for (name, v) in &snap.gauges {
            self.emit(snap, format!("gauge/{name}"), *v);
        }
        for (path, q) in &snap.spans {
            self.emit(snap, format!("span/{path}/count"), q.count);
            self.emit(snap, format!("span/{path}/p50"), q.p50);
            self.emit(snap, format!("span/{path}/p90"), q.p90);
            self.emit(snap, format!("span/{path}/p99"), q.p99);
        }
        if let Some(p) = &snap.progress {
            self.emit(snap, "progress/done".to_string(), p.done);
            self.emit(snap, "progress/total".to_string(), p.total);
        }
        // Seal the block per snapshot so a tear loses at most one interval.
        self.sink.flush();
    }

    fn finish(&mut self) {
        self.sink.flush();
    }
}

// ---------------------------------------------------------------------------
// In-process ring buffer
// ---------------------------------------------------------------------------

/// A bounded in-process buffer of the most recent snapshots — the
/// embedding API for a future `serve` mode and the data source for
/// same-process live views.
#[derive(Debug)]
pub struct SnapshotRing {
    cap: usize,
    inner: Mutex<VecDeque<TelemetrySnapshot>>,
}

impl SnapshotRing {
    /// A ring keeping the last `cap` snapshots (`cap` 0 coerces to 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        SnapshotRing { cap: cap.max(1), inner: Mutex::new(VecDeque::new()) }
    }

    fn push(&self, snap: TelemetrySnapshot) {
        let mut q = self.inner.lock().expect("ring poisoned");
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(snap);
    }

    /// The most recent snapshot, if any.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the ring panicked mid-push.
    #[must_use]
    pub fn latest(&self) -> Option<TelemetrySnapshot> {
        self.inner.lock().expect("ring poisoned").back().cloned()
    }

    /// All buffered snapshots, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the ring panicked mid-push.
    #[must_use]
    pub fn snapshots(&self) -> Vec<TelemetrySnapshot> {
        self.inner.lock().expect("ring poisoned").iter().cloned().collect()
    }

    /// Buffered snapshot count.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the ring panicked mid-push.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").len()
    }

    /// Whether no snapshot has been buffered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exporter half of [`SnapshotRing`].
#[derive(Debug)]
pub struct RingExporter(pub Arc<SnapshotRing>);

impl TelemetryExporter for RingExporter {
    fn export(&mut self, snap: &TelemetrySnapshot) {
        self.0.push(snap.clone());
    }
}

// ---------------------------------------------------------------------------
// Unix-socket publisher
// ---------------------------------------------------------------------------

/// Publishes snapshots as JSON lines over a unix domain socket; the
/// CLI `watch` subcommand is the intended client. Accepts are
/// non-blocking and performed on the snapshot thread; a client that
/// stops reading is dropped on its first failed write rather than
/// stalling telemetry.
#[cfg(unix)]
pub struct SocketPublisher {
    path: PathBuf,
    listener: std::os::unix::net::UnixListener,
    clients: Vec<std::os::unix::net::UnixStream>,
}

#[cfg(unix)]
impl SocketPublisher {
    /// Binds `path` (removing any stale socket file first).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(path: &Path) -> io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(SocketPublisher { path: path.to_path_buf(), listener, clients: Vec::new() })
    }

    fn accept_pending(&mut self) {
        while let Ok((stream, _)) = self.listener.accept() {
            // Writes stay blocking: one snapshot line per interval is
            // small, and a dead peer errors out instead of hanging.
            let _ = stream.set_nonblocking(false);
            self.clients.push(stream);
        }
    }

    fn broadcast(&mut self, line: &str) {
        use std::io::Write;
        self.clients
            .retain_mut(|c| c.write_all(line.as_bytes()).and_then(|()| c.write_all(b"\n")).is_ok());
    }
}

#[cfg(unix)]
impl TelemetryExporter for SocketPublisher {
    fn export(&mut self, snap: &TelemetrySnapshot) {
        self.accept_pending();
        self.broadcast(&snap.to_json());
    }

    fn finish(&mut self) {
        for c in self.clients.drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(unix)]
impl Drop for SocketPublisher {
    fn drop(&mut self) {
        for c in &self.clients {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Snapshot runner
// ---------------------------------------------------------------------------

struct RunnerShared {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Handle to a running snapshot thread. Dropping (or calling
/// [`TelemetryHandle::stop`]) signals the thread, which takes one final
/// snapshot, runs every exporter's `finish`, and exits.
pub struct TelemetryHandle {
    shared: Arc<RunnerShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryHandle {
    /// Signals the snapshot thread and waits for the final export.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(join) = self.join.take() {
            *self.shared.stop.lock().expect("telemetry stop flag poisoned") = true;
            self.shared.cv.notify_all();
            let _ = join.join();
        }
    }
}

impl Drop for TelemetryHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle").field("running", &self.join.is_some()).finish()
    }
}

/// Starts the snapshot thread: every `interval` it merges the metric
/// cells into a fresh [`TelemetrySnapshot`] and feeds each exporter.
/// On stop it always takes one final snapshot, so even a run shorter
/// than the interval exports exactly its end state.
#[must_use]
pub fn start_telemetry(
    metrics: Arc<Metrics>,
    progress: Option<Arc<Progress>>,
    interval: Duration,
    mut exporters: Vec<Box<dyn TelemetryExporter>>,
) -> TelemetryHandle {
    let shared = Arc::new(RunnerShared { stop: Mutex::new(false), cv: Condvar::new() });
    let thread_shared = Arc::clone(&shared);
    let interval = interval.max(Duration::from_millis(1));
    let join = std::thread::Builder::new()
        .name("bitdissem-telemetry".to_string())
        .spawn(move || {
            let started = Instant::now();
            let mut version = 0u64;
            let mut prev: Option<(Duration, CounterSnapshot)> = None;
            loop {
                let stopping = {
                    let guard = thread_shared.stop.lock().expect("telemetry stop flag poisoned");
                    let (guard, _) = thread_shared
                        .cv
                        .wait_timeout_while(guard, interval, |stop| !*stop)
                        .expect("telemetry stop flag poisoned");
                    *guard
                };
                version += 1;
                let snap =
                    build_snapshot(&metrics, progress.as_deref(), version, started, prev.as_ref());
                prev = Some((started.elapsed(), metrics.snapshot()));
                for e in &mut exporters {
                    e.export(&snap);
                }
                if stopping {
                    for e in &mut exporters {
                        e.finish();
                    }
                    break;
                }
            }
        })
        .expect("spawn telemetry thread");
    TelemetryHandle { shared, join: Some(join) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;
    use std::thread;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let mut joins = Vec::new();
        for slot in 0..8 {
            let c = Arc::clone(&c);
            joins.push(thread::spawn(move || {
                register_thread_slot(slot);
                for _ in 0..1000 {
                    c.add(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 8000);
    }

    #[test]
    fn counter_add_to_targets_explicit_stripes() {
        let c = Counter::new();
        c.add_to(3, 5);
        c.add_to(3 + STRIPES, 7); // wraps onto the same stripe
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn histogram_snapshot_matches_scalar_reference() {
        let h = AtomicHistogram::new();
        let mut reference = EdgeHistogram::new(LATENCY_LO_NS, LATENCY_HI_NS, LATENCY_BINS).unwrap();
        for v in [50u64, 150, 999, 10_000, 1_000_000, 200_000_000_000] {
            h.record(v);
            reference.add(v as f64);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), reference.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(snap.quantile(q), reference.quantile(q));
        }
    }

    #[test]
    fn histogram_bins_are_monotone_under_concurrent_writes() {
        let h = Arc::new(AtomicHistogram::new());
        let writer = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..20_000u64 {
                    h.record(100 + (i % 1_000_000));
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..50 {
            let count = h.snapshot().count();
            assert!(count >= last, "snapshot count went backwards: {last} -> {count}");
            last = count;
        }
        writer.join().unwrap();
        assert_eq!(h.snapshot().count(), 20_000);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = TelemetrySnapshot {
            version: 3,
            unix_ms: 1_700_000_000_000,
            elapsed_us: 2_500_000,
            counters: vec![("rounds_simulated".to_string(), 42)],
            rates: vec![("rounds_simulated".to_string(), 16.5)],
            gauges: vec![("sweep_batches_started".to_string(), 9)],
            spans: vec![(
                "replication".to_string(),
                SpanQuantiles { count: 7, p50: 100, p90: 200, p99: 300, max: 400 },
            )],
            phases: vec![("replicate".to_string(), 2, 12345)],
            progress: Some(ProgressView { done: 5, total: 10, rate_per_sec: 2.0, eta_secs: 2.5 }),
        };
        let decoded = TelemetrySnapshot::from_json(&snap.to_json()).expect("decodes");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn build_snapshot_rates_use_deltas() {
        let m = Metrics::new();
        m.add_rounds(100);
        let started = Instant::now() - Duration::from_secs(1);
        let first = build_snapshot(&m, None, 1, started, None);
        assert_eq!(first.counter("rounds_simulated"), Some(100));
        let rate = first.rates.iter().find(|(n, _)| n == "rounds_simulated").unwrap().1;
        assert!(rate > 0.0);
        // Second snapshot with no new work: delta (and rate) drop to zero.
        let prev = (started.elapsed(), m.snapshot());
        let second = build_snapshot(&m, None, 2, started, Some(&prev));
        let rate2 = second.rates.iter().find(|(n, _)| n == "rounds_simulated").unwrap().1;
        assert_eq!(rate2, 0.0);
    }

    #[test]
    fn ratios_derive_from_counters() {
        let m = Metrics::new();
        m.add_pool_batch(100, 25);
        m.add_checkpoint_hits(10);
        m.add_replications(30);
        let snap = build_snapshot(&m, None, 1, Instant::now(), None);
        assert!((snap.steal_ratio() - 0.25).abs() < 1e-12);
        assert!((snap.checkpoint_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reconverge_histogram_surfaces_with_its_own_metric_family() {
        let m = Metrics::new();
        m.add_perturbations(2);
        m.record_reconverge(400);
        m.record_reconverge(12_000);
        let snap = build_snapshot(&m, None, 1, Instant::now(), None);
        let q = snap
            .spans
            .iter()
            .find(|(p, _)| p == "hist/reconverge_rounds")
            .map(|&(_, q)| q)
            .expect("reconverge histogram exported");
        assert_eq!(q.count, 2);
        assert!(q.max >= 12_000, "max quantile covers the largest clock: {q:?}");
        assert_eq!(snap.counter("perturbations_applied"), Some(2));
        // Rounds never masquerade as span latencies in the exposition.
        let text = render_prometheus(&snap);
        assert!(!text.contains("span_latency_ns{span=\"hist/"), "{text}");
        let samples = parse_prometheus(&text).expect("exposition parses");
        assert!(samples.iter().any(|s| {
            s.name == "bitdissem_reconverge_rounds"
                && s.labels.iter().any(|(k, v)| k == "quantile" && v == "0.5")
        }));
        assert!(samples
            .iter()
            .any(|s| s.name == "bitdissem_reconverge_rounds_count" && s.value == 2.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "bitdissem_perturbations_applied_total" && s.value == 2.0));
    }

    #[test]
    fn prometheus_roundtrip_parses_and_reconciles() {
        let m = Metrics::new();
        m.add_rounds(1234);
        m.add_pool_batch(10, 2);
        let snap = build_snapshot(&m, None, 1, Instant::now(), None);
        let text = render_prometheus(&snap);
        let samples = parse_prometheus(&text).expect("exposition parses");
        let total = samples
            .iter()
            .find(|s| s.name == "bitdissem_rounds_simulated_total")
            .expect("counter exported");
        assert_eq!(total.value, 1234.0);
        let q = samples
            .iter()
            .find(|s| s.name == "bitdissem_span_latency_ns")
            .map(|s| s.labels.clone());
        // No spans recorded, so no latency samples — but the ratio gauges exist.
        assert!(q.is_none());
        assert!(samples.iter().any(|s| s.name == "bitdissem_pool_steal_ratio"));
    }

    #[test]
    fn parse_prometheus_rejects_garbage() {
        assert!(parse_prometheus("no_value_here\n").is_err());
        assert!(parse_prometheus("name{unterminated 1\n").is_err());
        assert!(parse_prometheus("bad name 1\n").is_err());
        assert!(parse_prometheus("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn ring_keeps_latest_snapshots() {
        let ring = Arc::new(SnapshotRing::new(2));
        let mut exporter = RingExporter(Arc::clone(&ring));
        let m = Metrics::new();
        for v in 1..=3 {
            let snap = build_snapshot(&m, None, v, Instant::now(), None);
            exporter.export(&snap);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.latest().unwrap().version, 3);
        assert_eq!(ring.snapshots()[0].version, 2);
    }

    #[test]
    fn columnar_exporter_emits_one_row_per_series() {
        let sink = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl EventSink for Fwd {
            fn emit(&self, e: &Event) {
                self.0.emit(e);
            }
        }
        let mut exporter = ColumnarTelemetryExporter::with_sink(Box::new(Fwd(Arc::clone(&sink))));
        let m = Metrics::new();
        m.add_rounds(5);
        let snap = build_snapshot(&m, None, 1, Instant::now(), None);
        exporter.export(&snap);
        let events = sink.events();
        assert_eq!(events.len(), snap.counters.len() + snap.gauges.len());
        assert!(events.iter().all(|e| matches!(e, Event::TelemetrySample { version: 1, .. })));
        assert!(events.iter().any(
            |e| matches!(e, Event::TelemetrySample { series, value: 5, .. } if series == "counter/rounds_simulated")
        ));
    }

    #[test]
    fn runner_exports_final_snapshot_on_stop() {
        let m = Arc::new(Metrics::new());
        m.add_rounds(7);
        let ring = Arc::new(SnapshotRing::new(8));
        let handle = start_telemetry(
            Arc::clone(&m),
            None,
            Duration::from_secs(3600), // never fires on its own
            vec![Box::new(RingExporter(Arc::clone(&ring)))],
        );
        handle.stop();
        assert_eq!(ring.len(), 1, "stop produces exactly the final snapshot");
        assert_eq!(ring.latest().unwrap().counter("rounds_simulated"), Some(7));
    }

    #[cfg(unix)]
    #[test]
    fn socket_publisher_streams_snapshots_to_clients() {
        use std::io::{BufRead, BufReader};
        let dir = std::env::temp_dir().join(format!("bitdissem-tele-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tele.sock");
        let mut publisher = SocketPublisher::bind(&path).expect("bind");
        let client = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        let m = Metrics::new();
        m.add_rounds(11);
        let snap = build_snapshot(&m, None, 1, Instant::now(), None);
        publisher.export(&snap); // first export accepts, second delivers
        publisher.export(&snap);
        let mut line = String::new();
        BufReader::new(client).read_line(&mut line).expect("read snapshot line");
        let decoded = TelemetrySnapshot::from_json(line.trim()).expect("wire format decodes");
        assert_eq!(decoded.counter("rounds_simulated"), Some(11));
        drop(publisher);
        assert!(!path.exists(), "socket file removed on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
