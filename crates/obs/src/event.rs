//! Typed trace events and their JSONL encoding.

use crate::json::{self, Value};
use crate::manifest::RunManifest;

/// How a replication ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationOutcome {
    /// The run reached the correct consensus (or crossed its witness
    /// threshold) within the budget.
    Converged,
    /// The round budget was exhausted first.
    TimedOut,
}

impl ReplicationOutcome {
    /// Stable string tag used in the JSON encoding.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ReplicationOutcome::Converged => "converged",
            ReplicationOutcome::TimedOut => "timed_out",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "converged" => Some(ReplicationOutcome::Converged),
            "timed_out" => Some(ReplicationOutcome::TimedOut),
            _ => None,
        }
    }
}

/// One structured trace event. Every variant encodes to a single JSON
/// object with a `"type"` discriminator, one per line in a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An experiment run began.
    ExperimentStarted {
        /// Experiment id (`e1`…).
        id: String,
        /// Human-readable title.
        title: String,
        /// Base seed of the run.
        seed: u64,
        /// Scale name (`smoke` / `standard` / `full`).
        scale: String,
    },
    /// An experiment run completed.
    ExperimentFinished {
        /// Experiment id.
        id: String,
        /// Whether every directional check passed.
        pass: bool,
        /// Wall-clock duration in microseconds.
        elapsed_us: u64,
    },
    /// A replicated measurement batch began. The events of a batch
    /// (rounds, replication results) follow it in the trace until the
    /// next `BatchStarted`, and the batch carries everything a trace
    /// analyzer needs to rebuild the protocol — the full `g`-table —
    /// so recorded runs are checkable against theory without knowing
    /// how the protocol was constructed.
    BatchStarted {
        /// Batch kind: `conv` (parallel-round convergence), `seqconv`
        /// (sequential convergence) or `cross` (crossing time, no round
        /// events).
        kind: String,
        /// Protocol display name.
        protocol: String,
        /// Sample size ℓ of the protocol.
        ell: u64,
        /// Population size (including the source).
        n: u64,
        /// Number of agents holding opinion 1 in the initial
        /// configuration `X_0`.
        x0: u64,
        /// The source's (correct) opinion bit.
        source_opinion: u8,
        /// Replications in the batch.
        reps: u64,
        /// Per-replication round budget.
        budget: u64,
        /// Base seed of the batch (replication seeds derive from it).
        seed: u64,
        /// `g(0, k)` for `k = 0..=ℓ`: probability of adopting opinion 1
        /// when holding 0 and seeing `k` ones.
        g0: Vec<f64>,
        /// `g(1, k)` for `k = 0..=ℓ`.
        g1: Vec<f64>,
    },
    /// One replication of a replicated measurement completed.
    ReplicationFinished {
        /// Replication index within its batch.
        rep: u64,
        /// Converged or timed out.
        outcome: ReplicationOutcome,
        /// Convergence time (or the exhausted budget), in parallel rounds.
        rounds: u64,
        /// Wall-clock duration in microseconds.
        elapsed_us: u64,
    },
    /// One parallel round of a simulation completed.
    ///
    /// **Round-label convention:** the event labeled `round = r` carries
    /// the configuration `X_r`, i.e. the state *after* `r` rounds have
    /// completed. Labels therefore start at 1 (the initial configuration
    /// `X_0` is never simulated), and a run converging at round `k`
    /// reports `ones = n` in its `round = k` event.
    RoundCompleted {
        /// Replication index the round belongs to.
        rep: u64,
        /// Rounds completed so far; `ones` describes `X_round`.
        round: u64,
        /// Number of agents holding opinion 1 after the round.
        ones: u64,
        /// The source's (correct) opinion bit.
        source_opinion: u8,
    },
    /// A stability-checked run lost the correct consensus during its dwell
    /// window (the protocol violates Proposition 3 dynamically).
    ConsensusExited {
        /// Replication index the run belongs to.
        rep: u64,
        /// Round at which the correct consensus was first reached.
        entered: u64,
        /// First round after `entered` at which some agent deviated.
        exited: u64,
    },
    /// The run manifest, embedded in the trace for self-description.
    Manifest(RunManifest),
    /// One point of a live telemetry series: the value of one metric
    /// (`counter/...`, `gauge/...`, `span/.../p99`, `progress/...`) as
    /// observed by telemetry snapshot `version`. Emitted by the
    /// columnar telemetry exporter so snapshot series ride the same
    /// trace-store machinery (torn-tail repair, `trace` analytics) as
    /// simulation events.
    TelemetrySample {
        /// Series path, e.g. `counter/rounds_simulated`.
        series: String,
        /// Snapshot sequence number the sample belongs to.
        version: u64,
        /// Microseconds since the snapshot thread started.
        elapsed_us: u64,
        /// Sampled value.
        value: u64,
    },
}

impl Event {
    /// Encodes the event as one compact JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    fn to_value(&self) -> Value {
        let obj = |ty: &str, mut fields: Vec<(String, Value)>| {
            fields.insert(0, ("type".to_string(), Value::Str(ty.to_string())));
            Value::Obj(fields)
        };
        match self {
            Event::ExperimentStarted { id, title, seed, scale } => obj(
                "experiment_started",
                vec![
                    ("id".to_string(), Value::Str(id.clone())),
                    ("title".to_string(), Value::Str(title.clone())),
                    ("seed".to_string(), Value::Int(i128::from(*seed))),
                    ("scale".to_string(), Value::Str(scale.clone())),
                ],
            ),
            Event::ExperimentFinished { id, pass, elapsed_us } => obj(
                "experiment_finished",
                vec![
                    ("id".to_string(), Value::Str(id.clone())),
                    ("pass".to_string(), Value::Bool(*pass)),
                    ("elapsed_us".to_string(), Value::Int(i128::from(*elapsed_us))),
                ],
            ),
            Event::BatchStarted {
                kind,
                protocol,
                ell,
                n,
                x0,
                source_opinion,
                reps,
                budget,
                seed,
                g0,
                g1,
            } => {
                let floats = |xs: &[f64]| Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect());
                obj(
                    "batch_started",
                    vec![
                        ("kind".to_string(), Value::Str(kind.clone())),
                        ("protocol".to_string(), Value::Str(protocol.clone())),
                        ("ell".to_string(), Value::Int(i128::from(*ell))),
                        ("n".to_string(), Value::Int(i128::from(*n))),
                        ("x0".to_string(), Value::Int(i128::from(*x0))),
                        ("source_opinion".to_string(), Value::Int(i128::from(*source_opinion))),
                        ("reps".to_string(), Value::Int(i128::from(*reps))),
                        ("budget".to_string(), Value::Int(i128::from(*budget))),
                        ("seed".to_string(), Value::Int(i128::from(*seed))),
                        ("g0".to_string(), floats(g0)),
                        ("g1".to_string(), floats(g1)),
                    ],
                )
            }
            Event::ReplicationFinished { rep, outcome, rounds, elapsed_us } => obj(
                "replication_finished",
                vec![
                    ("rep".to_string(), Value::Int(i128::from(*rep))),
                    ("outcome".to_string(), Value::Str(outcome.as_str().to_string())),
                    ("rounds".to_string(), Value::Int(i128::from(*rounds))),
                    ("elapsed_us".to_string(), Value::Int(i128::from(*elapsed_us))),
                ],
            ),
            Event::RoundCompleted { rep, round, ones, source_opinion } => obj(
                "round_completed",
                vec![
                    ("rep".to_string(), Value::Int(i128::from(*rep))),
                    ("round".to_string(), Value::Int(i128::from(*round))),
                    ("ones".to_string(), Value::Int(i128::from(*ones))),
                    ("source_opinion".to_string(), Value::Int(i128::from(*source_opinion))),
                ],
            ),
            Event::ConsensusExited { rep, entered, exited } => obj(
                "consensus_exited",
                vec![
                    ("rep".to_string(), Value::Int(i128::from(*rep))),
                    ("entered".to_string(), Value::Int(i128::from(*entered))),
                    ("exited".to_string(), Value::Int(i128::from(*exited))),
                ],
            ),
            Event::Manifest(manifest) => {
                let Value::Obj(fields) = manifest.to_value() else {
                    unreachable!("manifest encodes to an object");
                };
                obj("manifest", fields)
            }
            Event::TelemetrySample { series, version, elapsed_us, value } => obj(
                "telemetry_sample",
                vec![
                    ("series".to_string(), Value::Str(series.clone())),
                    ("version".to_string(), Value::Int(i128::from(*version))),
                    ("elapsed_us".to_string(), Value::Int(i128::from(*elapsed_us))),
                    ("value".to_string(), Value::Int(i128::from(*value))),
                ],
            ),
        }
    }

    /// Decodes an event from one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description on malformed JSON, an unknown
    /// `"type"` or missing fields.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let value = json::parse(line).map_err(|e| e.to_string())?;
        let ty = value.get("type").and_then(Value::as_str).ok_or("missing \"type\" field")?;
        let str_field = |k: &str| {
            value.get(k).and_then(Value::as_str).map(str::to_string).ok_or(format!("missing {k}"))
        };
        let u64_field =
            |k: &str| value.get(k).and_then(Value::as_u64).ok_or(format!("missing {k}"));
        let f64_array = |k: &str| -> Result<Vec<f64>, String> {
            let Some(Value::Arr(items)) = value.get(k) else {
                return Err(format!("missing {k}"));
            };
            items.iter().map(|v| v.as_f64().ok_or(format!("non-numeric entry in {k}"))).collect()
        };
        match ty {
            "batch_started" => Ok(Event::BatchStarted {
                kind: str_field("kind")?,
                protocol: str_field("protocol")?,
                ell: u64_field("ell")?,
                n: u64_field("n")?,
                x0: u64_field("x0")?,
                source_opinion: u8::try_from(u64_field("source_opinion")?)
                    .map_err(|_| "source_opinion out of range".to_string())?,
                reps: u64_field("reps")?,
                budget: u64_field("budget")?,
                seed: u64_field("seed")?,
                g0: f64_array("g0")?,
                g1: f64_array("g1")?,
            }),
            "experiment_started" => Ok(Event::ExperimentStarted {
                id: str_field("id")?,
                title: str_field("title")?,
                seed: u64_field("seed")?,
                scale: str_field("scale")?,
            }),
            "experiment_finished" => Ok(Event::ExperimentFinished {
                id: str_field("id")?,
                pass: value.get("pass").and_then(Value::as_bool).ok_or("missing pass")?,
                elapsed_us: u64_field("elapsed_us")?,
            }),
            "replication_finished" => Ok(Event::ReplicationFinished {
                rep: u64_field("rep")?,
                outcome: ReplicationOutcome::from_str(&str_field("outcome")?)
                    .ok_or("unknown outcome")?,
                rounds: u64_field("rounds")?,
                elapsed_us: u64_field("elapsed_us")?,
            }),
            "round_completed" => Ok(Event::RoundCompleted {
                rep: u64_field("rep")?,
                round: u64_field("round")?,
                ones: u64_field("ones")?,
                source_opinion: u8::try_from(u64_field("source_opinion")?)
                    .map_err(|_| "source_opinion out of range".to_string())?,
            }),
            "consensus_exited" => Ok(Event::ConsensusExited {
                rep: u64_field("rep")?,
                entered: u64_field("entered")?,
                exited: u64_field("exited")?,
            }),
            "manifest" => RunManifest::from_value(&value).map(Event::Manifest),
            "telemetry_sample" => Ok(Event::TelemetrySample {
                series: str_field("series")?,
                version: u64_field("version")?,
                elapsed_us: u64_field("elapsed_us")?,
                value: u64_field("value")?,
            }),
            other => Err(format!("unknown event type '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::ExperimentStarted {
                id: "e2".to_string(),
                title: "Voter upper bound".to_string(),
                seed: u64::MAX,
                scale: "smoke".to_string(),
            },
            Event::ExperimentFinished { id: "e2".to_string(), pass: true, elapsed_us: 12_345 },
            Event::BatchStarted {
                kind: "conv".to_string(),
                protocol: "voter".to_string(),
                ell: 1,
                n: 128,
                x0: 1,
                source_opinion: 1,
                reps: 30,
                budget: 4_964,
                seed: 0xBAD_5EED,
                g0: vec![0.0, 1.0],
                g1: vec![0.0, 1.0],
            },
            Event::BatchStarted {
                kind: "cross".to_string(),
                protocol: "mixed".to_string(),
                ell: 2,
                n: 64,
                x0: 32,
                source_opinion: 0,
                reps: 8,
                budget: 100,
                seed: 7,
                g0: vec![0.125, 0.5, 0.875],
                g1: vec![0.25, 0.5, 0.75],
            },
            Event::ReplicationFinished {
                rep: 3,
                outcome: ReplicationOutcome::Converged,
                rounds: 99,
                elapsed_us: 400,
            },
            Event::ReplicationFinished {
                rep: 4,
                outcome: ReplicationOutcome::TimedOut,
                rounds: 1_000,
                elapsed_us: 2,
            },
            Event::RoundCompleted { rep: 0, round: 17, ones: 5, source_opinion: 1 },
            Event::ConsensusExited { rep: 2, entered: 40, exited: 55 },
            Event::Manifest(RunManifest::example()),
            Event::TelemetrySample {
                series: "counter/rounds_simulated".to_string(),
                version: 12,
                elapsed_us: 3_000_000,
                value: 987_654_321,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in samples() {
            let line = ev.to_json();
            assert!(!line.contains('\n'), "single line: {line}");
            let back = Event::from_json(&line).expect(&line);
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn type_tag_is_first_field() {
        for ev in samples() {
            assert!(ev.to_json().starts_with("{\"type\":\""), "{}", ev.to_json());
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::from_json("{}").is_err());
        assert!(Event::from_json("{\"type\":\"martian\"}").is_err());
        assert!(Event::from_json("{\"type\":\"round_completed\",\"rep\":0}").is_err());
        assert!(Event::from_json("not json").is_err());
    }
}
