//! Environment layer: scheduled perturbations injected between rounds.
//!
//! Every engine in this crate was originally built for a *static* setting:
//! the source opinion `z` and the population are fixed for the whole run,
//! so the correct consensus is absorbing and per-state caches may assume
//! `z` never changes. The paper's Ω(n^{1−ε}) lower bound (Theorem 12) is
//! proved through an adversarial configuration, and the follow-up
//! literature (Korman–Vacus 2022 on changing sources; Becchetti et al.
//! 2022 on noisy/adversarial dynamics) studies exactly the dynamic
//! scenarios this module injects:
//!
//! * **Source flips** (`flip@T`, `flip@every:P`) — the source changes its
//!   opinion, so the consensus target moves mid-run.
//! * **Opinion noise** (`noise:η`) — each non-source agent is
//!   re-randomized with probability `η` per round (uniform redraw, so a
//!   holder flips with probability `η/2`).
//! * **Sub-population resets** (`reset:k=K@T`, `reset:k=K@every:P`,
//!   `reset:k=K@adaptive[:θ]`) — an adversary resets `k` non-source
//!   agents holding the correct opinion back to the wrong one, optionally
//!   adaptively whenever the correct fraction reaches `θ`.
//!
//! A perturbation at boundary `t` applies **after** the consensus check at
//! `t` and **before** the round that produces `X_{t+1}` — uniformly across
//! every engine, which is what lets the conformance harness hold all five
//! parallel backends to the same perturbed law (DESIGN decision 15).
//!
//! The schedule is [`Copy`]/[`Eq`]/[`Hash`] so it can ride inside
//! `RunConfig` and checkpoint batch keys: rates are stored in fixed-point
//! **parts per million**, which keeps the law bit-identical across
//! backends and the fingerprint canonical.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use bitdissem_core::Opinion;

use crate::binomial::sample_binomial;
use crate::rng::SimRng;
use crate::run::Simulator;

/// Stream salt for engines that derive per-round perturbation randomness
/// from counter streams (the wide engine): XORing the replica stream with
/// this constant yields an env stream independent of the transition
/// stream while staying pure in `(stream, round)`.
pub const ENV_STREAM_SALT: u64 = 0x0005_EED0_E7B0_D157_u64;

/// Default adaptive-reset threshold: fire when 90% of the population
/// holds the correct opinion.
const DEFAULT_ADAPTIVE_PPM: u32 = 900_000;

/// When an adversarial reset fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResetTrigger {
    /// Fire once, at boundary `t`.
    At(u64),
    /// Fire at every positive multiple of the period.
    Every(u64),
    /// Fire whenever the correct fraction reaches the threshold
    /// (fixed-point parts per million).
    Adaptive {
        /// Correct-fraction threshold in parts per million.
        thresh_ppm: u32,
    },
}

/// An adversarial sub-population reset: `k` correct non-source agents are
/// reset to the wrong opinion when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResetSpec {
    /// Number of agents the adversary resets (clamped to the available
    /// correct non-source holders when it fires).
    pub k: u64,
    /// When the reset fires.
    pub trigger: ResetTrigger,
}

/// A schedule of environment perturbations, parsed from the CLI `--env`
/// grammar (see the module docs) and applied between rounds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EnvSchedule {
    /// One-shot source flip at this boundary.
    pub flip_at: Option<u64>,
    /// Periodic source flip at every positive multiple of this period.
    pub flip_every: Option<u64>,
    /// Per-round re-randomization probability `η` for each non-source
    /// agent, in parts per million.
    pub noise_ppm: Option<u32>,
    /// Adversarial sub-population reset.
    pub reset: Option<ResetSpec>,
}

/// Error parsing an `--env` schedule specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError(String);

impl fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid env schedule: {}", self.0)
    }
}

impl std::error::Error for EnvParseError {}

fn parse_rate_ppm(s: &str, what: &str) -> Result<u32, EnvParseError> {
    let v: f64 = s.parse().map_err(|_| EnvParseError(format!("{what} `{s}` is not a number")))?;
    if !(v > 0.0 && v <= 1.0) {
        return Err(EnvParseError(format!("{what} `{s}` must be in (0, 1]")));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let ppm = (v * 1_000_000.0).round() as u32;
    if ppm == 0 {
        return Err(EnvParseError(format!("{what} `{s}` rounds to zero parts per million")));
    }
    Ok(ppm)
}

fn fmt_ppm(ppm: u32) -> String {
    format!("{}", f64::from(ppm) / 1_000_000.0)
}

impl FromStr for EnvSchedule {
    type Err = EnvParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut env = EnvSchedule::default();
        if s.trim().is_empty() {
            return Err(EnvParseError("empty specification".into()));
        }
        for clause in s.split(',') {
            let clause = clause.trim();
            if let Some(rest) = clause.strip_prefix("flip@") {
                if let Some(period) = rest.strip_prefix("every:") {
                    if env.flip_every.is_some() {
                        return Err(EnvParseError("duplicate `flip@every` clause".into()));
                    }
                    let p: u64 = period
                        .parse()
                        .map_err(|_| EnvParseError(format!("flip period `{period}` invalid")))?;
                    if p == 0 {
                        return Err(EnvParseError("flip period must be at least 1".into()));
                    }
                    env.flip_every = Some(p);
                } else {
                    if env.flip_at.is_some() {
                        return Err(EnvParseError("duplicate `flip@` clause".into()));
                    }
                    let t: u64 = rest
                        .parse()
                        .map_err(|_| EnvParseError(format!("flip round `{rest}` invalid")))?;
                    env.flip_at = Some(t);
                }
            } else if let Some(rest) = clause.strip_prefix("noise:") {
                if env.noise_ppm.is_some() {
                    return Err(EnvParseError("duplicate `noise` clause".into()));
                }
                env.noise_ppm = Some(parse_rate_ppm(rest, "noise rate")?);
            } else if let Some(rest) = clause.strip_prefix("reset:") {
                if env.reset.is_some() {
                    return Err(EnvParseError("duplicate `reset` clause".into()));
                }
                let rest = rest.strip_prefix("k=").ok_or_else(|| {
                    EnvParseError(format!("reset clause `{clause}` must start with `reset:k=`"))
                })?;
                let (k_str, trig) = rest.split_once('@').ok_or_else(|| {
                    EnvParseError(format!("reset clause `{clause}` is missing its `@trigger`"))
                })?;
                let k: u64 = k_str
                    .parse()
                    .map_err(|_| EnvParseError(format!("reset size `{k_str}` invalid")))?;
                if k == 0 {
                    return Err(EnvParseError("reset size must be at least 1".into()));
                }
                let trigger = if trig == "adaptive" {
                    ResetTrigger::Adaptive { thresh_ppm: DEFAULT_ADAPTIVE_PPM }
                } else if let Some(th) = trig.strip_prefix("adaptive:") {
                    ResetTrigger::Adaptive { thresh_ppm: parse_rate_ppm(th, "adaptive threshold")? }
                } else if let Some(period) = trig.strip_prefix("every:") {
                    let p: u64 = period
                        .parse()
                        .map_err(|_| EnvParseError(format!("reset period `{period}` invalid")))?;
                    if p == 0 {
                        return Err(EnvParseError("reset period must be at least 1".into()));
                    }
                    ResetTrigger::Every(p)
                } else {
                    let t: u64 = trig
                        .parse()
                        .map_err(|_| EnvParseError(format!("reset trigger `{trig}` invalid")))?;
                    ResetTrigger::At(t)
                };
                env.reset = Some(ResetSpec { k, trigger });
            } else {
                return Err(EnvParseError(format!(
                    "unknown clause `{clause}` (expected flip@…, noise:…, or reset:k=…@…)"
                )));
            }
        }
        Ok(env)
    }
}

impl fmt::Display for EnvSchedule {
    /// The canonical fingerprint: clauses in fixed order, round-tripping
    /// through [`FromStr`]. Recorded in run manifests and embedded in
    /// checkpoint batch kinds so cached static-run outcomes can never
    /// splice into a perturbed sweep.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(t) = self.flip_at {
            parts.push(format!("flip@{t}"));
        }
        if let Some(p) = self.flip_every {
            parts.push(format!("flip@every:{p}"));
        }
        if let Some(ppm) = self.noise_ppm {
            parts.push(format!("noise:{}", fmt_ppm(ppm)));
        }
        if let Some(spec) = self.reset {
            let trig = match spec.trigger {
                ResetTrigger::At(t) => format!("{t}"),
                ResetTrigger::Every(p) => format!("every:{p}"),
                ResetTrigger::Adaptive { thresh_ppm } => {
                    format!("adaptive:{}", fmt_ppm(thresh_ppm))
                }
            };
            parts.push(format!("reset:k={}@{trig}", spec.k));
        }
        write!(f, "{}", parts.join(","))
    }
}

impl EnvSchedule {
    /// Returns `true` if no perturbation is scheduled at all.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        *self == EnvSchedule::default()
    }

    /// The canonical schedule string (the [`fmt::Display`] form).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        self.to_string()
    }

    /// Whether a source flip fires at boundary `t`.
    #[must_use]
    pub fn flip_fires(&self, t: u64) -> bool {
        self.flip_at == Some(t) || self.flip_every.is_some_and(|p| t > 0 && t.is_multiple_of(p))
    }

    fn reset_fires(spec: ResetSpec, t: u64, n: u64, z: u64, x: u64) -> bool {
        match spec.trigger {
            ResetTrigger::At(at) => t == at,
            ResetTrigger::Every(p) => t > 0 && t.is_multiple_of(p),
            ResetTrigger::Adaptive { thresh_ppm } => {
                let correct = if z == 1 { x } else { n - x };
                u128::from(correct) * 1_000_000 >= u128::from(thresh_ppm) * u128::from(n)
            }
        }
    }

    /// Applies the boundary-`t` perturbations to an aggregate state
    /// `(z, x)` of an `n`-agent system, in the fixed order
    /// flip → noise → reset, and returns the number of perturbation
    /// events applied.
    ///
    /// The noise law is the exact aggregate of per-agent uniform
    /// redraws: `x` loses `Bin(x − z, η/2)` one-holders and gains
    /// `Bin(n − x − (1 − z), η/2)` converts, so agent-level and
    /// aggregate backends stay distributionally identical. All updates
    /// preserve the legal band `z ≤ x ≤ n − (1 − z)`.
    pub fn apply_aggregate(
        &self,
        t: u64,
        n: u64,
        z: &mut u64,
        x: &mut u64,
        rng: &mut SimRng,
    ) -> u64 {
        let mut events = 0;
        if self.flip_fires(t) {
            let old = *z;
            *z = 1 - old;
            // The source carries its own opinion with it: the count of
            // ones loses the old source bit and gains the new one.
            *x = *x - old + *z;
            events += 1;
        }
        if let Some(ppm) = self.noise_ppm {
            let half = f64::from(ppm) / 2_000_000.0;
            let lose = sample_binomial(rng, *x - *z, half);
            let gain = sample_binomial(rng, n - *x - (1 - *z), half);
            *x = *x - lose + gain;
            events += 1;
        }
        if let Some(spec) = self.reset {
            if Self::reset_fires(spec, t, n, *z, *x) {
                if *z == 1 {
                    *x -= spec.k.min(*x - 1);
                } else {
                    *x += spec.k.min(n - *x - 1);
                }
                events += 1;
            }
        }
        events
    }

    /// Applies the boundary-`t` perturbations to an agent-level state:
    /// the correct opinion and the full opinion vector (agent 0 is the
    /// source). Distributionally identical to [`Self::apply_aggregate`];
    /// the reset picks the lowest-indexed correct holders, which is
    /// law-equivalent because agents are anonymous and exchangeable.
    pub fn apply_agents(
        &self,
        t: u64,
        correct: &mut Opinion,
        opinions: &mut [Opinion],
        rng: &mut SimRng,
    ) -> u64 {
        use rand::Rng;
        let n = opinions.len() as u64;
        let mut events = 0;
        if self.flip_fires(t) {
            *correct = correct.flipped();
            opinions[0] = *correct;
            events += 1;
        }
        if let Some(ppm) = self.noise_ppm {
            let eta = f64::from(ppm) / 1_000_000.0;
            for o in opinions.iter_mut().skip(1) {
                if rng.random::<f64>() < eta {
                    *o = Opinion::from_bool(rng.random::<f64>() < 0.5);
                }
            }
            events += 1;
        }
        if let Some(spec) = self.reset {
            let z = u64::from(correct.as_bit());
            let x = opinions.iter().filter(|o| o.is_one()).count() as u64;
            if Self::reset_fires(spec, t, n, z, x) {
                let wrong = correct.flipped();
                let mut left = spec.k;
                for o in opinions.iter_mut().skip(1) {
                    if left == 0 {
                        break;
                    }
                    if *o == *correct {
                        *o = wrong;
                        left -= 1;
                    }
                }
                events += 1;
            }
        }
        events
    }
}

/// Re-convergence statistics collected by [`run_env`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvRunStats {
    /// Rounds simulated (the fixed horizon).
    pub total_rounds: u64,
    /// Perturbation events applied across the run.
    pub perturbations: u64,
    /// Boundaries `1..=horizon` at which the system held the correct
    /// consensus.
    pub dwell_rounds: u64,
    /// Rounds from each disruptive perturbation back to the correct
    /// consensus (one entry per resolved disruption).
    pub reconverge: Vec<u64>,
    /// `1` if the final disruption was still unresolved at the horizon
    /// (a right-censored re-convergence time), else `0`.
    pub unresolved: u64,
    /// First boundary at which the correct consensus held, if any.
    pub first_consensus: Option<u64>,
}

impl EnvRunStats {
    /// Fraction of boundaries spent at the correct consensus.
    #[must_use]
    pub fn dwell_fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            return 0.0;
        }
        self.dwell_rounds as f64 / self.total_rounds as f64
    }
}

/// Runs `sim` under the schedule for a **fixed horizon** of rounds,
/// tracking consensus dwell and the time to re-converge after each
/// disruptive perturbation.
///
/// A perturbation at boundary `t` is *disruptive* when it leaves the
/// system off the correct consensus and either the system held the
/// consensus before it or the perturbation moved the target (a source
/// flip). Each disruption opens a clock that closes at the next correct
/// consensus boundary; a clock still open at the horizon is counted in
/// [`EnvRunStats::unresolved`] instead of biasing the samples.
pub fn run_env<S: Simulator + ?Sized>(
    sim: &mut S,
    env: &EnvSchedule,
    rng: &mut SimRng,
    horizon: u64,
) -> EnvRunStats {
    let mut stats = EnvRunStats { total_rounds: horizon, ..EnvRunStats::default() };
    let mut outstanding: Option<u64> = None;
    for t in 0..=horizon {
        let at_consensus = sim.configuration().is_correct_consensus();
        if at_consensus {
            if stats.first_consensus.is_none() {
                stats.first_consensus = Some(t);
            }
            if let Some(p) = outstanding.take() {
                stats.reconverge.push(t - p);
            }
            if t > 0 {
                stats.dwell_rounds += 1;
            }
        }
        if t == horizon {
            break;
        }
        let events = sim.perturb(env, t, rng);
        stats.perturbations += events;
        if events > 0 {
            let now = sim.configuration().is_correct_consensus();
            if !now && (at_consensus || env.flip_fires(t)) && outstanding.is_none() {
                outstanding = Some(t);
            }
        }
        sim.step_round(rng);
    }
    stats.unresolved = u64::from(outstanding.is_some());
    stats
}

/// [`run_env`] with observability: batch-adds round/sample counters, the
/// `perturbations_applied` counter, and one `reconverge_rounds` histogram
/// entry per resolved disruption. Instrumentation never touches `rng`, so
/// the stats are identical to the unobserved run for the same seed.
pub fn run_env_observed<S: Simulator + ?Sized>(
    sim: &mut S,
    env: &EnvSchedule,
    rng: &mut SimRng,
    horizon: u64,
    obs: &bitdissem_obs::Obs,
) -> EnvRunStats {
    let stats = run_env(sim, env, rng, horizon);
    if obs.metrics_on() {
        let m = obs.metrics();
        m.add_rounds(stats.total_rounds);
        m.add_samples(stats.total_rounds.saturating_mul(sim.opinion_samples_per_round()));
        m.add_perturbations(stats.perturbations);
        for &r in &stats.reconverge {
            m.record_reconverge(r);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentSim;
    use crate::aggregate::AggregateSim;
    use crate::rng::{replication_seed, rng_from};
    use bitdissem_core::dynamics::Voter;
    use bitdissem_core::Configuration;

    #[test]
    fn grammar_round_trips_through_the_fingerprint() {
        for spec in [
            "flip@500",
            "flip@every:250",
            "noise:0.01",
            "reset:k=100@400",
            "reset:k=7@every:64",
            "reset:k=100@adaptive:0.9",
            "flip@500,noise:0.01,reset:k=3@adaptive:0.75",
        ] {
            let env: EnvSchedule = spec.parse().unwrap();
            assert_eq!(env.fingerprint(), spec, "canonical form must round-trip");
            let again: EnvSchedule = env.fingerprint().parse().unwrap();
            assert_eq!(again, env);
        }
        // `adaptive` without a threshold canonicalizes to the 0.9 default.
        let env: EnvSchedule = "reset:k=100@adaptive".parse().unwrap();
        assert_eq!(env.fingerprint(), "reset:k=100@adaptive:0.9");
    }

    #[test]
    fn malformed_specifications_are_rejected() {
        for bad in [
            "",
            "flip",
            "flip@",
            "flip@-3",
            "flip@every:0",
            "noise:0",
            "noise:1.5",
            "noise:nope",
            "reset:100@5",
            "reset:k=0@5",
            "reset:k=3",
            "reset:k=3@adaptive:0",
            "flip@5,flip@9",
            "noise:0.1,noise:0.2",
            "sandstorm",
        ] {
            assert!(bad.parse::<EnvSchedule>().is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn flip_moves_source_and_count_together() {
        let env: EnvSchedule = "flip@10".parse().unwrap();
        let mut rng = rng_from(1);
        let (mut z, mut x) = (1u64, 40u64);
        assert_eq!(env.apply_aggregate(9, 100, &mut z, &mut x, &mut rng), 0);
        assert_eq!((z, x), (1, 40));
        assert_eq!(env.apply_aggregate(10, 100, &mut z, &mut x, &mut rng), 1);
        assert_eq!((z, x), (0, 39), "the source takes its 1 with it");
        // Flip back up from the boundary of the band.
        let env: EnvSchedule = "flip@0".parse().unwrap();
        let (mut z, mut x) = (0u64, 0u64);
        env.apply_aggregate(0, 100, &mut z, &mut x, &mut rng);
        assert_eq!((z, x), (1, 1));
    }

    #[test]
    fn periodic_flip_fires_on_multiples_only() {
        let env: EnvSchedule = "flip@every:50".parse().unwrap();
        assert!(!env.flip_fires(0));
        assert!(env.flip_fires(50));
        assert!(!env.flip_fires(51));
        assert!(env.flip_fires(100));
    }

    #[test]
    fn noise_preserves_the_legal_band() {
        let env: EnvSchedule = "noise:0.5".parse().unwrap();
        let mut rng = rng_from(7);
        let n = 64u64;
        for z in [0u64, 1] {
            let mut zz = z;
            let mut x = if z == 1 { 1 } else { n - 1 };
            for t in 0..500 {
                env.apply_aggregate(t, n, &mut zz, &mut x, &mut rng);
                assert_eq!(zz, z, "noise never touches the source");
                assert!(x >= z && x <= n - (1 - z), "x = {x} left the band for z = {z}");
            }
        }
    }

    #[test]
    fn reset_moves_correct_holders_to_wrong() {
        let mut rng = rng_from(3);
        // z = 1: correct holders are the ones; k larger than available
        // clamps to leaving only the source.
        let env: EnvSchedule = "reset:k=1000@5".parse().unwrap();
        let (mut z, mut x) = (1u64, 30u64);
        assert_eq!(env.apply_aggregate(5, 100, &mut z, &mut x, &mut rng), 1);
        assert_eq!((z, x), (1, 1));
        // z = 0: correct holders are the zeros; resets convert them to 1.
        let env: EnvSchedule = "reset:k=10@5".parse().unwrap();
        let (mut z, mut x) = (0u64, 80u64);
        env.apply_aggregate(5, 100, &mut z, &mut x, &mut rng);
        assert_eq!((z, x), (0, 90));
    }

    #[test]
    fn adaptive_reset_fires_at_the_threshold_only() {
        let env: EnvSchedule = "reset:k=5@adaptive:0.9".parse().unwrap();
        let mut rng = rng_from(4);
        let n = 100u64;
        // 89 correct < 90: silent.
        let (mut z, mut x) = (1u64, 89u64);
        assert_eq!(env.apply_aggregate(33, n, &mut z, &mut x, &mut rng), 0);
        assert_eq!(x, 89);
        // 90 correct = threshold: fires, knocking 5 holders back.
        let (mut z, mut x) = (1u64, 90u64);
        assert_eq!(env.apply_aggregate(33, n, &mut z, &mut x, &mut rng), 1);
        assert_eq!(x, 85);
        // Works against z = 0 (correct holders are zeros).
        let (mut z, mut x) = (0u64, 10u64);
        assert_eq!(env.apply_aggregate(33, n, &mut z, &mut x, &mut rng), 1);
        assert_eq!(x, 15);
    }

    #[test]
    fn agent_and_aggregate_noise_laws_agree() {
        // Mean drift of the ones-count under heavy noise must match
        // between the agent-level and aggregate applications.
        let n = 200usize;
        let env: EnvSchedule = "noise:0.4".parse().unwrap();
        let reps = 2_000u64;
        let x0 = 150u64;
        let mut agent_total = 0.0;
        let mut agg_total = 0.0;
        for rep in 0..reps {
            let mut rng = rng_from(replication_seed(11, rep));
            let mut correct = Opinion::One;
            let mut opinions = vec![Opinion::Zero; n];
            for o in opinions.iter_mut().take(x0 as usize) {
                *o = Opinion::One;
            }
            env.apply_agents(1, &mut correct, &mut opinions, &mut rng);
            agent_total += opinions.iter().filter(|o| o.is_one()).count() as f64;

            let mut rng = rng_from(replication_seed(12, rep));
            let (mut z, mut x) = (1u64, x0);
            env.apply_aggregate(1, n as u64, &mut z, &mut x, &mut rng);
            agg_total += x as f64;
        }
        let (ma, mg) = (agent_total / reps as f64, agg_total / reps as f64);
        assert!((ma - mg).abs() < 1.5, "agent mean {ma} vs aggregate mean {mg}");
    }

    #[test]
    fn run_env_measures_reconvergence_after_a_flip() {
        // Voter on n = 32 converges fast; flip the source well after
        // convergence and check the clock: one disruptive perturbation,
        // one resolved re-convergence, dwell strictly between 0 and 1.
        let env: EnvSchedule = "flip@200".parse().unwrap();
        let start = Configuration::all_wrong(32, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(9);
        let stats = run_env(&mut sim, &env, &mut rng, 3_000);
        assert_eq!(stats.total_rounds, 3_000);
        assert_eq!(stats.perturbations, 1);
        let first = stats.first_consensus.expect("voter converges well before the flip");
        assert!(first < 200, "first consensus at {first}");
        assert_eq!(stats.reconverge.len(), 1, "{stats:?}");
        assert_eq!(stats.unresolved, 0);
        assert!(stats.reconverge[0] > 0);
        assert!(stats.dwell_fraction() > 0.5 && stats.dwell_fraction() < 1.0);
    }

    #[test]
    fn run_env_matches_between_agent_and_aggregate_smoke() {
        // Same schedule on both backends: dwell fractions agree loosely
        // (the KS-gated conformance section does the real admission).
        let env: EnvSchedule = "flip@every:400".parse().unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let reps = 20u64;
        let dwell = |agentwise: bool| -> f64 {
            let mut total = 0.0;
            for rep in 0..reps {
                let mut rng = rng_from(replication_seed(21, rep));
                total += if agentwise {
                    let mut sim = AgentSim::new(&Voter::new(1).unwrap(), start).unwrap();
                    run_env(&mut sim, &env, &mut rng, 2_000).dwell_fraction()
                } else {
                    let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
                    run_env(&mut sim, &env, &mut rng, 2_000).dwell_fraction()
                };
            }
            total / reps as f64
        };
        let (a, g) = (dwell(true), dwell(false));
        assert!((a - g).abs() < 0.15, "agent dwell {a} vs aggregate dwell {g}");
    }
}
