//! Simulation engine for the self-stabilizing bit-dissemination problem.
//!
//! Two complementary simulators, both exact with respect to the process law
//! of Section 1.1 of the paper:
//!
//! * [`agent::AgentSim`] — the literal model: one entry per agent, `ℓ`
//!   uniform-with-replacement samples per agent per round. `O(nℓ)` per
//!   round; the ground truth.
//! * [`aggregate::AggregateSim`] — exploits anonymity: conditioned on
//!   `X_t = x`, the next state is `z + Bin(x−z, P₁) + Bin(n−x−(1−z), P₀)`,
//!   so a round costs two binomial draws. Distributionally identical to the
//!   agent simulator (ablation A1 verifies this) and fast enough for
//!   `n = 2²⁰` sweeps.
//!
//! Plus the sequential-setting simulator ([`sequential::SequentialSim`]),
//! the Voter *dual process* of coalescing backward random walks used in the
//! Theorem 2 proof ([`dual`]), deterministic seeding ([`rng`]), a built-from-
//! scratch binomial sampler ([`binomial`]), convergence detection ([`run`])
//! and a multi-threaded replication runner ([`runner`]).
//!
//! # Example
//!
//! ```
//! use bitdissem_core::{dynamics::Voter, Configuration, Opinion};
//! use bitdissem_sim::{aggregate::AggregateSim, rng::rng_from, run::{run_to_consensus, Outcome}};
//!
//! let voter = Voter::new(1)?;
//! let start = Configuration::all_wrong(64, Opinion::One);
//! let mut sim = AggregateSim::new(&voter, start)?;
//! let mut rng = rng_from(42);
//! match run_to_consensus(&mut sim, &mut rng, 100_000) {
//!     Outcome::Converged { rounds } => assert!(rounds > 0),
//!     other => panic!("voter should converge: {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod aggregate;
pub mod batched;
pub mod binomial;
pub mod consensus;
pub mod dual;
pub mod env;
pub mod hypergeometric;
pub mod partial;
pub mod rng;
mod roundplan;
pub mod run;
pub mod runner;
pub mod sequential;
pub mod stateful;
pub mod trajectory;
pub mod wide;

pub use agent::AgentSim;
pub use aggregate::AggregateSim;
pub use batched::{
    replicate_batched_env_observed, replicate_batched_observed, BatchedAggregateSim,
};
pub use env::{run_env, run_env_observed, EnvRunStats, EnvSchedule, ResetSpec, ResetTrigger};
pub use rng::{rng_from, SimRng};
pub use run::{
    run_to_consensus, run_to_consensus_env, run_to_consensus_env_observed,
    run_to_consensus_observed, run_with_exit_detection, run_with_exit_detection_observed, Outcome,
    Simulator, StabilityOutcome,
};
pub use runner::{replicate, replicate_indices_observed, replicate_observed, replicate_spawn};
pub use wide::{replicate_wide_env_observed, replicate_wide_observed, WideBatchedSim};
