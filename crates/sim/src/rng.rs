//! Deterministic random-number plumbing.
//!
//! Every experiment takes a single `u64` base seed; per-replication seeds
//! are derived with SplitMix64 so that replication `r` is reproducible in
//! isolation, independent of how work is distributed over threads.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the engine (`rand`'s `SmallRng`: fast,
/// non-cryptographic, seedable).
pub type SimRng = SmallRng;

/// Creates a [`SimRng`] from a `u64` seed.
///
/// # Examples
///
/// ```
/// use bitdissem_sim::rng::rng_from;
/// use rand::Rng;
/// let mut a = rng_from(7);
/// let mut b = rng_from(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[must_use]
pub fn rng_from(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// One step of the SplitMix64 sequence (Steele, Lea & Flood 2014) — used as
/// a seed-derivation hash. Implemented here so the engine does not depend on
/// any distribution crate.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for replication `rep` of an experiment with the given
/// base seed. Distinct `(base, rep)` pairs give (with overwhelming
/// probability) distinct streams.
#[must_use]
pub fn replication_seed(base: u64, rep: u64) -> u64 {
    splitmix64(base ^ splitmix64(rep.wrapping_add(0xA5A5_A5A5_0000_0001)))
}

/// The SplitMix64 increment ("golden gamma").
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The `counter`-th output of the SplitMix64 generator whose state starts
/// at `stream` — a *counter-based* uniform `u64`: a pure function of
/// `(stream, counter)` with no per-draw state to carry.
///
/// This is what makes the wide replication engine deterministic under
/// sharding: a replica's draw for round `t` depends only on its stream
/// (derived from the replication index via [`replication_seed`]) and `t`,
/// never on batch composition, chunk layout, retirement order, or the
/// order draws are issued in.
///
/// # Examples
///
/// ```
/// use bitdissem_sim::rng::{counter_rng, splitmix64};
/// // counter 0 is exactly one splitmix64 step from the stream state.
/// assert_eq!(counter_rng(7, 0), splitmix64(7));
/// ```
#[inline]
#[must_use]
pub fn counter_rng(stream: u64, counter: u64) -> u64 {
    splitmix64(stream.wrapping_add(counter.wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = rng_from(123);
        let mut b = rng_from(123);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from(1);
        let mut b = rng_from(2);
        let same = (0..32).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the public-domain splitmix64 C code with
        // state seeded at 0 and 1.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn replication_seeds_unique_in_practice() {
        let mut seen = HashSet::new();
        for base in 0..8u64 {
            for rep in 0..512u64 {
                assert!(seen.insert(replication_seed(base, rep)), "collision at {base}/{rep}");
            }
        }
    }

    #[test]
    fn replication_seed_depends_on_both_arguments() {
        assert_ne!(replication_seed(1, 2), replication_seed(2, 1));
        assert_ne!(replication_seed(0, 0), replication_seed(0, 1));
    }

    #[test]
    fn counter_rng_equals_iterated_splitmix() {
        // counter_rng(s, c) must equal the (c+1)-th output of the reference
        // splitmix64 generator: state s, advance by the golden gamma, mix.
        for &stream in &[0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut state = stream;
            for counter in 0..64u64 {
                let expected = splitmix64(state);
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                assert_eq!(counter_rng(stream, counter), expected, "stream={stream} c={counter}");
            }
        }
    }

    #[test]
    fn counter_rng_depends_on_both_arguments() {
        assert_ne!(counter_rng(1, 2), counter_rng(2, 1));
        assert_ne!(counter_rng(0, 0), counter_rng(0, 1));
        let mut seen = HashSet::new();
        for stream in 0..16u64 {
            for counter in 0..256u64 {
                assert!(
                    seen.insert(counter_rng(stream, counter)),
                    "collision at {stream}/{counter}"
                );
            }
        }
    }
}
