//! The Voter dual process: coalescing backward random walks.
//!
//! Appendix B of the paper proves the `O(n log n)` Voter upper bound by
//! running `n` random walks *backward in time*: walk `i` starts at agent `i`
//! in round `T` and follows the sampling arrows backwards (`W_t = S_t^{(W_{t+1})}`).
//! All walks that share a position move together (they read the same
//! sample), so walks **coalesce**; the source acts as a sink. If every walk
//! has reached the source within `T` rounds, the forward process is at the
//! correct consensus in round `T` (Eq. 17).
//!
//! [`CoalescingDual`] simulates exactly that backward process; experiment E7
//! compares its absorption time with the forward convergence time of the
//! Voter — both `Θ(n log n)`.

use std::collections::HashMap;

use rand::Rng;

use crate::rng::SimRng;

/// State of the backward coalescing-random-walk process for the Voter with
/// `ℓ = 1` on `n` agents (agent 0 is the source/sink).
#[derive(Debug, Clone)]
pub struct CoalescingDual {
    n: u64,
    /// Occupied positions mapped to the number of walks there.
    positions: HashMap<u64, u64>,
    rounds: u64,
}

impl CoalescingDual {
    /// Creates the dual process with one walk per agent.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        let mut positions = HashMap::with_capacity(usize::try_from(n).expect("n fits usize"));
        for i in 0..n {
            positions.insert(i, 1);
        }
        Self { n, positions, rounds: 0 }
    }

    /// Number of walks already absorbed at the source.
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.positions.get(&0).copied().unwrap_or(0)
    }

    /// Number of distinct occupied positions (including the source).
    #[must_use]
    pub fn distinct_positions(&self) -> usize {
        self.positions.len()
    }

    /// Backward rounds simulated so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Returns `true` once every walk sits at the source.
    #[must_use]
    pub fn all_absorbed(&self) -> bool {
        self.absorbed() == self.n
    }

    /// Advances one backward round: every occupied non-source position `j`
    /// draws the sample `S^{(j)}` (one uniform agent) and all walks at `j`
    /// move there together; walks at the source stay.
    pub fn step(&mut self, rng: &mut SimRng) {
        let mut next: HashMap<u64, u64> = HashMap::with_capacity(self.positions.len());
        for (&pos, &count) in &self.positions {
            let dest = if pos == 0 { 0 } else { rng.random_range(0..self.n) };
            *next.entry(dest).or_insert(0) += count;
        }
        self.positions = next;
        self.rounds += 1;
    }

    /// Runs until absorption or `max_rounds`, returning the absorption time
    /// in backward rounds, or `None` on timeout.
    pub fn run_to_absorption(&mut self, rng: &mut SimRng, max_rounds: u64) -> Option<u64> {
        while !self.all_absorbed() {
            if self.rounds >= max_rounds {
                return None;
            }
            self.step(rng);
        }
        Some(self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;

    #[test]
    fn starts_with_one_walk_per_agent() {
        let dual = CoalescingDual::new(10);
        assert_eq!(dual.distinct_positions(), 10);
        assert_eq!(dual.absorbed(), 1, "the walk starting at the source is absorbed");
        assert!(!dual.all_absorbed());
        assert_eq!(dual.rounds(), 0);
    }

    #[test]
    fn walk_count_is_conserved() {
        let mut dual = CoalescingDual::new(20);
        let mut rng = rng_from(1);
        for _ in 0..50 {
            dual.step(&mut rng);
            let total: u64 = (0..20).map(|i| dual.positions.get(&i).copied().unwrap_or(0)).sum();
            assert_eq!(total, 20);
        }
    }

    #[test]
    fn absorbed_count_is_monotone() {
        let mut dual = CoalescingDual::new(30);
        let mut rng = rng_from(2);
        let mut prev = dual.absorbed();
        for _ in 0..500 {
            dual.step(&mut rng);
            let cur = dual.absorbed();
            assert!(cur >= prev, "source is a sink");
            prev = cur;
        }
    }

    #[test]
    fn eventually_absorbs_everything() {
        let mut dual = CoalescingDual::new(16);
        let mut rng = rng_from(3);
        let t = dual.run_to_absorption(&mut rng, 1_000_000).expect("absorbs");
        assert!(t > 0);
        assert!(dual.all_absorbed());
    }

    #[test]
    fn absorption_time_is_order_n_log_n() {
        // Mean over a few replications should be within a small constant of
        // n·H_{n−1} ≈ n ln n (max of n−1 geometric(1/n) clocks, reduced by
        // coalescence — coalescence only helps).
        let n = 64u64;
        let reps = 40;
        let mut total = 0.0;
        for rep in 0..reps {
            let mut dual = CoalescingDual::new(n);
            let mut rng = rng_from(100 + rep);
            total += dual.run_to_absorption(&mut rng, 1_000_000).expect("absorbs") as f64;
        }
        let mean = total / reps as f64;
        let nlogn = n as f64 * (n as f64).ln();
        assert!(mean > nlogn / 10.0, "mean {mean} suspiciously small");
        assert!(mean < 4.0 * nlogn, "mean {mean} suspiciously large vs {nlogn}");
    }

    #[test]
    fn timeout_returns_none() {
        let mut dual = CoalescingDual::new(64);
        let mut rng = rng_from(5);
        assert_eq!(dual.run_to_absorption(&mut rng, 1), None);
    }
}
