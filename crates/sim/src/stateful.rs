//! Aggregate simulation of constant-memory (stateful) protocols.
//!
//! Agents within the same internal state are exchangeable, so the
//! population is described by one count per state. Conditioned on the
//! displayed fraction `p`, every agent in state `s` independently moves to
//! a next state drawn from the mixed distribution
//! `π_s = Σ_k Bin(k; ℓ, p) · transition(s, k)`, so the per-round update is
//! one multinomial draw per state class — exact, like the binary
//! aggregate simulator.

use bitdissem_core::stateful::StatefulProtocol;
use bitdissem_core::Opinion;
use bitdissem_poly::binomial::binomial_pmf_vec;

use crate::binomial::sample_binomial;
use crate::rng::SimRng;

/// Draws a `Multinomial(n, weights)` sample via sequential conditional
/// binomials.
///
/// # Panics
///
/// Panics if the weights are negative or do not sum to ~1.
#[must_use]
pub fn sample_multinomial(rng: &mut SimRng, n: u64, weights: &[f64]) -> Vec<u64> {
    let total: f64 = weights.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-6 && weights.iter().all(|&w| w >= -1e-12),
        "weights must be a probability vector (sum {total})"
    );
    let mut out = vec![0u64; weights.len()];
    let mut remaining_n = n;
    let mut remaining_w = total;
    for (i, &w) in weights.iter().enumerate() {
        if remaining_n == 0 {
            break;
        }
        if i == weights.len() - 1 {
            out[i] = remaining_n;
            break;
        }
        let p = (w / remaining_w).clamp(0.0, 1.0);
        let k = sample_binomial(rng, remaining_n, p);
        out[i] = k;
        remaining_n -= k;
        remaining_w = (remaining_w - w).max(1e-300);
    }
    out
}

/// Aggregate simulator for a [`StatefulProtocol`] with a source agent.
///
/// The source permanently displays the correct opinion and never updates;
/// non-source agents are tracked as one count per internal state.
#[derive(Debug, Clone)]
pub struct StatefulSim<P> {
    protocol: P,
    n: u64,
    correct: Opinion,
    /// Non-source agent counts per state (sums to `n − 1`).
    counts: Vec<u64>,
}

impl<P: StatefulProtocol> StatefulSim<P> {
    /// Creates a simulator with `ones` displayed ones (source included)
    /// out of `n` agents; non-source agents start in the canonical state
    /// for their opinion.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, or the `(correct, ones)` pair is inconsistent
    /// with the source displaying `correct`.
    #[must_use]
    pub fn new(protocol: P, n: u64, correct: Opinion, ones: u64) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        let z = u64::from(correct.as_bit());
        assert!(ones <= n && ones >= z && (n - ones) >= 1 - z, "inconsistent configuration");
        let mut counts = vec![0u64; protocol.num_states()];
        counts[protocol.state_for_opinion(Opinion::One)] += ones - z;
        counts[protocol.state_for_opinion(Opinion::Zero)] += (n - ones) - (1 - z);
        Self { protocol, n, correct, counts }
    }

    /// Creates a simulator with explicit (adversarial) initial state
    /// counts for the non-source agents.
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to `n − 1` or have the wrong length.
    #[must_use]
    pub fn with_state_counts(protocol: P, n: u64, correct: Opinion, counts: Vec<u64>) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        assert_eq!(counts.len(), protocol.num_states(), "one count per state");
        assert_eq!(counts.iter().sum::<u64>(), n - 1, "counts must cover all non-source agents");
        Self { protocol, n, correct, counts }
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The correct opinion (displayed by the source at all times).
    #[must_use]
    pub fn correct(&self) -> Opinion {
        self.correct
    }

    /// Per-state counts of the non-source agents.
    #[must_use]
    pub fn state_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of agents displaying opinion 1 (source included).
    #[must_use]
    pub fn displayed_ones(&self) -> u64 {
        let z = u64::from(self.correct.as_bit());
        z + self
            .counts
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.protocol.display(s).is_one())
            .map(|(_, &c)| c)
            .sum::<u64>()
    }

    /// Returns `true` if every agent displays the correct opinion.
    #[must_use]
    pub fn is_display_consensus(&self) -> bool {
        let correct_ones = match self.correct {
            Opinion::One => self.n,
            Opinion::Zero => 0,
        };
        self.displayed_ones() == correct_ones
    }

    /// Advances one parallel round.
    pub fn step_round(&mut self, rng: &mut SimRng) {
        let p = self.displayed_ones() as f64 / self.n as f64;
        let ell = self.protocol.sample_size();
        let sample_weights = binomial_pmf_vec(ell as u64, p);
        let num_states = self.protocol.num_states();
        let mut next = vec![0u64; num_states];
        for (s, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // π_s = Σ_k Bin(k; ℓ, p) · transition(s, k).
            let mut pi = vec![0.0; num_states];
            for (k, &w) in sample_weights.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let t = self.protocol.transition(s, k, self.n);
                debug_assert_eq!(t.len(), num_states);
                for (j, &tj) in t.iter().enumerate() {
                    pi[j] += w * tj;
                }
            }
            let draws = sample_multinomial(rng, count, &pi);
            for (j, &d) in draws.iter().enumerate() {
                next[j] += d;
            }
        }
        self.counts = next;
    }

    /// Runs until display consensus on the correct opinion or the round
    /// budget; returns the convergence round on success.
    pub fn run_to_display_consensus(&mut self, rng: &mut SimRng, max_rounds: u64) -> Option<u64> {
        for t in 0..=max_rounds {
            if self.is_display_consensus() {
                return Some(t);
            }
            if t == max_rounds {
                break;
            }
            self.step_round(rng);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::Voter;
    use bitdissem_core::stateful::{usd_states, Memoryless, UndecidedState};

    #[test]
    fn multinomial_conserves_total_and_matches_means() {
        let mut rng = rng_from(1);
        let w = [0.2, 0.5, 0.3];
        let reps = 20_000;
        let n = 30u64;
        let mut sums = [0u64; 3];
        for _ in 0..reps {
            let draw = sample_multinomial(&mut rng, n, &w);
            assert_eq!(draw.iter().sum::<u64>(), n);
            for (s, d) in sums.iter_mut().zip(&draw) {
                *s += d;
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            let mean = s as f64 / reps as f64;
            let expect = n as f64 * w[i];
            assert!((mean - expect).abs() < 0.1, "component {i}: {mean} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "probability vector")]
    fn multinomial_rejects_bad_weights() {
        let mut rng = rng_from(0);
        let _ = sample_multinomial(&mut rng, 5, &[0.5, 0.2]);
    }

    #[test]
    fn memoryless_adapter_matches_binary_engine_mean() {
        // One round of the stateful engine wrapping the Voter must have the
        // same conditional mean as the binary aggregate engine: E[X'] = x ± 1.
        let n = 200u64;
        let x0 = 80u64;
        let reps = 20_000;
        let mut total = 0.0;
        for rep in 0..reps {
            let mut rng = rng_from(crate::rng::replication_seed(5, rep));
            let mut sim =
                StatefulSim::new(Memoryless::new(Voter::new(1).unwrap()), n, Opinion::One, x0);
            sim.step_round(&mut rng);
            total += sim.displayed_ones() as f64;
        }
        let mean = total / reps as f64;
        assert!((mean - x0 as f64).abs() < 1.5, "mean {mean} vs x0 {x0}");
    }

    #[test]
    fn usd_display_consensus_is_absorbing() {
        let n = 50;
        let mut sim = StatefulSim::new(UndecidedState::new(3).unwrap(), n, Opinion::One, n);
        assert!(sim.is_display_consensus());
        let mut rng = rng_from(7);
        for _ in 0..50 {
            sim.step_round(&mut rng);
            assert!(sim.is_display_consensus());
        }
    }

    #[test]
    fn usd_converges_from_near_consensus() {
        let n = 64;
        let mut sim = StatefulSim::new(UndecidedState::new(1).unwrap(), n, Opinion::One, n - 4);
        let mut rng = rng_from(8);
        let t = sim.run_to_display_consensus(&mut rng, 1_000_000).expect("converges");
        assert!(t > 0);
    }

    #[test]
    fn adversarial_state_initialization() {
        let usd = UndecidedState::new(2).unwrap();
        let n = 10;
        // All 9 non-source agents undecided, displaying 0 (z = 1).
        let mut counts = vec![0; 4];
        counts[usd_states::UNDECIDED_ZERO] = 9;
        let sim = StatefulSim::with_state_counts(usd, n, Opinion::One, counts);
        assert_eq!(sim.displayed_ones(), 1);
        assert!(!sim.is_display_consensus());
        assert_eq!(sim.state_counts()[usd_states::UNDECIDED_ZERO], 9);
    }

    #[test]
    #[should_panic(expected = "counts must cover")]
    fn state_counts_must_sum() {
        let usd = UndecidedState::new(1).unwrap();
        let _ = StatefulSim::with_state_counts(usd, 10, Opinion::One, vec![1, 2, 3, 2]);
    }

    #[test]
    fn source_is_always_counted_in_display() {
        let sim = StatefulSim::new(
            Memoryless::new(Voter::new(1).unwrap()),
            10,
            Opinion::One,
            1, // only the source displays 1
        );
        assert_eq!(sim.displayed_ones(), 1);
        assert_eq!(sim.state_counts().iter().sum::<u64>(), 9);
    }
}
