//! The sequential-setting simulator.

use rand::Rng;

use bitdissem_core::{Configuration, GTable, Opinion, Protocol, ProtocolError, ProtocolExt};

use crate::binomial::sample_binomial;
use crate::rng::SimRng;
use crate::run::Simulator;

/// Simulates the **sequential** setting: per activation, one uniformly
/// random non-source agent redraws its opinion; one parallel round equals
/// `n` activations (the normalization used throughout the paper so that the
/// two settings are comparable).
///
/// The simulator tracks only the aggregate count, which is exact: the
/// activated agent holds opinion 1 with probability `(x−z)/(n−1)`, samples
/// `k ~ Bin(ℓ, x/n)` ones, and adopts 1 with probability `g^[own](k)`.
///
/// Reference \[14\] shows no protocol converges in fewer than `Ω(n)` parallel
/// rounds in this setting, regardless of `ℓ` — the exponential gap with the
/// parallel setting is experiment E11.
#[derive(Debug, Clone)]
pub struct SequentialSim {
    table: GTable,
    config: Configuration,
    activations: u64,
}

impl SequentialSim {
    /// Creates a simulator for `protocol` starting from `start`.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    pub fn new<P: Protocol + ?Sized>(
        protocol: &P,
        start: Configuration,
    ) -> Result<Self, ProtocolError> {
        let table = protocol.to_table(start.n())?;
        Ok(Self { table, config: start, activations: 0 })
    }

    /// Total number of single-agent activations performed so far.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Performs a single activation: one random non-source agent updates.
    pub fn step_activation(&mut self, rng: &mut SimRng) {
        let n = self.config.n();
        let x = self.config.ones();
        let z = u64::from(self.config.correct().as_bit());
        self.activations += 1;

        // Which opinion does the activated (non-source) agent hold?
        let ones_nonsource = x - z;
        let own_is_one = rng.random_range(0..n - 1) < ones_nonsource;
        let own = Opinion::from_bool(own_is_one);

        // Sample ℓ opinions with replacement: k ~ Bin(ℓ, x/n).
        let ell = self.table.sample_size() as u64;
        let k = sample_binomial(rng, ell, x as f64 / n as f64) as usize;
        let g = self.table.g(own, k);
        let adopt_one = if g == 1.0 {
            true
        } else if g == 0.0 {
            false
        } else {
            rng.random::<f64>() < g
        };

        let next = match (own_is_one, adopt_one) {
            (false, true) => x + 1,
            (true, false) => x - 1,
            _ => x,
        };
        self.config = self.config.with_ones(next).expect("moves stay in range");
    }
}

impl Simulator for SequentialSim {
    fn configuration(&self) -> Configuration {
        self.config
    }

    /// One parallel round = `n` activations.
    fn step_round(&mut self, rng: &mut SimRng) {
        for _ in 0..self.config.n() {
            self.step_activation(rng);
        }
    }

    /// Each of the `n` activations per round draws `ℓ` opinion samples.
    fn opinion_samples_per_round(&self) -> u64 {
        self.table.sample_size() as u64 * self.config.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use crate::run::{run_to_consensus, Outcome};
    use bitdissem_core::dynamics::{Minority, Voter};
    use bitdissem_markov::SequentialChain;

    #[test]
    fn single_activation_moves_by_at_most_one() {
        let start = Configuration::new(50, Opinion::One, 20).unwrap();
        let mut sim = SequentialSim::new(&Minority::new(3).unwrap(), start).unwrap();
        let mut rng = rng_from(1);
        let mut prev = sim.configuration().ones();
        for _ in 0..2000 {
            sim.step_activation(&mut rng);
            let cur = sim.configuration().ones();
            assert!(cur.abs_diff(prev) <= 1, "birth-death property violated");
            prev = cur;
        }
        assert_eq!(sim.activations(), 2000);
    }

    #[test]
    fn round_is_n_activations() {
        let start = Configuration::new(30, Opinion::Zero, 10).unwrap();
        let mut sim = SequentialSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(2);
        sim.step_round(&mut rng);
        assert_eq!(sim.activations(), 30);
    }

    #[test]
    fn source_constraint_preserved() {
        let start = Configuration::all_wrong(40, Opinion::One);
        let mut sim = SequentialSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(3);
        for _ in 0..5000 {
            sim.step_activation(&mut rng);
            assert!(sim.configuration().ones() >= 1);
        }
    }

    #[test]
    fn sequential_voter_converges() {
        let start = Configuration::all_wrong(16, Opinion::One);
        let mut sim = SequentialSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(4);
        assert!(matches!(run_to_consensus(&mut sim, &mut rng, 500_000), Outcome::Converged { .. }));
    }

    #[test]
    fn mean_convergence_time_matches_exact_birth_death_chain() {
        // Cross-validate the simulator against the exact tridiagonal solve
        // from the markov crate (this is a miniature of experiment E10).
        let n = 12u64;
        let x0 = 6u64;
        let chain = SequentialChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap();
        let exact_rounds = chain.expected_rounds_from(x0).unwrap();

        let reps = 3000;
        let mut total = 0.0;
        for rep in 0..reps {
            let start = Configuration::new(n, Opinion::One, x0).unwrap();
            let mut sim = SequentialSim::new(&Voter::new(1).unwrap(), start).unwrap();
            let mut rng = rng_from(1000 + rep);
            match run_to_consensus(&mut sim, &mut rng, 1_000_000) {
                Outcome::Converged { rounds } => total += rounds as f64,
                Outcome::TimedOut { .. } => panic!("voter must converge"),
            }
        }
        let mean = total / reps as f64;
        // Round-granular measurement adds ±1 round of discretization noise.
        let tol = 0.15 * exact_rounds + 1.5;
        assert!((mean - exact_rounds).abs() < tol, "simulated {mean} vs exact {exact_rounds}");
    }
}
