//! Multi-threaded replication over the persistent worker pool.
//!
//! Experiments run hundreds of independent replications; this module fans
//! them out over the shared [`Pool`] with deterministic per-replication
//! seeds, so the result vector is identical regardless of worker count,
//! pool reuse, or scheduling.
//!
//! Each replication derives its RNG from its **replication index** alone
//! (`replication_seed(base, rep)`), which is the pool's determinism
//! contract: the pool decides *where* a task runs, never *what* it
//! computes. Results are scattered into an index-addressed slot vector, so
//! no slot is written twice and order is restored for free.
//!
//! The pre-pool engine — spawn scoped threads per call, join, repeat — is
//! kept as [`replicate_spawn`] as an executable reference implementation:
//! the equivalence proptest and the `pool_vs_spawn` benchmark compare the
//! two directly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

use bitdissem_obs::Obs;
use bitdissem_pool::Pool;

use crate::rng::{replication_seed, rng_from, SimRng};

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Runs `reps` independent replications of `f`, each with its own
/// deterministically derived RNG, distributing work over the shared worker
/// pool with at most `threads` concurrent participants (defaults to
/// available parallelism). Results are returned **in replication order**,
/// independent of scheduling.
///
/// `f` receives `(rng, replication_index)`.
///
/// # Panics
///
/// Panics if any replication panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// use bitdissem_sim::runner::replicate;
/// use rand::Rng;
///
/// let xs = replicate(8, 42, None, |mut rng, rep| (rep, rng.random::<u32>()));
/// assert_eq!(xs.len(), 8);
/// assert!(xs.iter().enumerate().all(|(i, &(rep, _))| rep == i));
/// ```
pub fn replicate<R, F>(reps: usize, base_seed: u64, threads: Option<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(SimRng, usize) -> R + Sync,
{
    replicate_observed(reps, base_seed, threads, &Obs::none(), f)
}

/// [`replicate`] with an observability handle: counts derived RNG streams,
/// completed replications and pool batch/steal totals, and ticks the
/// attached progress meter once per replication. Trace events for
/// individual replications are the closure's job (it knows the outcome);
/// see `experiments::workload::measure_convergence_observed`.
///
/// # Panics
///
/// Panics if any replication panics (the panic is propagated).
pub fn replicate_observed<R, F>(
    reps: usize,
    base_seed: u64,
    threads: Option<usize>,
    obs: &Obs,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(SimRng, usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..reps).collect();
    replicate_indices_observed(&indices, base_seed, threads, obs, f)
}

/// Runs only the replications named by `indices` (a subset of a conceptual
/// `0..reps` batch) and returns their results **in the order of `indices`**.
///
/// Each replication still derives its RNG from its own index via
/// [`replication_seed`], so running `{0, 1, …, reps-1}` in one batch, or
/// any partition of it across separate calls, produces bit-identical
/// per-replication results. This is what makes sweep checkpointing sound:
/// a resumed run executes only the missing indices and splices the cached
/// results back in.
///
/// # Panics
///
/// Panics if any replication panics (the panic is propagated).
pub fn replicate_indices_observed<R, F>(
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    obs: &Obs,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(SimRng, usize) -> R + Sync,
{
    if indices.is_empty() {
        return Vec::new();
    }
    let tasks = indices.len();
    let cap = threads.unwrap_or_else(default_threads).clamp(1, tasks);
    let _scope = obs.scope("replicate");
    if obs.metrics_on() {
        obs.metrics().add_rng_streams(tasks as u64);
        obs.metrics().add_replications(tasks as u64);
    }

    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..tasks).map(|_| None).collect());
    let stats = Pool::global().run_batch(tasks, cap, &|i| {
        // Per-replication latency span: feeds the p50/p90/p99 histogram
        // under "replication" without touching the task's RNG or result.
        let _span = obs.span("replication");
        let task_start = obs.metrics_on().then(std::time::Instant::now);
        let rep = indices[i];
        let rng = rng_from(replication_seed(base_seed, rep as u64));
        let r = f(rng, rep);
        if let Some(start) = task_start {
            obs.metrics().record_latency(
                bitdissem_obs::LatencyId::Replication,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        {
            let mut slots = slots.lock().expect("replication slots poisoned");
            debug_assert!(slots[i].is_none(), "replication {rep} produced twice");
            slots[i] = Some(r);
        }
        if let Some(progress) = obs.progress() {
            progress.tick(1);
        }
    });
    if obs.metrics_on() {
        obs.metrics().add_pool_batch(stats.tasks, stats.steals);
    }

    slots
        .into_inner()
        .expect("replication slots poisoned")
        .into_iter()
        .map(|r| r.expect("every replication index is filled"))
        .collect()
}

/// The pre-pool replication engine: spawns `threads` scoped threads **per
/// call**, joins them, and scatters `(index, result)` pairs sent over a
/// channel. Kept as the reference implementation the pool is proven
/// equivalent to (see `tests/pool_scheduler.rs`) and as the baseline of the
/// `pool_vs_spawn` benchmark. New code should call [`replicate`].
///
/// # Panics
///
/// Panics if any worker panics (the panic is propagated).
pub fn replicate_spawn<R, F>(reps: usize, base_seed: u64, threads: Option<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(SimRng, usize) -> R + Sync,
{
    if reps == 0 {
        return Vec::new();
    }
    let threads = threads.unwrap_or_else(default_threads).clamp(1, reps);

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let results: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                scope.spawn(|| {
                    let tx = tx;
                    loop {
                        let rep = next.fetch_add(1, Ordering::Relaxed);
                        if rep >= reps {
                            break;
                        }
                        let rng = rng_from(replication_seed(base_seed, rep as u64));
                        let r = f(rng, rep);
                        // The receiver lives until every worker is joined,
                        // so this send cannot fail.
                        tx.send((rep, r)).expect("replication receiver alive");
                    }
                })
            })
            .collect();
        // Drop the original sender so `rx` terminates once workers finish.
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..reps).map(|_| None).collect();
        for (rep, r) in rx {
            debug_assert!(slots[rep].is_none(), "replication {rep} produced twice");
            slots[rep] = Some(r);
        }
        for handle in handles {
            if handle.join().is_err() {
                panic!("worker thread panicked");
            }
        }
        slots
    });

    results.into_iter().map(|r| r.expect("every replication index is filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_obs::Progress;
    use rand::Rng;
    use std::sync::Arc;

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = replicate(0, 1, None, |_, _| 7);
        assert!(none.is_empty());
        let one = replicate(1, 1, Some(4), |_, rep| rep);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn results_in_replication_order() {
        let xs = replicate(100, 9, Some(8), |_, rep| rep * 3);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn results_in_replication_order_across_thread_counts() {
        // Regression test for the slot scatter: results must come back in
        // replication order for every thread count and replication count,
        // including reps % threads != 0 and a task finishing out of order
        // (later reps return faster).
        for &threads in &[1usize, 2, 3, 8] {
            for &reps in &[1usize, 2, 7, 33] {
                let xs = replicate(reps, 5, Some(threads), |_, rep| {
                    if rep == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    rep
                });
                let expect: Vec<usize> = (0..reps).collect();
                assert_eq!(xs, expect, "threads={threads} reps={reps}");
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let run = |threads| replicate(64, 1234, Some(threads), |mut rng, _| rng.random::<u64>());
        let a = run(1);
        let b = run(4);
        let c = run(16);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn pool_matches_spawn_reference() {
        // The pool engine and the scoped-thread reference must agree
        // bit-for-bit for any thread count (the determinism contract).
        let seed = 20_24;
        let spawn = replicate_spawn(48, seed, Some(4), |mut rng, rep| (rep, rng.random::<u64>()));
        for &threads in &[1usize, 2, 5, 16] {
            let pooled =
                replicate(48, seed, Some(threads), |mut rng, rep| (rep, rng.random::<u64>()));
            assert_eq!(pooled, spawn, "threads={threads}");
        }
    }

    #[test]
    fn index_subsets_match_the_full_batch() {
        let obs = Obs::none();
        let full = replicate(20, 77, Some(4), |mut rng, _| rng.random::<u64>());
        let odd: Vec<usize> = (0..20).filter(|i| i % 2 == 1).collect();
        let partial =
            replicate_indices_observed(&odd, 77, Some(3), &obs, |mut rng, _| rng.random::<u64>());
        for (pos, &rep) in odd.iter().enumerate() {
            assert_eq!(partial[pos], full[rep]);
        }
        let empty: Vec<u64> = replicate_indices_observed(&[], 77, None, &obs, |_, _| 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn distinct_replications_get_distinct_streams() {
        let xs = replicate(32, 7, None, |mut rng, _| rng.random::<u64>());
        let unique: std::collections::HashSet<u64> = xs.iter().copied().collect();
        assert_eq!(unique.len(), xs.len());
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate() {
        let _ = replicate(4, 0, Some(2), |_, rep| {
            assert!(rep < 2, "boom");
            rep
        });
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn spawn_reference_panics_propagate() {
        let _ = replicate_spawn(4, 0, Some(2), |_, rep| {
            assert!(rep < 2, "boom");
            rep
        });
    }

    #[test]
    fn observed_counts_streams_and_ticks_progress() {
        let progress = Arc::new(Progress::new("test", 16));
        let obs = Obs::none().with_metrics().with_progress(Arc::clone(&progress));
        let xs = replicate_observed(16, 3, Some(4), &obs, |_, rep| rep);
        assert_eq!(xs.len(), 16);
        assert_eq!(progress.done(), 16);
        let metrics = obs.metrics();
        assert_eq!(metrics.rng_streams.load(std::sync::atomic::Ordering::Relaxed), 16);
        assert_eq!(metrics.replications.load(std::sync::atomic::Ordering::Relaxed), 16);
        assert_eq!(metrics.pool_batches.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(metrics.pool_tasks.load(std::sync::atomic::Ordering::Relaxed), 16);
        assert_eq!(metrics.phases().len(), 1);
        // One latency span per replication.
        let spans = metrics.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "replication");
        assert_eq!(spans[0].1.count(), 16);
    }

    #[test]
    fn observed_matches_unobserved() {
        let plain = replicate(24, 99, Some(3), |mut rng, _| rng.random::<u64>());
        let obs = Obs::none().with_metrics();
        let observed = replicate_observed(24, 99, Some(3), &obs, |mut rng, _| rng.random::<u64>());
        assert_eq!(plain, observed);
    }
}
