//! Multi-threaded replication.
//!
//! Experiments run hundreds of independent replications; this module fans
//! them out over threads with deterministic per-replication seeds, so the
//! result vector is identical regardless of thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::rng::{replication_seed, rng_from, SimRng};

/// Runs `reps` independent replications of `f`, each with its own
/// deterministically derived RNG, distributing work over `threads` threads
/// (defaults to available parallelism). Results are returned **in
/// replication order**, independent of scheduling.
///
/// `f` receives `(rng, replication_index)`.
///
/// # Panics
///
/// Panics if any worker panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// use bitdissem_sim::runner::replicate;
/// use rand::Rng;
///
/// let xs = replicate(8, 42, None, |mut rng, rep| (rep, rng.random::<u32>()));
/// assert_eq!(xs.len(), 8);
/// assert!(xs.iter().enumerate().all(|(i, &(rep, _))| rep == i));
/// ```
pub fn replicate<R, F>(reps: usize, base_seed: u64, threads: Option<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(SimRng, usize) -> R + Sync,
{
    if reps == 0 {
        return Vec::new();
    }
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .clamp(1, reps);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..reps).map(|_| None).collect());

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let rep = next.fetch_add(1, Ordering::Relaxed);
                if rep >= reps {
                    break;
                }
                let rng = rng_from(replication_seed(base_seed, rep as u64));
                let r = f(rng, rep);
                results.lock()[rep] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every replication index is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = replicate(0, 1, None, |_, _| 7);
        assert!(none.is_empty());
        let one = replicate(1, 1, Some(4), |_, rep| rep);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn results_in_replication_order() {
        let xs = replicate(100, 9, Some(8), |_, rep| rep * 3);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let run = |threads| replicate(64, 1234, Some(threads), |mut rng, _| rng.random::<u64>());
        let a = run(1);
        let b = run(4);
        let c = run(16);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn distinct_replications_get_distinct_streams() {
        let xs = replicate(32, 7, None, |mut rng, _| rng.random::<u64>());
        let unique: std::collections::HashSet<u64> = xs.iter().copied().collect();
        assert_eq!(unique.len(), xs.len());
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate() {
        let _ = replicate(4, 0, Some(2), |_, rep| {
            assert!(rep < 2, "boom");
            rep
        });
    }
}
