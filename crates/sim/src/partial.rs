//! Partial-synchrony activation: interpolating the paper's two settings.
//!
//! The paper contrasts the fully parallel setting (all `n − 1` non-source
//! agents update per round; poly-log convergence is possible) with the
//! sequential one (one agent per step; `Ω(n)` parallel rounds are
//! unavoidable). [`PartialSim`] interpolates: each step a uniformly random
//! subset of `m` non-source agents updates *simultaneously*. `m = n − 1`
//! recovers the parallel setting, `m = 1` the sequential one, and the sweep
//! in between (experiment E18) shows how much synchronicity the fast
//! Minority regime actually needs — an empirical companion to the
//! "power of synchronicity" phenomenon of \[15\].
//!
//! Exact aggregate law of one step: the activated subset contains
//! `S₁ ~ Hypergeometric(n−1, x−z, m)` one-holders; each keeps 1 with
//! probability `P₁(x/n)` and each activated zero-holder flips with
//! probability `P₀(x/n)`, so
//! `X' = X − S₁ + Bin(S₁, P₁) + Bin(m − S₁, P₀)`.

use bitdissem_core::{Configuration, GTable, Protocol, ProtocolError, ProtocolExt};

use crate::aggregate::adoption_probs;
use crate::binomial::sample_binomial;
use crate::hypergeometric::sample_hypergeometric;
use crate::rng::SimRng;
use crate::run::Simulator;

/// Aggregate simulator with `m` simultaneous activations per step.
///
/// [`Simulator::step_round`] performs `⌈(n−1)/m⌉` steps so that one call
/// still corresponds to one *parallel round* worth of activations, keeping
/// times comparable across `m` (the paper's normalization).
#[derive(Debug, Clone)]
pub struct PartialSim {
    table: GTable,
    config: Configuration,
    batch: u64,
    steps: u64,
}

impl PartialSim {
    /// Creates a simulator activating `batch` random non-source agents per
    /// step.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or exceeds `n − 1`.
    pub fn new<P: Protocol + ?Sized>(
        protocol: &P,
        start: Configuration,
        batch: u64,
    ) -> Result<Self, ProtocolError> {
        assert!(batch >= 1 && batch < start.n(), "batch must be in [1, n-1]");
        let table = protocol.to_table(start.n())?;
        Ok(Self { table, config: start, batch, steps: 0 })
    }

    /// The batch size `m`.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Total activation steps performed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Performs one step: `m` random non-source agents update
    /// simultaneously.
    pub fn step_batch(&mut self, rng: &mut SimRng) {
        let n = self.config.n();
        let x = self.config.ones();
        let z = u64::from(self.config.correct().as_bit());
        self.steps += 1;

        let nonsource_ones = x - z;
        // How many of the activated agents currently hold 1?
        let activated_ones = sample_hypergeometric(rng, n - 1, nonsource_ones, self.batch);
        let activated_zeros = self.batch - activated_ones;

        let (p0, p1) = adoption_probs(&self.table, x as f64 / n as f64);
        let keep = sample_binomial(rng, activated_ones, p1);
        let flip = sample_binomial(rng, activated_zeros, p0);
        let next = x - activated_ones + keep + flip;
        self.config = self.config.with_ones(next).expect("moves stay in range");
    }
}

impl Simulator for PartialSim {
    fn configuration(&self) -> Configuration {
        self.config
    }

    /// One parallel round = `⌈(n−1)/m⌉` batched steps.
    fn step_round(&mut self, rng: &mut SimRng) {
        let n = self.config.n();
        let steps = (n - 1).div_ceil(self.batch);
        for _ in 0..steps {
            self.step_batch(rng);
        }
    }

    /// Aggregate perturbation on the partial-synchrony state (the state is
    /// the same `(z, x)` pair; only the round dynamics differ).
    fn perturb(&mut self, env: &crate::env::EnvSchedule, t: u64, rng: &mut SimRng) -> u64 {
        let n = self.config.n();
        let mut z = u64::from(self.config.correct().as_bit());
        let mut x = self.config.ones();
        let events = env.apply_aggregate(t, n, &mut z, &mut x, rng);
        if events > 0 {
            let correct = bitdissem_core::Opinion::from_bool(z == 1);
            self.config =
                Configuration::new(n, correct, x).expect("perturbations stay in the legal band");
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSim;
    use crate::rng::{replication_seed, rng_from};
    use crate::run::{run_to_consensus, Outcome};
    use bitdissem_core::dynamics::{Minority, Voter};
    use bitdissem_core::Opinion;
    use bitdissem_markov::AggregateChain;

    #[test]
    fn full_batch_matches_parallel_one_round_mean() {
        // m = n − 1 is exactly the parallel setting: one-round means must
        // match the exact chain.
        let n = 200u64;
        let x0 = 120u64;
        let minority = Minority::new(3).unwrap();
        let chain = AggregateChain::build(&minority, n, Opinion::One).unwrap();
        let exact = chain.expected_next(x0);
        let reps = 20_000u64;
        let start = Configuration::new(n, Opinion::One, x0).unwrap();
        let mut total = 0.0;
        for rep in 0..reps {
            let mut rng = rng_from(replication_seed(1, rep));
            let mut sim = PartialSim::new(&minority, start, n - 1).unwrap();
            sim.step_batch(&mut rng);
            total += sim.configuration().ones() as f64;
        }
        let mean = total / reps as f64;
        assert!((mean - exact).abs() < 0.3, "{mean} vs {exact}");
    }

    #[test]
    fn unit_batch_is_birth_death() {
        let n = 60u64;
        let start = Configuration::new(n, Opinion::One, 30).unwrap();
        let mut sim = PartialSim::new(&Minority::new(3).unwrap(), start, 1).unwrap();
        let mut rng = rng_from(2);
        let mut prev = sim.configuration().ones();
        for _ in 0..2_000 {
            sim.step_batch(&mut rng);
            let cur = sim.configuration().ones();
            assert!(cur.abs_diff(prev) <= 1);
            prev = cur;
        }
    }

    #[test]
    fn round_normalization_counts_steps() {
        let n = 33u64;
        let start = Configuration::new(n, Opinion::One, 10).unwrap();
        let mut sim = PartialSim::new(&Voter::new(1).unwrap(), start, 8).unwrap();
        let mut rng = rng_from(3);
        sim.step_round(&mut rng);
        assert_eq!(sim.steps(), 4); // ceil(32 / 8)
        assert_eq!(sim.batch(), 8);
    }

    #[test]
    fn source_constraint_and_absorption() {
        let n = 50u64;
        let start = Configuration::all_wrong(n, Opinion::One);
        let mut sim = PartialSim::new(&Voter::new(1).unwrap(), start, 7).unwrap();
        let mut rng = rng_from(4);
        for _ in 0..200 {
            sim.step_batch(&mut rng);
            assert!(sim.configuration().ones() >= 1);
        }
        let consensus = Configuration::correct_consensus(n, Opinion::Zero);
        let mut sim = PartialSim::new(&Minority::new(3).unwrap(), consensus, 10).unwrap();
        for _ in 0..50 {
            sim.step_batch(&mut rng);
            assert!(sim.configuration().is_correct_consensus());
        }
    }

    #[test]
    fn voter_converges_at_intermediate_batch() {
        let n = 32u64;
        let start = Configuration::all_wrong(n, Opinion::One);
        let mut sim = PartialSim::new(&Voter::new(1).unwrap(), start, 5).unwrap();
        let mut rng = rng_from(5);
        assert!(matches!(run_to_consensus(&mut sim, &mut rng, 200_000), Outcome::Converged { .. }));
    }

    #[test]
    fn full_batch_convergence_matches_aggregate_engine_scale() {
        // Full-batch PartialSim and AggregateSim are the same process; their
        // median convergence times agree within noise.
        let n = 64u64;
        let start = Configuration::all_wrong(n, Opinion::One);
        let reps = 60u64;
        let med = |partial: bool| -> f64 {
            let mut ts: Vec<f64> = (0..reps)
                .map(|rep| {
                    let mut rng = rng_from(replication_seed(6, rep));
                    let t = if partial {
                        let mut sim =
                            PartialSim::new(&Voter::new(1).unwrap(), start, n - 1).unwrap();
                        run_to_consensus(&mut sim, &mut rng, 1_000_000)
                    } else {
                        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
                        run_to_consensus(&mut sim, &mut rng, 1_000_000)
                    };
                    t.rounds_censored() as f64
                })
                .collect();
            ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ts[ts.len() / 2]
        };
        let a = med(true);
        let b = med(false);
        assert!(a < 3.0 * b + 50.0 && b < 3.0 * a + 50.0, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "batch must be in")]
    fn rejects_oversized_batch() {
        let start = Configuration::all_wrong(10, Opinion::One);
        let _ = PartialSim::new(&Voter::new(1).unwrap(), start, 10);
    }
}
