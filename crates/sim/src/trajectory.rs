//! Trajectory recording with bounded memory.

use serde::{Deserialize, Serialize};

/// Records the value of `X_t` along a run, automatically thinning itself to
/// stay within a sample budget: when full, every other sample is dropped and
/// the recording stride doubles, so arbitrarily long runs keep an evenly
/// spaced summary.
///
/// # Examples
///
/// ```
/// use bitdissem_sim::trajectory::Trajectory;
///
/// let mut t = Trajectory::new(4);
/// for x in 0..100u64 {
///     t.record(x);
/// }
/// let pts: Vec<(u64, u64)> = t.iter().collect();
/// assert!(pts.len() <= 4);
/// assert_eq!(pts[0], (0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trajectory {
    cap: usize,
    stride: u64,
    tick: u64,
    samples: Vec<u64>,
}

impl Trajectory {
    /// Creates a recorder holding at most `cap` samples (`cap ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "need capacity for at least two samples");
        Self { cap, stride: 1, tick: 0, samples: Vec::with_capacity(cap) }
    }

    /// Records the value of the process at the next round. Call exactly once
    /// per round, starting with round 0.
    pub fn record(&mut self, x: u64) {
        if self.tick.is_multiple_of(self.stride) {
            if self.samples.len() == self.cap {
                // Thin: keep every other sample, double the stride.
                let mut kept = Vec::with_capacity(self.cap);
                for (i, &s) in self.samples.iter().enumerate() {
                    if i % 2 == 0 {
                        kept.push(s);
                    }
                }
                self.samples = kept;
                self.stride *= 2;
                if self.tick.is_multiple_of(self.stride) {
                    self.samples.push(x);
                }
            } else {
                self.samples.push(x);
            }
        }
        self.tick += 1;
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of rounds between retained samples.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total number of rounds observed (including thinned-away ones).
    #[must_use]
    pub fn rounds_observed(&self) -> u64 {
        self.tick
    }

    /// Iterates over `(round, x)` pairs of the retained samples.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let stride = self.stride;
        self.samples.iter().enumerate().map(move |(i, &x)| (i as u64 * stride, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_everything_under_capacity() {
        let mut t = Trajectory::new(10);
        for x in 0..5u64 {
            t.record(x * 2);
        }
        let pts: Vec<(u64, u64)> = t.iter().collect();
        assert_eq!(pts, vec![(0, 0), (1, 2), (2, 4), (3, 6), (4, 8)]);
        assert_eq!(t.stride(), 1);
        assert_eq!(t.rounds_observed(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn thinning_keeps_even_spacing_and_first_sample() {
        let mut t = Trajectory::new(8);
        for x in 0..1000u64 {
            t.record(x);
        }
        let pts: Vec<(u64, u64)> = t.iter().collect();
        assert!(pts.len() <= 8);
        // Round index equals recorded value for this input, so spacing is
        // verifiable directly.
        for &(round, x) in &pts {
            assert_eq!(round, x);
        }
        assert_eq!(pts[0], (0, 0));
        // Consecutive retained rounds differ by exactly the stride.
        for w in pts.windows(2) {
            assert_eq!(w[1].0 - w[0].0, t.stride());
        }
    }

    #[test]
    fn stride_grows_geometrically() {
        let mut t = Trajectory::new(4);
        for x in 0..64u64 {
            t.record(x);
        }
        assert!(t.stride() >= 16);
        assert!(t.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn tiny_capacity_rejected() {
        let _ = Trajectory::new(1);
    }
}
