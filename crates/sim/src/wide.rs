//! Wide (counter-rng lane) batched replication of the aggregate chain.
//!
//! [`WideBatchedSim`] is the throughput engine behind `--engine wide`. Like
//! [`BatchedAggregateSim`](crate::batched::BatchedAggregateSim) it advances
//! `B` replications one lock-step round at a time in struct-of-arrays
//! layout, but it replaces the per-replica stateful rng with a
//! **counter-based** stream ([`counter_rng`]): the uniform word behind
//! replica `r`'s round-`t` transition is a pure function of
//! `(stream_r, t)`. Three things follow:
//!
//! 1. **Fused one-word draws.** A round advances a replica from ones-count
//!    `x` by `z + Binomial(keep_n, P₁) + Binomial(flip_n, P₀)`. The wide
//!    engine tabulates that *sum* — the convolution of the two truncated
//!    binomial pmfs — as a single Walker/Vose [`AliasTable`], so the per
//!    replica-round hot path is one SplitMix64 mix plus one alias lookup.
//! 2. **Lane-friendly loops.** The per-round work splits into flat passes
//!    (counter words for all live replicas, then draws, with kernel
//!    evaluations for cache misses batched through the lane-blocked
//!    [`Kernel::eval_slice`]) that the compiler can vectorize; there is no
//!    serial rng dependency between replicas *or* between rounds.
//! 3. **Sharding invariance.** Draws never depend on batch composition,
//!    chunk layout, retirement order, or issue order, so the pooled driver
//!    [`replicate_wide_observed`] is bit-deterministic for every thread
//!    count and chunk size, and forcing the scalar lane fallback
//!    (`BITDISSEM_WIDE_SCALAR=1`) cannot change a single outcome.
//!
//! The price is a different randomness stream than the per-replica /
//! batched reference engines: outcomes are **not** bit-comparable across
//! engines. The wide engine is therefore admitted as its own backend under
//! the conformance KS gates (see DESIGN decision 13) instead of being
//! pinned bit-exact, and its checkpoint batch keys carry a distinct tag so
//! cached outcomes never splice across engines.

use std::sync::{Arc, Mutex};

use bitdissem_core::{Configuration, Kernel};
use bitdissem_obs::{Event, LatencyId, Obs, ReplicationOutcome, Timer};
use bitdissem_pool::Pool;

use crate::binomial::{pmf_window, AliasTable, WideBinomial, MAX_ALIAS_SUPPORT};
use crate::env::{EnvSchedule, ENV_STREAM_SALT};
use crate::rng::{counter_rng, replication_seed, rng_from, splitmix64};
use crate::run::Outcome;

/// Cost ceiling (`w₁ · w₂` multiply-adds) for building one fused
/// convolution table. States whose window product exceeds this fall back
/// to two split [`WideBinomial`] draws; with [`MAX_ALIAS_SUPPORT`]-wide
/// windows the worst admitted build is ~4M flops, paid once per cached
/// state.
const MAX_CONV_OPS: usize = 1 << 22;

/// One state's compiled round transition: everything needed to map a
/// uniform `u64` word to the next ones-count.
#[derive(Debug, Clone)]
enum WideStep {
    /// Deterministic transition (both component laws degenerate — e.g. the
    /// absorbing consensus states). Draw-free.
    Const(u64),
    /// Fused fast path: one alias draw from the convolution
    /// `z + Binomial(keep_n, P₁) + Binomial(flip_n, P₀)`, table offset
    /// already including `z`.
    Fused(AliasTable),
    /// Convolution too expensive to tabulate: the two component laws drawn
    /// separately through the wide per-`(n, p)` dispatch ([`WideBinomial`]),
    /// the second from a SplitMix64-derived companion word.
    Split {
        /// Source contribution to the next ones-count.
        z: u64,
        /// Wide sampler for `Binomial(keep_n, P₁)`.
        keep: WideBinomial,
        /// Wide sampler for `Binomial(flip_n, P₀)`.
        flip: WideBinomial,
    },
}

impl WideStep {
    /// Compiles the transition out of state `x` given the kernel values
    /// `(P₀(x/n), P₁(x/n))`.
    fn build(n: u64, z: u64, x: u64, p0: f64, p1: f64) -> Self {
        // An environment perturbation can hand us the transient states
        // `x < z` (source flipped to 1 while no agent holds 1 yet) or
        // `x + (1 − z) > n`; clamp `x` into the legal band so the component
        // sizes below never wrap `u64` (and the step stays within `[z, n]`).
        let x = x.clamp(z, n - (1 - z));
        let keep_n = x - z;
        let flip_n = n - x - (1 - z);
        let keep_w = pmf_window(keep_n, p1, MAX_ALIAS_SUPPORT);
        let flip_w = pmf_window(flip_n, p0, MAX_ALIAS_SUPPORT);
        match (keep_w, flip_w) {
            (Some((lo1, w1)), Some((lo2, w2))) if w1.len() * w2.len() <= MAX_CONV_OPS => {
                let lo = z + lo1 + lo2;
                if w1.len() == 1 && w2.len() == 1 {
                    WideStep::Const(lo)
                } else {
                    let mut conv = vec![0.0f64; w1.len() + w2.len() - 1];
                    for (i, &a) in w1.iter().enumerate() {
                        for (j, &b) in w2.iter().enumerate() {
                            conv[i + j] += a * b;
                        }
                    }
                    WideStep::Fused(AliasTable::build(lo, &conv))
                }
            }
            _ => WideStep::Split {
                z,
                keep: WideBinomial::build(keep_n, p1),
                flip: WideBinomial::build(flip_n, p0),
            },
        }
    }

    /// Maps one uniform word to the next ones-count.
    #[inline]
    fn apply(&self, word: u64) -> u64 {
        match self {
            WideStep::Const(v) => *v,
            WideStep::Fused(table) => table.draw(word),
            WideStep::Split { z, keep, flip } => {
                // The companion word is one SplitMix64 step away — the same
                // derivation that splits replication streams, so the two
                // component draws are as independent as any two streams.
                z + keep.sample(word) + flip.sample(splitmix64(word))
            }
        }
    }
}

/// Slot count of the direct-mapped step cache (same sizing argument as
/// `RoundPlanCache`: the visited band is `O(√n)` wide, so 512 slots are
/// collision-free for realistic populations; aliasing states rebuild).
const SLOTS: usize = 512;

/// Direct-mapped cache of compiled [`WideStep`]s, indexed by
/// `x & (SLOTS − 1)` and tagged by the full `(x, z)` pair. `n` is fixed per
/// sim, but `z` is **not** — an environment source flip changes it mid-run,
/// and a slot compiled under the old `z` encodes the wrong law for the same
/// `x` (DESIGN decision 15; same staleness class as the `RoundPlanCache`
/// fix).
#[derive(Debug)]
struct WideStepCache {
    slots: Vec<Option<(u64, u64, WideStep)>>,
}

impl WideStepCache {
    fn new() -> Self {
        Self { slots: vec![None; SLOTS] }
    }

    #[inline]
    fn get(&self, x: u64, z: u64) -> Option<&WideStep> {
        match &self.slots[(x as usize) & (SLOTS - 1)] {
            Some((tag_x, tag_z, step)) if *tag_x == x && *tag_z == z => Some(step),
            _ => None,
        }
    }

    fn insert(&mut self, x: u64, z: u64, step: WideStep) {
        self.slots[(x as usize) & (SLOTS - 1)] = Some((x, z, step));
    }
}

/// Reads the scalar-lane override: `BITDISSEM_WIDE_SCALAR` set to anything
/// but `0`/empty forces the one-replica-at-a-time fallback loop (results
/// are bit-identical to the lane-blocked path; pinned by a test).
fn scalar_lanes_forced() -> bool {
    std::env::var("BITDISSEM_WIDE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `B` replicas of the aggregate chain stepped in lock-step on
/// counter-based rng streams. See the module docs for how this differs
/// from [`BatchedAggregateSim`](crate::batched::BatchedAggregateSim).
#[derive(Debug)]
pub struct WideBatchedSim {
    kernel: Arc<Kernel>,
    n: u64,
    /// Source contribution to the count of ones.
    z: u64,
    /// The `ones` value that constitutes the correct consensus.
    target: u64,
    /// Rounds completed so far (shared by all live replicas).
    round: u64,
    /// `true` forces the scalar (one-replica-at-a-time) loop.
    scalar_lanes: bool,
    // Dense live arrays, parallel by position.
    live_ones: Vec<u64>,
    live_stream: Vec<u64>,
    live_rep: Vec<usize>,
    /// Position of each replica in the live arrays (`usize::MAX` once
    /// retired).
    pos_of_rep: Vec<usize>,
    /// Final `ones` per replica, written once at retirement; live replicas
    /// are read through `pos_of_rep` instead so the hot loop stores one
    /// word per replica-round, not two.
    ones_by_rep: Vec<u64>,
    /// First round at which each replica held the correct consensus.
    converged_at: Vec<Option<u64>>,
    /// `false` keeps replicas stepping past the correct consensus (their
    /// first-hit round is still recorded). Required under an environment
    /// schedule that can knock a replica off consensus: consensus is no
    /// longer absorbing, so a retired replica would report a stale state.
    retire_on_consensus: bool,
    steps: WideStepCache,
    // Per-round scratch (kept across rounds to avoid reallocation).
    words: Vec<u64>,
    pending: Vec<(usize, usize)>,
    miss_x: Vec<u64>,
    miss_ps: Vec<f64>,
    miss_eval: Vec<(f64, f64)>,
}

impl WideBatchedSim {
    /// Creates a batch of `streams.len()` replicas, all starting from
    /// `start`, with replica `i` drawing from the counter stream
    /// `streams[i]`. Replicas already at the correct consensus retire
    /// immediately with a convergence round of 0 (consensus is checked
    /// before stepping, like every other engine).
    ///
    /// The scalar-lane fallback is taken from the `BITDISSEM_WIDE_SCALAR`
    /// environment variable; tests that need both paths side by side use
    /// [`WideBatchedSim::with_lane_mode`].
    #[must_use]
    pub fn new(kernel: Arc<Kernel>, start: Configuration, streams: &[u64]) -> Self {
        Self::with_lane_mode(kernel, start, streams, scalar_lanes_forced())
    }

    /// [`WideBatchedSim::new`] with the lane mode pinned explicitly
    /// (`scalar_lanes = true` forces the fallback loop regardless of the
    /// environment).
    #[must_use]
    pub fn with_lane_mode(
        kernel: Arc<Kernel>,
        start: Configuration,
        streams: &[u64],
        scalar_lanes: bool,
    ) -> Self {
        Self::with_mode(kernel, start, streams, scalar_lanes, true)
    }

    /// [`WideBatchedSim::with_lane_mode`] with retirement pinned as well.
    /// `retire_on_consensus = false` keeps every replica live for the
    /// whole run — first consensus hits are recorded in `converged_at`,
    /// but the replicas continue stepping (the conformance harness needs
    /// the true post-consensus marginals when an environment schedule is
    /// active).
    #[must_use]
    pub fn with_mode(
        kernel: Arc<Kernel>,
        start: Configuration,
        streams: &[u64],
        scalar_lanes: bool,
        retire_on_consensus: bool,
    ) -> Self {
        let n = start.n();
        let z = u64::from(start.correct().as_bit());
        let target = if z == 1 { n } else { 0 };
        let b = streams.len();
        let mut sim = Self {
            kernel,
            n,
            z,
            target,
            round: 0,
            scalar_lanes,
            live_ones: Vec::with_capacity(b),
            live_stream: Vec::with_capacity(b),
            live_rep: Vec::with_capacity(b),
            pos_of_rep: vec![usize::MAX; b],
            ones_by_rep: vec![start.ones(); b],
            converged_at: vec![None; b],
            retire_on_consensus,
            steps: WideStepCache::new(),
            words: Vec::new(),
            pending: Vec::new(),
            miss_x: Vec::new(),
            miss_ps: Vec::new(),
            miss_eval: Vec::new(),
        };
        for (rep, &stream) in streams.iter().enumerate() {
            if start.ones() == target {
                sim.converged_at[rep] = Some(0);
                if retire_on_consensus {
                    continue;
                }
            }
            sim.pos_of_rep[rep] = sim.live_ones.len();
            sim.live_ones.push(start.ones());
            sim.live_stream.push(stream);
            sim.live_rep.push(rep);
        }
        sim
    }

    /// Total number of replicas in the batch (live and retired).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.converged_at.len()
    }

    /// Number of replicas still running.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live_ones.len()
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current `ones` count of replica `rep` — its final (consensus) value
    /// once retired.
    #[must_use]
    pub fn ones_of(&self, rep: usize) -> u64 {
        match self.pos_of_rep[rep] {
            usize::MAX => self.ones_by_rep[rep],
            pos => self.live_ones[pos],
        }
    }

    /// First round at which replica `rep` held the correct consensus, or
    /// `None` while it is still running.
    #[must_use]
    pub fn converged_at(&self, rep: usize) -> Option<u64> {
        self.converged_at[rep]
    }

    /// Advances every live replica by one parallel round, then retires the
    /// replicas that reached the correct consensus.
    ///
    /// The word behind replica `r`'s transition out of round `t` is
    /// `counter_rng(stream_r, t)` — independent of every other replica and
    /// of the evaluation order below, which is what licenses the deferred
    /// miss batching.
    pub fn step_round(&mut self) {
        let ctr = self.round;
        self.round += 1;
        if self.scalar_lanes {
            self.step_positions_scalar(ctr);
        } else {
            self.step_positions_wide(ctr);
        }
        // Retire in a separate dense sweep; swap_remove keeps the arrays
        // packed (identical bookkeeping to the batched engine).
        let mut pos = 0;
        while pos < self.live_ones.len() {
            if self.live_ones[pos] == self.target {
                let rep = self.live_rep[pos];
                if self.converged_at[rep].is_none() {
                    self.converged_at[rep] = Some(self.round);
                }
                if self.retire_on_consensus {
                    self.retire(pos);
                    continue;
                }
            }
            pos += 1;
        }
    }

    /// Applies the environment schedule at the current round boundary
    /// (`t = self.round`). Each replica's perturbation randomness comes
    /// from the counter stream `stream ^ ENV_STREAM_SALT` at counter `t` —
    /// independent of the transition words and still a pure function of
    /// `(stream, round)`, so batch composition, sharding, and retirement
    /// order cannot change a trajectory. Returns the number of
    /// perturbation events across the batch.
    ///
    /// Source flips are time-scheduled, so every replica computes the same
    /// new `z`; the shared `z`/`target` pair is committed after the sweep.
    /// The step cache needs no flushing: slots are tagged by `(x, z)`
    /// (DESIGN decision 15).
    pub fn perturb_round(&mut self, env: &EnvSchedule) -> u64 {
        let t = self.round;
        let mut events_total = 0u64;
        let mut new_z = self.z;
        for pos in 0..self.live_ones.len() {
            let mut z = self.z;
            let mut x = self.live_ones[pos];
            let mut rng = rng_from(counter_rng(self.live_stream[pos] ^ ENV_STREAM_SALT, t));
            let events = env.apply_aggregate(t, self.n, &mut z, &mut x, &mut rng);
            if events > 0 {
                self.live_ones[pos] = x;
            }
            events_total += events;
            new_z = z;
        }
        if new_z != self.z {
            self.z = new_z;
            self.target = if self.z == 1 { self.n } else { 0 };
        }
        events_total
    }

    /// Lane-blocked round body: counter words in one flat pass, cached
    /// draws in a second, missed states batch-evaluated through
    /// [`Kernel::eval_slice`] and drawn last.
    fn step_positions_wide(&mut self, ctr: u64) {
        self.words.clear();
        self.words.extend(self.live_stream.iter().map(|&s| counter_rng(s, ctr)));

        self.pending.clear();
        self.miss_x.clear();
        // Split borrows so the hit path compiles to load/draw/store with no
        // bounds checks: the zip pins `words` to `live_ones` lengthwise and
        // the state is updated in place through the iterator.
        let steps = &self.steps;
        let z = self.z;
        let miss_x = &mut self.miss_x;
        let pending = &mut self.pending;
        for (pos, (x, &word)) in self.live_ones.iter_mut().zip(self.words.iter()).enumerate() {
            match steps.get(*x, z) {
                Some(step) => *x = step.apply(word),
                None => {
                    let ux = miss_x.iter().position(|mx| mx == x).unwrap_or_else(|| {
                        miss_x.push(*x);
                        miss_x.len() - 1
                    });
                    pending.push((pos, ux));
                }
            }
        }
        if self.miss_x.is_empty() {
            return;
        }

        self.miss_ps.clear();
        let n = self.n as f64;
        self.miss_ps.extend(self.miss_x.iter().map(|&x| x as f64 / n));
        self.miss_eval.clear();
        self.kernel.eval_slice(&self.miss_ps, &mut self.miss_eval);
        for ux in 0..self.miss_x.len() {
            let x = self.miss_x[ux];
            let (p0, p1) = self.miss_eval[ux];
            let step = WideStep::build(self.n, self.z, x, p0, p1);
            for pi in 0..self.pending.len() {
                let (pos, u) = self.pending[pi];
                if u == ux {
                    let next = step.apply(self.words[pos]);
                    self.commit(pos, next);
                }
            }
            self.steps.insert(x, self.z, step);
        }
    }

    /// Scalar fallback: one replica at a time, misses compiled on the spot
    /// through the element-wise [`Kernel::eval`]. Bit-identical to the
    /// lane-blocked path because draws are pure in `(stream, round)` and
    /// `eval_slice` is bit-identical to `eval`.
    fn step_positions_scalar(&mut self, ctr: u64) {
        for pos in 0..self.live_ones.len() {
            let x = self.live_ones[pos];
            let word = counter_rng(self.live_stream[pos], ctr);
            let next = match self.steps.get(x, self.z) {
                Some(step) => step.apply(word),
                None => {
                    let (p0, p1) = self.kernel.eval(x as f64 / self.n as f64);
                    let step = WideStep::build(self.n, self.z, x, p0, p1);
                    let next = step.apply(word);
                    self.steps.insert(x, self.z, step);
                    next
                }
            };
            self.commit(pos, next);
        }
    }

    #[inline]
    fn commit(&mut self, pos: usize, next: u64) {
        debug_assert!(next <= self.n);
        self.live_ones[pos] = next;
    }

    fn retire(&mut self, pos: usize) {
        self.ones_by_rep[self.live_rep[pos]] = self.live_ones[pos];
        self.pos_of_rep[self.live_rep[pos]] = usize::MAX;
        self.live_ones.swap_remove(pos);
        self.live_stream.swap_remove(pos);
        self.live_rep.swap_remove(pos);
        if pos < self.live_rep.len() {
            self.pos_of_rep[self.live_rep[pos]] = pos;
        }
    }

    /// Per-replica outcomes under a round budget: `Converged` with the
    /// recorded round for retired replicas, `TimedOut { rounds: budget }`
    /// for the rest.
    #[must_use]
    pub fn outcomes(&self, budget: u64) -> Vec<Outcome> {
        self.converged_at
            .iter()
            .map(|c| match *c {
                Some(rounds) => Outcome::Converged { rounds },
                None => Outcome::TimedOut { rounds: budget },
            })
            .collect()
    }

    /// Runs until every replica has converged or `budget` rounds have
    /// elapsed, and returns the per-replica outcomes in batch order.
    pub fn run_to_consensus(&mut self, budget: u64) -> Vec<Outcome> {
        while self.live() > 0 && self.round < budget {
            self.step_round();
        }
        self.outcomes(budget)
    }

    /// [`WideBatchedSim::run_to_consensus`] under an environment schedule:
    /// every boundary `t` is perturbed after the consensus check at `t`
    /// (the retirement sweep of the previous round) and before the step to
    /// `t + 1` — the same convention as the solo
    /// [`run_to_consensus_env`](crate::run::run_to_consensus_env). Like
    /// the unperturbed wide engine, trajectories match the per-replica
    /// engines in law (KS-gated), not bit for bit: both the transition
    /// words and the perturbation draws come from counter streams.
    pub fn run_to_consensus_env(&mut self, budget: u64, env: &EnvSchedule) -> Vec<Outcome> {
        while self.live() > 0 && self.round < budget {
            self.perturb_round(env);
            self.step_round();
        }
        self.outcomes(budget)
    }

    /// [`WideBatchedSim::run_to_consensus`] with observability — identical
    /// event and metric conventions to the batched engine: per-replica
    /// [`Event::RoundCompleted`] events subject to the round stride, one
    /// [`Event::ReplicationFinished`] per replica, and batch-added
    /// round/sample counters (a replica is charged `ℓ·n` samples only for
    /// rounds it actually ran; see `opinion_samples_match_the_reference`).
    ///
    /// # Panics
    ///
    /// Panics if `reps.len() != self.batch_size()`.
    pub fn run_to_consensus_observed(
        &mut self,
        budget: u64,
        obs: &Obs,
        reps: &[u64],
    ) -> Vec<Outcome> {
        self.run_observed_inner(budget, None, obs, reps)
    }

    /// [`WideBatchedSim::run_to_consensus_env`] with the same
    /// observability as [`WideBatchedSim::run_to_consensus_observed`], plus
    /// the batch total of perturbation events folded into the
    /// `perturbations_applied` counter.
    ///
    /// # Panics
    ///
    /// Panics if `reps.len() != self.batch_size()`.
    pub fn run_to_consensus_env_observed(
        &mut self,
        budget: u64,
        env: &EnvSchedule,
        obs: &Obs,
        reps: &[u64],
    ) -> Vec<Outcome> {
        self.run_observed_inner(budget, Some(env), obs, reps)
    }

    fn run_observed_inner(
        &mut self,
        budget: u64,
        env: Option<&EnvSchedule>,
        obs: &Obs,
        reps: &[u64],
    ) -> Vec<Outcome> {
        assert_eq!(reps.len(), self.batch_size(), "one trace label per replica");
        if !obs.active() && !obs.metrics_on() {
            return match env {
                Some(env) => self.run_to_consensus_env(budget, env),
                None => self.run_to_consensus(budget),
            };
        }

        let timer = Timer::start();
        let mut perturbations = 0u64;
        if obs.active() {
            for (rep, &label) in reps.iter().enumerate() {
                if self.converged_at[rep] == Some(0) {
                    obs.emit(&Event::ReplicationFinished {
                        rep: label,
                        outcome: ReplicationOutcome::Converged,
                        rounds: 0,
                        elapsed_us: timer.elapsed_us(),
                    });
                }
            }
        }
        while self.live() > 0 && self.round < budget {
            if let Some(env) = env {
                perturbations += self.perturb_round(env);
            }
            // Sampled 1-in-8: a round is microseconds, so timing every
            // pass would itself cost a few percent (see
            // LATENCY_SAMPLE_EVERY).
            let pass_start = (obs.metrics_on()
                && self.round.is_multiple_of(bitdissem_obs::LATENCY_SAMPLE_EVERY))
            .then(std::time::Instant::now);
            self.step_round();
            if let Some(start) = pass_start {
                obs.metrics().record_latency(
                    LatencyId::RoundPass,
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            if !obs.active() {
                continue;
            }
            // Re-read after the step: a source flip mid-run changes the
            // opinion the round events must carry.
            let source_opinion = self.z as u8;
            let r = self.round;
            if obs.wants_round(r) {
                for pos in 0..self.live_rep.len() {
                    obs.emit(&Event::RoundCompleted {
                        rep: reps[self.live_rep[pos]],
                        round: r,
                        ones: self.live_ones[pos],
                        source_opinion,
                    });
                }
            }
            for (rep, &label) in reps.iter().enumerate() {
                if self.converged_at[rep] == Some(r) {
                    if obs.wants_round(r) {
                        obs.emit(&Event::RoundCompleted {
                            rep: label,
                            round: r,
                            ones: self.ones_by_rep[rep],
                            source_opinion,
                        });
                    }
                    obs.emit(&Event::ReplicationFinished {
                        rep: label,
                        outcome: ReplicationOutcome::Converged,
                        rounds: r,
                        elapsed_us: timer.elapsed_us(),
                    });
                }
            }
        }
        if obs.active() {
            for pos in 0..self.live_rep.len() {
                obs.emit(&Event::ReplicationFinished {
                    rep: reps[self.live_rep[pos]],
                    outcome: ReplicationOutcome::TimedOut,
                    rounds: budget,
                    elapsed_us: timer.elapsed_us(),
                });
            }
        }
        if obs.metrics_on() {
            let samples_per_round = (self.kernel.sample_size() as u64).saturating_mul(self.n);
            let mut rounds_total: u64 = 0;
            let mut samples_total: u64 = 0;
            for c in &self.converged_at {
                // Without retirement every replica runs the full loop, not
                // just up to its first consensus hit.
                let steps = if self.retire_on_consensus { c.unwrap_or(budget) } else { self.round };
                rounds_total += steps;
                samples_total =
                    samples_total.saturating_add(steps.saturating_mul(samples_per_round));
            }
            obs.metrics().add_rounds(rounds_total);
            obs.metrics().add_samples(samples_total);
            let retired = self.converged_at.iter().filter(|c| c.is_some()).count();
            obs.metrics().add_retired(retired as u64);
            if env.is_some() {
                obs.metrics().add_perturbations(perturbations);
            }
        }
        self.outcomes(budget)
    }
}

/// Smallest chunk a pool task will step lock-step: wide batches amortize
/// the step cache and keep the flat passes long, so the floor is higher
/// than the batched engine's.
const MIN_CHUNK: usize = 16;
/// Largest chunk a pool task will step lock-step. Sharding never changes
/// results (counter streams), so this only trades work-stealing
/// granularity against per-batch overhead.
const MAX_CHUNK: usize = 1024;

/// Resolves the shard size for `tasks` replications over `cap` workers:
/// the `BITDISSEM_WIDE_CHUNK` override when set (clamped to the task
/// count), else ~2 chunks per worker within `[MIN_CHUNK, MAX_CHUNK]`.
fn wide_chunk(tasks: usize, cap: usize) -> usize {
    if let Some(c) =
        std::env::var("BITDISSEM_WIDE_CHUNK").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if c >= 1 {
            return c.min(tasks);
        }
    }
    tasks.div_ceil(cap * 2).clamp(MIN_CHUNK, MAX_CHUNK)
}

/// Runs the replications named by `indices` through wide lock-step shards
/// over the worker pool and returns their outcomes **in the order of
/// `indices`**.
///
/// The wide counterpart of
/// [`replicate_batched_observed`](crate::batched::replicate_batched_observed):
/// replica `rep` draws from the counter stream `replication_seed(base_seed,
/// rep)`, so outcomes are bit-deterministic for every thread count, chunk
/// size, and index partition — but on a *different* stream than the
/// per-replica/batched engines (KS-gated equivalence, not bit equality).
///
/// # Panics
///
/// Panics if any shard task panics (the panic is propagated).
#[must_use]
pub fn replicate_wide_observed(
    kernel: &Arc<Kernel>,
    start: Configuration,
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    budget: u64,
    obs: &Obs,
) -> Vec<Outcome> {
    replicate_wide_inner(kernel, start, indices, base_seed, threads, budget, None, obs)
}

/// [`replicate_wide_observed`] under an environment schedule: every shard
/// perturbs and steps through
/// [`WideBatchedSim::run_to_consensus_env_observed`]. Perturbation draws
/// are pure in `(stream, round)` like the transition words, so outcomes
/// remain bit-deterministic across thread counts, chunk sizes, and index
/// partitions.
///
/// # Panics
///
/// Panics if any shard task panics (the panic is propagated).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn replicate_wide_env_observed(
    kernel: &Arc<Kernel>,
    start: Configuration,
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    budget: u64,
    env: &EnvSchedule,
    obs: &Obs,
) -> Vec<Outcome> {
    replicate_wide_inner(kernel, start, indices, base_seed, threads, budget, Some(env), obs)
}

#[allow(clippy::too_many_arguments)]
fn replicate_wide_inner(
    kernel: &Arc<Kernel>,
    start: Configuration,
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    budget: u64,
    env: Option<&EnvSchedule>,
    obs: &Obs,
) -> Vec<Outcome> {
    if indices.is_empty() {
        return Vec::new();
    }
    let tasks = indices.len();
    let cap = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .clamp(1, tasks);
    let chunk = wide_chunk(tasks, cap);

    let _scope = obs.scope("replicate");
    if obs.metrics_on() {
        obs.metrics().add_rng_streams(tasks as u64);
        obs.metrics().add_replications(tasks as u64);
    }

    let slots: Mutex<Vec<Option<Outcome>>> = Mutex::new(vec![None; tasks]);
    let stats = Pool::global().run_chunks(tasks, chunk, cap, &|range| {
        let _span = obs.span("replication_batch");
        let chunk_indices = &indices[range.clone()];
        let streams: Vec<u64> =
            chunk_indices.iter().map(|&rep| replication_seed(base_seed, rep as u64)).collect();
        let labels: Vec<u64> = chunk_indices.iter().map(|&rep| rep as u64).collect();
        let mut batch = WideBatchedSim::new(Arc::clone(kernel), start, &streams);
        let outcomes = match env {
            Some(env) => batch.run_to_consensus_env_observed(budget, env, obs, &labels),
            None => batch.run_to_consensus_observed(budget, obs, &labels),
        };
        {
            let mut slots = slots.lock().expect("wide replication slots poisoned");
            for (offset, outcome) in outcomes.into_iter().enumerate() {
                let slot = &mut slots[range.start + offset];
                debug_assert!(slot.is_none(), "replication produced twice");
                *slot = Some(outcome);
            }
        }
        if let Some(progress) = obs.progress() {
            progress.tick(chunk_indices.len() as u64);
        }
    });
    if obs.metrics_on() {
        obs.metrics().add_pool_batch(stats.tasks, stats.steals);
    }

    slots
        .into_inner()
        .expect("wide replication slots poisoned")
        .into_iter()
        .map(|r| r.expect("every replication index is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Minority, Stay, Voter};
    use bitdissem_core::{Opinion, ProtocolExt};

    fn kernel_of(protocol: &dyn bitdissem_core::Protocol, n: u64) -> Arc<Kernel> {
        Arc::new(protocol.to_table(n).unwrap().compile().unwrap())
    }

    fn streams_for(base: u64, reps: usize) -> Vec<u64> {
        (0..reps).map(|rep| replication_seed(base, rep as u64)).collect()
    }

    #[test]
    fn scalar_lane_mode_is_bit_identical_to_wide() {
        // The env-forced fallback loop must reproduce the lane-blocked
        // path's state exactly, round by round — not just the outcomes.
        let n = 300;
        let minority = Minority::new(5).unwrap();
        let kernel = kernel_of(&minority, n);
        let start = Configuration::new(n, Opinion::One, 90).unwrap();
        let streams = streams_for(11, 24);
        let mut wide = WideBatchedSim::with_lane_mode(Arc::clone(&kernel), start, &streams, false);
        let mut scalar = WideBatchedSim::with_lane_mode(Arc::clone(&kernel), start, &streams, true);
        for _ in 0..2000 {
            if wide.live() == 0 {
                break;
            }
            wide.step_round();
            scalar.step_round();
            for rep in 0..24 {
                assert_eq!(wide.ones_of(rep), scalar.ones_of(rep), "round {}", wide.round());
                assert_eq!(wide.converged_at(rep), scalar.converged_at(rep));
            }
        }
        assert_eq!(wide.outcomes(2000), scalar.outcomes(2000));
    }

    #[test]
    fn source_flip_invalidates_cached_steps() {
        // Regression: the step cache used to tag slots by `x` alone. A
        // mid-run source flip changes `z`, and the law out of state `x`
        // depends on both (`keep_n = x − z`, `flip_n = n − x − (1 − z)`),
        // so a warm slot compiled under the old `z` silently encoded the
        // wrong transition for the same `x`.
        let n = 300u64; // < SLOTS, so slot aliasing cannot mask a stale hit
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let mut warm = WideStepCache::new();
        for x in 1..=n {
            let (p0, p1) = kernel.eval(x as f64 / n as f64);
            warm.insert(x, 1, WideStep::build(n, 1, x, p0, p1));
        }
        // Every z = 0 lookup must miss: the slots carry the old source
        // opinion in their tag.
        for x in 1..n {
            assert!(warm.get(x, 0).is_none(), "stale z=1 slot served for x={x} under z=0");
            assert!(warm.get(x, 1).is_some(), "the z=1 entry for x={x} is still intact");
        }
        // End to end: replaying a z = 0 trajectory against the warm cache
        // and against a cold one, feeding both the same counter-rng words,
        // must agree bit for bit (pre-fix, the warm cache replays the
        // z = 1 law instead).
        let mut cold = WideStepCache::new();
        let stream = replication_seed(17, 0);
        let mut x_warm = 150u64;
        let mut x_cold = 150u64;
        for t in 0..400u64 {
            let word = counter_rng(stream, t);
            let step_in = |cache: &mut WideStepCache, x: u64| -> u64 {
                if cache.get(x, 0).is_none() {
                    let (p0, p1) = kernel.eval(x as f64 / n as f64);
                    cache.insert(x, 0, WideStep::build(n, 0, x, p0, p1));
                }
                cache.get(x, 0).unwrap().apply(word)
            };
            x_warm = step_in(&mut warm, x_warm);
            x_cold = step_in(&mut cold, x_cold);
            assert_eq!(x_warm, x_cold, "trajectories split at round {t}");
        }
    }

    #[test]
    fn build_clamps_transient_out_of_band_states() {
        // A perturbation can momentarily hand the compiler `x < z` (the
        // source flipped to 1 before any agent holds 1) or
        // `x + (1 − z) > n`; the component sizes `x − z` and
        // `n − x − (1 − z)` must not wrap `u64`, and the compiled step must
        // stay inside `[z, n − (1 − z)]`. (A saturating guard would pass
        // the no-wrap half but admit `flip_n = n` for `(z, x) = (1, 0)`,
        // letting the step reach `n + 1`.)
        let n = 64u64;
        for (z, x) in [(1u64, 0u64), (0, 64)] {
            let step = WideStep::build(n, z, x, 0.3, 0.7);
            for t in 0..200u64 {
                let next = step.apply(counter_rng(3, t));
                assert!(
                    next >= z && next <= n - (1 - z),
                    "build({z}, {x}) stepped outside the band: {next}"
                );
            }
        }
    }

    #[test]
    fn batch_composition_cannot_change_a_trajectory() {
        // Counter streams make every replica's path a pure function of its
        // own stream: running it in a batch of 16 and in a batch of 1 must
        // agree bit for bit, despite different retirement and miss-batching
        // patterns.
        let n = 250;
        let minority = Minority::new(3).unwrap();
        let kernel = kernel_of(&minority, n);
        let start = Configuration::new(n, Opinion::One, 70).unwrap();
        let streams = streams_for(5, 16);
        let budget = 200_000;
        let together =
            WideBatchedSim::new(Arc::clone(&kernel), start, &streams).run_to_consensus(budget);
        for (rep, &stream) in streams.iter().enumerate() {
            let alone =
                WideBatchedSim::new(Arc::clone(&kernel), start, &[stream]).run_to_consensus(budget);
            assert_eq!(alone[0], together[rep], "rep {rep}");
        }
    }

    #[test]
    fn env_run_is_pure_per_stream_and_lane_mode() {
        // Perturbation draws are counter-based like the transition words,
        // so under an active schedule a replica's trajectory still cannot
        // depend on batch composition — and the scalar-lane fallback stays
        // bit-identical to the lane-blocked path.
        let n = 250;
        let minority = Minority::new(3).unwrap();
        let kernel = kernel_of(&minority, n);
        let start = Configuration::new(n, Opinion::One, 70).unwrap();
        let env: EnvSchedule = "flip@60,noise:0.02".parse().unwrap();
        let streams = streams_for(13, 16);
        let budget = 30_000;
        let together = WideBatchedSim::new(Arc::clone(&kernel), start, &streams)
            .run_to_consensus_env(budget, &env);
        for (rep, &stream) in streams.iter().enumerate() {
            let alone = WideBatchedSim::new(Arc::clone(&kernel), start, &[stream])
                .run_to_consensus_env(budget, &env);
            assert_eq!(alone[0], together[rep], "rep {rep}");
        }
        let scalar = WideBatchedSim::with_lane_mode(Arc::clone(&kernel), start, &streams, true)
            .run_to_consensus_env(budget, &env);
        assert_eq!(scalar, together);

        // The pooled env driver shards without changing outcomes either.
        let indices: Vec<usize> = (0..16).collect();
        for &threads in &[1usize, 3] {
            let driven = replicate_wide_env_observed(
                &kernel,
                start,
                &indices,
                13,
                Some(threads),
                budget,
                &env,
                &Obs::none(),
            );
            assert_eq!(driven, together, "threads={threads}");
        }
    }

    #[test]
    fn no_retire_mode_keeps_stepping_past_first_consensus() {
        // Conformance contract, wide flavour: with retirement off, first
        // consensus hits are recorded but every replica keeps stepping, so
        // a post-flip checkpoint reads its true, perturbed state.
        let n = 64;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 52).unwrap();
        let env: EnvSchedule = "flip@500".parse().unwrap();
        let streams = streams_for(21, 6);
        let mut batch =
            WideBatchedSim::with_mode(Arc::clone(&kernel), start, &streams, false, false);
        let outcomes = batch.run_to_consensus_env(1000, &env);
        assert_eq!(batch.live(), 6, "nothing retires without retirement");
        assert_eq!(batch.round(), 1000, "the loop runs the whole budget");
        for (rep, outcome) in outcomes.iter().enumerate() {
            let k = outcome.rounds().expect("voter reaches the pre-flip consensus quickly");
            assert!(k < 500, "rep {rep} converged before the flip");
            assert_eq!(batch.converged_at(rep), Some(k), "first hit is kept, not overwritten");
            assert!(batch.ones_of(rep) < n, "rep {rep} was knocked off the old consensus");
        }
    }

    #[test]
    fn driver_is_deterministic_across_thread_counts_and_shards() {
        let n = 250;
        let minority = Minority::new(3).unwrap();
        let kernel = kernel_of(&minority, n);
        let start = Configuration::new(n, Opinion::One, 70).unwrap();
        let base = 99;
        let budget = 200_000;
        let obs = Obs::none();
        let indices: Vec<usize> = (0..40).collect();

        // Reference: one un-sharded sim over all replications.
        let reference = WideBatchedSim::new(Arc::clone(&kernel), start, &streams_for(base, 40))
            .run_to_consensus(budget);
        for &threads in &[1usize, 2, 7] {
            let sharded = replicate_wide_observed(
                &kernel,
                start,
                &indices,
                base,
                Some(threads),
                budget,
                &obs,
            );
            assert_eq!(sharded, reference, "threads={threads}");
        }
        // Sparse index subsets see the same per-replication outcomes (the
        // checkpoint-splicing contract, within the wide engine).
        let sparse: Vec<usize> = (0..40).filter(|i| i % 3 == 0).collect();
        let spliced = replicate_wide_observed(&kernel, start, &sparse, base, Some(2), budget, &obs);
        for (pos, &rep) in sparse.iter().enumerate() {
            assert_eq!(spliced[pos], reference[rep], "sparse rep {rep}");
        }
    }

    #[test]
    fn already_converged_start_retires_everything_at_round_zero() {
        let n = 64;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::correct_consensus(n, Opinion::One);
        let mut batch = WideBatchedSim::new(kernel, start, &streams_for(1, 5));
        assert_eq!(batch.live(), 0);
        assert_eq!(batch.run_to_consensus(100), vec![Outcome::Converged { rounds: 0 }; 5]);
        for rep in 0..5 {
            assert_eq!(batch.converged_at(rep), Some(0));
            assert_eq!(batch.ones_of(rep), n);
        }
    }

    #[test]
    fn stay_times_out_with_the_budget() {
        let n = 32;
        let stay = Stay::new(1);
        let kernel = kernel_of(&stay, n);
        let start = Configuration::all_wrong(n, Opinion::One);
        let mut batch = WideBatchedSim::new(kernel, start, &streams_for(3, 4));
        assert_eq!(batch.run_to_consensus(50), vec![Outcome::TimedOut { rounds: 50 }; 4]);
        assert_eq!(batch.round(), 50);
    }

    #[test]
    fn zero_budget_means_no_steps() {
        let n = 32;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::all_wrong(n, Opinion::One);
        let mut batch = WideBatchedSim::new(kernel, start, &streams_for(3, 3));
        assert_eq!(batch.run_to_consensus(0), vec![Outcome::TimedOut { rounds: 0 }; 3]);
        assert_eq!(batch.round(), 0);
    }

    #[test]
    fn retirement_keeps_survivor_bookkeeping_consistent() {
        let n = 100;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 50).unwrap();
        let reps = 16usize;
        let mut batch = WideBatchedSim::new(Arc::clone(&kernel), start, &streams_for(11, reps));
        let outcomes = batch.run_to_consensus(500_000);
        let distinct: std::collections::HashSet<u64> =
            outcomes.iter().filter_map(Outcome::rounds).collect();
        assert!(distinct.len() > 1, "replicas should converge at different rounds");
        for (rep, outcome) in outcomes.iter().enumerate() {
            if outcome.is_converged() {
                assert_eq!(batch.converged_at(rep), outcome.rounds());
                assert_eq!(batch.ones_of(rep), n, "retired replica holds the consensus");
            }
        }
    }

    #[test]
    fn observed_run_matches_unobserved_and_counts_metrics() {
        // Metrics totals follow the solo-path convention: a replica is
        // charged ℓ·n samples per round it actually ran (satellite audit
        // for the retirement round — retired replicas accrue nothing).
        let n = 80;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 30).unwrap();
        let reps = 6usize;
        let budget = 100_000;

        let plain = WideBatchedSim::new(Arc::clone(&kernel), start, &streams_for(5, reps))
            .run_to_consensus(budget);

        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _).with_metrics();
        let labels: Vec<u64> = (0..reps as u64).collect();
        let observed = WideBatchedSim::new(Arc::clone(&kernel), start, &streams_for(5, reps))
            .run_to_consensus_observed(budget, &obs, &labels);
        assert_eq!(plain, observed);

        let total_rounds: u64 = observed.iter().map(Outcome::rounds_censored).sum();
        let m = obs.metrics();
        assert_eq!(m.rounds_simulated.load(std::sync::atomic::Ordering::Relaxed), total_rounds);
        assert_eq!(
            m.opinion_samples.load(std::sync::atomic::Ordering::Relaxed),
            total_rounds * n,
            "voter draws ℓ = 1 sample per agent per round"
        );

        // One ReplicationFinished per replica, rounds matching the outcome.
        for (rep, outcome) in observed.iter().enumerate() {
            let k = outcome.rounds().expect("voter converges");
            let finishes: Vec<(ReplicationOutcome, u64)> = sink
                .events()
                .iter()
                .filter_map(|e| match *e {
                    Event::ReplicationFinished { rep: r, outcome, rounds, .. }
                        if r == rep as u64 =>
                    {
                        Some((outcome, rounds))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(finishes, vec![(ReplicationOutcome::Converged, k)]);
        }
    }

    #[test]
    fn wide_law_is_close_to_the_reference_engine() {
        // Not bit-comparable (different streams), but the mean convergence
        // time over many replications must agree with the batched engine
        // within a loose band — a cheap smoke check under the conformance
        // KS gate that does the real statistical admission.
        let n = 100;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 50).unwrap();
        let budget = 500_000;
        let reps = 200usize;
        let mean = |outcomes: &[Outcome]| {
            outcomes.iter().map(|o| o.rounds_censored() as f64).sum::<f64>() / reps as f64
        };
        let wide = WideBatchedSim::new(Arc::clone(&kernel), start, &streams_for(17, reps))
            .run_to_consensus(budget);
        let batched = crate::batched::BatchedAggregateSim::new(
            Arc::clone(&kernel),
            start,
            &streams_for(17, reps),
        )
        .run_to_consensus(budget);
        let (mw, mb) = (mean(&wide), mean(&batched));
        assert!(
            (mw - mb).abs() / mb < 0.35,
            "wide mean {mw} vs batched mean {mb} diverge beyond the smoke band"
        );
    }
}
