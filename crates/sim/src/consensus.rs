//! Source-less consensus simulation (plain opinion dynamics).
//!
//! The paper points out that the Minority dynamics "is a suitable protocol
//! for solving more traditional consensus problems (without a source)", and
//! that its chaotic behaviour is interesting in its own right. This module
//! simulates the same update rule with **no source agent**: all `n` agents
//! update, and the process ends at *any* consensus (experiment E12).

use bitdissem_core::{GTable, Opinion, Protocol, ProtocolError, ProtocolExt};

use crate::aggregate::adoption_probs;
use crate::binomial::sample_binomial;
use crate::rng::SimRng;

/// Aggregate simulator of the parallel dynamics without a source.
///
/// State is the number of ones `x ∈ {0, …, n}`; both consensuses (`x = 0`
/// and `x = n`) are absorbing for Proposition-3-compliant rules.
#[derive(Debug, Clone)]
pub struct NoSourceSim {
    table: GTable,
    n: u64,
    ones: u64,
}

impl NoSourceSim {
    /// Creates the simulator with `ones` initial one-holders out of `n`.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `ones > n`.
    pub fn new<P: Protocol + ?Sized>(
        protocol: &P,
        n: u64,
        ones: u64,
    ) -> Result<Self, ProtocolError> {
        assert!(n >= 2, "need at least 2 agents");
        assert!(ones <= n, "ones must not exceed n");
        let table = protocol.to_table(n)?;
        Ok(Self { table, n, ones })
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Current number of one-holders.
    #[must_use]
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// Returns the consensus opinion if the system is at consensus.
    #[must_use]
    pub fn consensus(&self) -> Option<Opinion> {
        if self.ones == 0 {
            Some(Opinion::Zero)
        } else if self.ones == self.n {
            Some(Opinion::One)
        } else {
            None
        }
    }

    /// Advances one parallel round (every agent updates).
    pub fn step_round(&mut self, rng: &mut SimRng) {
        let (p0, p1) = adoption_probs(&self.table, self.ones as f64 / self.n as f64);
        let keep = sample_binomial(rng, self.ones, p1);
        let flip = sample_binomial(rng, self.n - self.ones, p0);
        self.ones = keep + flip;
    }

    /// Runs until any consensus or the round budget, returning
    /// `(rounds, consensus)` on success.
    pub fn run_to_any_consensus(
        &mut self,
        rng: &mut SimRng,
        max_rounds: u64,
    ) -> Option<(u64, Opinion)> {
        for t in 0..=max_rounds {
            if let Some(op) = self.consensus() {
                return Some((t, op));
            }
            if t == max_rounds {
                break;
            }
            self.step_round(rng);
        }
        None
    }

    /// Runs for up to `rounds` rounds, counting the fraction of consecutive
    /// steps on which the majority side of the population flipped — the
    /// period-2 "oscillation" signature of the Minority dynamics near the
    /// balanced configuration. Stops early at consensus. Returns
    /// `(steps_observed, flips)`.
    pub fn measure_oscillation(&mut self, rng: &mut SimRng, rounds: u64) -> (u64, u64) {
        let half = self.n as f64 / 2.0;
        let mut steps = 0;
        let mut flips = 0;
        let mut prev_side = (self.ones as f64) > half;
        for _ in 0..rounds {
            if self.consensus().is_some() {
                break;
            }
            self.step_round(rng);
            let side = (self.ones as f64) > half;
            steps += 1;
            if side != prev_side {
                flips += 1;
            }
            prev_side = side;
        }
        (steps, flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::{Majority, Minority, Voter};

    #[test]
    fn consensus_detection() {
        let s = NoSourceSim::new(&Voter::new(1).unwrap(), 10, 0).unwrap();
        assert_eq!(s.consensus(), Some(Opinion::Zero));
        let s = NoSourceSim::new(&Voter::new(1).unwrap(), 10, 10).unwrap();
        assert_eq!(s.consensus(), Some(Opinion::One));
        let s = NoSourceSim::new(&Voter::new(1).unwrap(), 10, 5).unwrap();
        assert_eq!(s.consensus(), None);
    }

    #[test]
    fn both_consensuses_are_absorbing() {
        let mut rng = rng_from(1);
        for ones in [0u64, 20] {
            let mut s = NoSourceSim::new(&Minority::new(3).unwrap(), 20, ones).unwrap();
            for _ in 0..50 {
                s.step_round(&mut rng);
                assert_eq!(s.ones(), ones);
            }
        }
    }

    #[test]
    fn voter_reaches_some_consensus() {
        let mut s = NoSourceSim::new(&Voter::new(1).unwrap(), 32, 16).unwrap();
        let mut rng = rng_from(2);
        let (t, _op) = s.run_to_any_consensus(&mut rng, 1_000_000).expect("voter absorbs");
        assert!(t > 0);
        assert!(s.consensus().is_some());
    }

    #[test]
    fn majority_converges_fast_from_imbalance() {
        let mut s = NoSourceSim::new(&Majority::new(3).unwrap(), 1000, 700).unwrap();
        let mut rng = rng_from(3);
        let (t, op) = s.run_to_any_consensus(&mut rng, 10_000).expect("majority absorbs");
        assert_eq!(op, Opinion::One, "majority should win");
        assert!(t < 100, "took {t} rounds");
    }

    #[test]
    fn minority_with_large_sample_oscillates_from_balance() {
        // The signature phenomenon: with a large sample, the minority rule
        // flips the majority side almost every round near balance.
        let n = 1024u64;
        let ell = Minority::fast_sample_size(n);
        let mut s = NoSourceSim::new(&Minority::new(ell).unwrap(), n, n / 2 + 5).unwrap();
        let mut rng = rng_from(4);
        let (steps, flips) = s.measure_oscillation(&mut rng, 50);
        assert!(steps > 0);
        assert!(
            flips as f64 >= 0.6 * steps as f64,
            "expected strong oscillation, got {flips}/{steps}"
        );
    }

    #[test]
    fn timeout_returns_none() {
        let mut s = NoSourceSim::new(&Voter::new(1).unwrap(), 1000, 500).unwrap();
        let mut rng = rng_from(5);
        assert!(s.run_to_any_consensus(&mut rng, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "ones must not exceed")]
    fn rejects_bad_ones() {
        let _ = NoSourceSim::new(&Voter::new(1).unwrap(), 5, 6);
    }
}
