//! Binomial sampling built from uniform deviates only.
//!
//! The aggregate simulator draws two `Binomial(n, p)` variates per round, so
//! sampling must be `O(1)`-ish even for `n` in the millions. Per the
//! offline-crate constraint (`rand` only provides uniforms) the samplers are
//! implemented here from scratch:
//!
//! * **Naive** — sum of `n` Bernoulli trials; `O(n)`, used as ground truth
//!   in tests and ablation A2;
//! * **BINV** — sequential inversion (Kachitvichyanukul & Schmeiser 1988);
//!   expected `O(np)` — used when `min(p, 1−p)·n < 10`;
//! * **BTRS** — the transformed-rejection algorithm of Hörmann (1993) with
//!   a squeeze step; `O(1)` expected time for `min(p, 1−p)·n ≥ 10`.
//!
//! [`sample_binomial`] dispatches automatically and handles the `p > 1/2`
//! reflection and the degenerate endpoints.

use std::cell::RefCell;

use rand::Rng;

use bitdissem_poly::binomial::ln_gamma;

use crate::rng::{rng_from, SimRng};

/// Upper bound on the per-thread `ln(i!)` cache (512 KiB of `f64`s). Above
/// it, lookups fall back to a live [`ln_gamma`] call.
const LNFACT_CAP: usize = 1 << 16;

thread_local! {
    /// Per-thread cache of `ln(i!) = ln_gamma(i + 1)` at exact integer
    /// arguments. The BTRS acceptance test spends most of its time in two
    /// `ln_gamma` calls whose arguments are always integers `≤ n + 1`, so a
    /// dense table keyed by the integer replaces the 9-term Lanczos sum
    /// with a load. Each entry is produced by the *same* `ln_gamma` at the
    /// *same* argument, so cached and uncached evaluation are bit-identical
    /// and every accept/reject decision (hence every sampled value) is
    /// unchanged. Thread-local so the fill cost (~30 ns/entry) is paid once
    /// per worker thread, not once per simulator instance.
    static LNFACT: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the `ln(i!)` table grown to cover `0..=min(upto, cap)`.
pub(crate) fn with_lnfact<R>(upto: u64, f: impl FnOnce(&[f64]) -> R) -> R {
    LNFACT.with(|cell| {
        let mut table = cell.borrow_mut();
        let need = ((upto as usize).saturating_add(1)).min(LNFACT_CAP);
        for i in table.len()..need {
            table.push(ln_gamma(i as f64 + 1.0));
        }
        f(&table)
    })
}

/// `ln_gamma(x + 1)` for a non-negative integer-valued float `x`, via the
/// table when `x` is in range (bit-identical — see [`LNFACT`]).
#[inline]
fn ln_fact(table: &[f64], x: f64) -> f64 {
    let i = x as usize;
    if i < table.len() {
        table[i]
    } else {
        ln_gamma(x + 1.0)
    }
}

/// Draws one `Binomial(n, p)` variate, auto-selecting BINV or BTRS.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use bitdissem_sim::{binomial::sample_binomial, rng::rng_from};
/// let mut rng = rng_from(1);
/// let k = sample_binomial(&mut rng, 1000, 0.25);
/// assert!(k <= 1000);
/// ```
#[must_use]
pub fn sample_binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Reflect to q = min(p, 1−p).
    let (q, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
    let k = if (n as f64) * q < 10.0 { binv(rng, n, q) } else { btrs(rng, n, q) };
    if flipped {
        n - k
    } else {
        k
    }
}

/// Naive `O(n)` Bernoulli-sum sampler (ground truth for tests/ablations).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn sample_binomial_naive(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut k = 0;
    for _ in 0..n {
        if rng.random::<f64>() < p {
            k += 1;
        }
    }
    k
}

/// BINV: sequential inversion from `k = 0`. Efficient for small `n·p`.
///
/// Expects `p ≤ 1/2` (callers reflect). Exposed for the A2 ablation.
///
/// When `n·|ln(1−p)| ≳ 745` the starting mass `f = P(X = 0) = q^n`
/// underflows `f64`; the recurrence then restarts in log space and only
/// materializes `f` once it becomes representable. The mass skipped while
/// `f` is subnormal is below the resolution of the uniform deviate, so the
/// returned distribution is unaffected. (The in-regime dispatch from
/// [`sample_binomial`] has `n·p < 10` and never underflows; direct callers
/// with large `n·p` get correct draws at `O(n·p)` cost instead of the
/// silently biased `k = n` the naive recurrence degraded to.)
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
#[must_use]
pub fn binv(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    assert!(p > 0.0 && p < 1.0, "binv requires p in (0,1), got {p}");
    BinvSetup::new(n, p).draw(rng, n)
}

/// The deterministic per-`(n, p)` state of the BINV sampler — everything
/// computed before the first uniform is drawn. Split out so the
/// [`BinomialMemo`] can cache it; [`BinvSetup::draw`] consumes uniforms
/// exactly like the historical monolithic `binv`, so memoized and fresh
/// calls are bit-identical draw-for-draw.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinvSetup {
    /// Odds ratio `p / (1 − p)` driving the upward pmf recurrence.
    s: f64,
    /// `ln P(X = 0) = n·ln(1 − p)`.
    ln_f0: f64,
    /// `P(X = 0)`, or `0.0` when it underflows the normal f64 range.
    f0: f64,
}

/// Floor of the f64 normal range used by the log-space BINV restart (see
/// [`binv`]).
const LN_NORMAL_MIN: f64 = -700.0;

impl BinvSetup {
    fn new(n: u64, p: f64) -> Self {
        let q = 1.0 - p;
        let s = p / q;
        // f = P(X = 0) = q^n, computed in log space to survive large n. For
        // n·ln q below LN_NORMAL_MIN the recurrence is carried additively on
        // ln_f and f is pinned to 0: materializing through a *subnormal* exp
        // would seed the whole recurrence with a few-bit mantissa and bias
        // every subsequent probability. Only once ln_f re-enters the normal
        // range is f materialized (at full precision) and the recurrence
        // switches back to the cheap multiplicative form. The mass skipped
        // while f is pinned at 0 is below 2^-1022 per term — invisible at
        // the 2^-53 resolution of the uniform deviate.
        let ln_f0 = (n as f64) * q.ln();
        let f0 = if ln_f0 >= LN_NORMAL_MIN { ln_f0.exp() } else { 0.0 };
        Self { s, ln_f0, f0 }
    }

    fn draw(&self, rng: &mut SimRng, n: u64) -> u64 {
        let mut f = self.f0;
        let mut ln_f = self.ln_f0;
        let mut u: f64 = rng.random();
        let mut k: u64 = 0;
        // In the (astronomically unlikely) event of accumulated rounding
        // pushing u past the total mass, clamp at n.
        while u > f && k < n {
            u -= f;
            k += 1;
            let ratio = self.s * ((n - k + 1) as f64) / (k as f64);
            if f > 0.0 {
                f *= ratio;
            } else {
                ln_f += ratio.ln();
                if ln_f >= LN_NORMAL_MIN {
                    f = ln_f.exp();
                }
            }
        }
        k
    }
}

/// BTRS: the transformed-rejection sampler of Hörmann (1993). `O(1)`
/// expected time; requires `p ≤ 1/2` and `n·p ≥ 10` (callers dispatch).
///
/// Exposed for the A2 ablation.
///
/// # Panics
///
/// Panics if the preconditions are violated.
#[must_use]
pub fn btrs(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 0.5, "btrs requires p in (0, 1/2], got {p}");
    assert!((n as f64) * p >= 10.0, "btrs requires n*p >= 10");
    with_lnfact(n, |lnfact| BtrsSetup::new(n, p, lnfact).draw(rng, lnfact))
}

/// The deterministic per-`(n, p)` state of the BTRS sampler (Hörmann's
/// constants, including the two setup `ln_gamma` calls). Split out so the
/// [`BinomialMemo`] can cache it; [`BtrsSetup::draw`] consumes uniforms
/// exactly like the historical monolithic `btrs`, so memoized and fresh
/// calls are bit-identical draw-for-draw.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BtrsSetup {
    nf: f64,
    a: f64,
    b: f64,
    c: f64,
    v_r: f64,
    alpha: f64,
    lpq: f64,
    m: f64,
    h: f64,
}

impl BtrsSetup {
    fn new(n: u64, p: f64, lnfact: &[f64]) -> Self {
        let nf = n as f64;
        let q = 1.0 - p;
        let spq = (nf * p * q).sqrt();

        let b = 1.15 + 2.53 * spq;
        let a = -0.0873 + 0.0248 * b + 0.01 * p;
        let c = nf * p + 0.5;
        let v_r = 0.92 - 4.2 / b;

        let alpha = (2.83 + 5.1 / b) * spq;
        let lpq = (p / q).ln();
        let m = ((nf + 1.0) * p).floor(); // mode
        let h = ln_fact(lnfact, m) + ln_fact(lnfact, nf - m);
        Self { nf, a, b, c, v_r, alpha, lpq, m, h }
    }

    fn draw(&self, rng: &mut SimRng, lnfact: &[f64]) -> u64 {
        loop {
            let u: f64 = rng.random::<f64>() - 0.5;
            let v: f64 = rng.random();
            let us = 0.5 - u.abs();
            let kf = ((2.0 * self.a / us + self.b) * u + self.c).floor();
            if kf < 0.0 || kf > self.nf {
                continue;
            }
            // Squeeze step: cheap unconditional acceptance region.
            if us >= 0.07 && v <= self.v_r {
                return kf as u64;
            }
            // Full acceptance test against the transformed density. The two
            // log-factorials come from the per-thread table (bit-identical
            // to live `ln_gamma` calls — see [`LNFACT`]).
            let v2 = v * self.alpha / (self.a / (us * us) + self.b);
            if v2.ln()
                <= self.h - ln_fact(lnfact, kf) - ln_fact(lnfact, self.nf - kf)
                    + (kf - self.m) * self.lpq
            {
                return kf as u64;
            }
        }
    }
}

/// A cached sampler plan for one exact `(n, p)` pair: the reflection
/// decision plus the regime's precomputed setup.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Plan {
    /// Degenerate `(n, p)`: the draw is a constant and consumes no
    /// randomness (mirrors [`sample_binomial`]'s early returns).
    Const(u64),
    Binv {
        flipped: bool,
        setup: BinvSetup,
    },
    Btrs {
        flipped: bool,
        setup: BtrsSetup,
    },
}

impl Plan {
    /// Mirrors the [`sample_binomial`] dispatch, degenerate cases included.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub(crate) fn build(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        if n == 0 || p == 0.0 {
            return Plan::Const(0);
        }
        if p == 1.0 {
            return Plan::Const(n);
        }
        let (q, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
        if (n as f64) * q < 10.0 {
            Plan::Binv { flipped, setup: BinvSetup::new(n, q) }
        } else {
            Plan::Btrs { flipped, setup: with_lnfact(n, |lnfact| BtrsSetup::new(n, q, lnfact)) }
        }
    }

    fn sample(&self, rng: &mut SimRng, n: u64) -> u64 {
        if let Plan::Btrs { .. } = self {
            with_lnfact(n, |lnfact| self.sample_with(rng, n, lnfact))
        } else {
            self.sample_with(rng, n, &[])
        }
    }

    /// Like `sample`, with the `ln(i!)` table supplied by the caller (one
    /// thread-local access can then serve several draws).
    #[inline]
    pub(crate) fn sample_with(&self, rng: &mut SimRng, n: u64, lnfact: &[f64]) -> u64 {
        let (k, flipped) = match self {
            Plan::Const(k) => return *k,
            Plan::Binv { flipped, setup } => (setup.draw(rng, n), *flipped),
            Plan::Btrs { flipped, setup } => (setup.draw(rng, lnfact), *flipped),
        };
        if flipped {
            n - k
        } else {
            k
        }
    }
}

/// Widest truncated support the wide path will materialize as an alias
/// table (8 bytes per slot after power-of-two padding, so ≤ 64 KiB per
/// cached state). A binomial's ±7.5σ window exceeds this only for spreads
/// `σ ≳ 270` (e.g. `n ≥ 10⁶` at moderate `p`), where the wide engine falls
/// back to the scalar BINV/BTRS plan.
pub(crate) const MAX_ALIAS_SUPPORT: usize = 4096;

/// Per-term cutoff of the truncated pmf window, relative to the mode.
/// `1e-12` truncates at ≈ ±7.5σ, leaving ~1e-9 of mass outside the window
/// — far below both the 2⁻³² alias-threshold quantization and anything the
/// conformance KS gates or the DKW tests can resolve.
const PMF_WINDOW_REL_EPS: f64 = 1e-12;

/// The truncated pmf of `Binomial(n, p)`: returns `(lo, weights)` where
/// `weights[i]` is proportional to `P(X = lo + i)`, covering every value
/// whose pmf is at least [`PMF_WINDOW_REL_EPS`] of the mode's. `None` if
/// the window would exceed `max_width` (callers fall back to the scalar
/// plan).
///
/// Built outward from the mode by the pmf ratio recurrence, so every
/// weight lives in `[1e-12, 1]` — there is no `q^n` underflow by
/// construction, for any `n` (the corner the log-space BINV restart
/// guards; see [`binv`]).
pub(crate) fn pmf_window(n: u64, p: f64, max_width: usize) -> Option<(u64, Vec<f64>)> {
    debug_assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p <= 0.0 {
        return Some((0, vec![1.0]));
    }
    if p >= 1.0 {
        return Some((n, vec![1.0]));
    }
    let q = 1.0 - p;
    let m = (((n as f64) + 1.0) * p).floor().min(n as f64) as u64;
    // Below the mode: weights at m−1, m−2, … until the relative cutoff.
    let mut below = Vec::new();
    let mut r = 1.0f64;
    let mut lo = m;
    while lo > 0 {
        r = r * (lo as f64) * q / (((n - lo + 1) as f64) * p);
        // NaN-safe cutoff: a non-finite ratio must stop the walk, never
        // enter the window.
        if r.is_nan() || r < PMF_WINDOW_REL_EPS {
            break;
        }
        below.push(r);
        lo -= 1;
        if below.len() >= max_width {
            return None;
        }
    }
    // Above the mode: weights at m+1, m+2, …
    let mut above = Vec::new();
    let mut r = 1.0f64;
    let mut k = m;
    while k < n {
        r = r * ((n - k) as f64) * p / (((k + 1) as f64) * q);
        if r.is_nan() || r < PMF_WINDOW_REL_EPS {
            break;
        }
        above.push(r);
        k += 1;
        if below.len() + above.len() + 1 > max_width {
            return None;
        }
    }
    let mut weights = Vec::with_capacity(below.len() + 1 + above.len());
    weights.extend(below.iter().rev());
    weights.push(1.0);
    weights.append(&mut above);
    Some((lo, weights))
}

/// Walker/Vose alias table over a contiguous integer support
/// `lo .. lo + width`: draws one value from a **single** uniform `u64`
/// word — the top bits pick a slot, the low 32 bits run the biased coin.
///
/// The slot count is padded to a power of two (padding slots carry zero
/// probability), so slot selection is an exact bit shift. Acceptance
/// thresholds are quantized to `u32`, bounding the total-variation error
/// by `slots · 2⁻³²` — invisible to every statistical gate in the repo.
#[derive(Debug, Clone)]
pub(crate) struct AliasTable {
    /// Smallest support value (slot index 0).
    lo: u64,
    /// `64 − log₂(slots)`: the shift extracting the slot from a word.
    shift: u32,
    /// Packed slots: acceptance threshold in the high 32 bits, alias slot
    /// index in the low 32.
    slots: Box<[u64]>,
}

/// Quantizes an acceptance probability in `[0, 1]` to a `u32` cutoff
/// compared against the low word bits (negative fp residue saturates to
/// 0, values at or above 1 to `u32::MAX`).
fn alias_threshold(w: f64) -> u32 {
    let t = (w * 4_294_967_296.0).round();
    if t >= 4_294_967_295.0 {
        u32::MAX
    } else {
        t as u32
    }
}

impl AliasTable {
    /// Builds the table for (unnormalized, non-negative) `weights` over
    /// `lo .. lo + weights.len()`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two weights are given (degenerate draws are a
    /// caller concern — see [`WideBinomial::Const`]) or if the support
    /// exceeds `u32` slot indexing.
    pub(crate) fn build(lo: u64, weights: &[f64]) -> Self {
        assert!(weights.len() >= 2, "degenerate support belongs to Const");
        let k = weights.len().next_power_of_two();
        assert!(k <= 1 << 31, "alias support too wide for u32 slots");
        let shift = 64 - k.trailing_zeros();
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0 && total.is_finite(), "weights must have positive mass");
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * (k as f64) / total).collect();
        scaled.resize(k, 0.0);

        let mut threshold = vec![u32::MAX; k];
        let mut alias: Vec<u32> = (0..k as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            threshold[s as usize] = alias_threshold(scaled[s as usize]);
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers in either list hold (up to fp residue) exactly one
        // unit of mass: full slots that never divert to an alias.
        for &i in small.iter().chain(large.iter()) {
            threshold[i as usize] = u32::MAX;
            alias[i as usize] = i;
        }

        let slots = threshold
            .into_iter()
            .zip(alias)
            .map(|(t, a)| (u64::from(t) << 32) | u64::from(a))
            .collect();
        Self { lo, shift, slots }
    }

    /// Draws one support value from a uniform `u64` word.
    #[inline]
    pub(crate) fn draw(&self, word: u64) -> u64 {
        let j = (word >> self.shift) as usize;
        let slot = self.slots[j];
        let k = if (word as u32) < (slot >> 32) as u32 { j as u32 } else { slot as u32 };
        self.lo + u64::from(k)
    }
}

/// The wide engine's per-`(n, p)` binomial sampler: one uniform `u64`
/// word in, one variate out — the counter-rng-friendly counterpart of the
/// BINV/BTRS [`Plan`].
///
/// Dispatch: degenerate pairs are constants; supports up to
/// [`MAX_ALIAS_SUPPORT`] wide get a truncated-pmf [`AliasTable`] (this
/// covers both the BINV and the BTRS regime of the scalar dispatch,
/// including huge-`n`/tiny-`p` corners); wider spreads fall back to the
/// scalar plan driven by a temporary rng seeded from the word.
#[derive(Debug, Clone)]
pub(crate) enum WideBinomial {
    /// Degenerate `(n, p)`: the draw is a constant.
    Const(u64),
    /// Truncated-support alias table (the wide fast path).
    Alias(AliasTable),
    /// Spread too wide to tabulate: scalar BINV/BTRS plan behind a
    /// word-seeded temporary rng.
    Scalar {
        /// The scalar sampler plan for this `(n, p)`.
        plan: Plan,
        /// The trial count the plan was built for.
        n: u64,
    },
}

impl WideBinomial {
    /// Builds the sampler for one exact `(n, p)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub(crate) fn build(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        match pmf_window(n, p, MAX_ALIAS_SUPPORT) {
            Some((lo, weights)) if weights.len() == 1 => WideBinomial::Const(lo),
            Some((lo, weights)) => WideBinomial::Alias(AliasTable::build(lo, &weights)),
            None => WideBinomial::Scalar { plan: Plan::build(n, p), n },
        }
    }

    /// Draws one variate from a uniform `u64` word.
    #[inline]
    pub(crate) fn sample(&self, word: u64) -> u64 {
        match self {
            WideBinomial::Const(k) => *k,
            WideBinomial::Alias(table) => table.draw(word),
            WideBinomial::Scalar { plan, n } => {
                let mut rng = rng_from(word);
                with_lnfact(*n, |lnfact| plan.sample_with(&mut rng, *n, lnfact))
            }
        }
    }
}

/// Number of direct-mapped memo slots. The aggregate chain revisits a
/// `O(√n)`-wide band of states (near its drift fixed point, or near
/// absorption), and each state contributes two `(count, p)` setups, so a
/// few hundred slots give a near-perfect hit rate on realistic runs while
/// keeping a memo cheap enough to embed per simulator (~12 KiB).
const MEMO_SLOTS: usize = 256;

/// A small direct-mapped memo for binomial sampler setups, keyed by the
/// exact `(n, p)` pair (bit pattern of `p`).
///
/// The aggregate hot loop repeatedly draws with recurring setups — the
/// state revisits the same `X_t` values near absorption and around drift
/// fixed points, and every revisit re-derived the full BINV/BTRS setup
/// (logs, square roots, two `ln_gamma` calls). The memo caches that
/// deterministic setup; the *draw* path is untouched, so for any seed the
/// sampled values are **bit-identical** to [`sample_binomial`] — a
/// collision merely recomputes.
///
/// # Examples
///
/// ```
/// use bitdissem_sim::binomial::{sample_binomial, BinomialMemo};
/// use bitdissem_sim::rng::rng_from;
///
/// let mut memo = BinomialMemo::new();
/// let mut a = rng_from(7);
/// let mut b = rng_from(7);
/// for _ in 0..100 {
///     assert_eq!(memo.sample(&mut a, 512, 0.37), sample_binomial(&mut b, 512, 0.37));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BinomialMemo {
    slots: Box<[Option<(u64, u64, Plan)>]>,
}

impl Default for BinomialMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl BinomialMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self { slots: vec![None; MEMO_SLOTS].into_boxed_slice() }
    }

    /// Draws one `Binomial(n, p)` variate, reusing the cached setup when
    /// this exact `(n, p)` pair was seen before. Identical draws to
    /// [`sample_binomial`] for the same rng state.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn sample(&mut self, rng: &mut SimRng, n: u64, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        let bits = p.to_bits();
        // Fibonacci hashing over the pair; the slot count is a power of 2.
        let idx =
            ((n ^ bits).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (MEMO_SLOTS - 1);
        let plan = match self.slots[idx] {
            Some((sn, sbits, plan)) if sn == n && sbits == bits => plan,
            _ => {
                let plan = Plan::build(n, p);
                self.slots[idx] = Some((n, bits, plan));
                plan
            }
        };
        plan.sample(rng, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use bitdissem_poly::binomial::{binomial_mean, binomial_pmf_vec, binomial_variance};

    fn empirical_moments(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&k| k as f64).sum::<f64>() / n;
        let var = samples.iter().map(|&k| (k as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    fn check_moments(n: u64, p: f64, reps: usize, seed: u64) {
        let mut rng = rng_from(seed);
        let samples: Vec<u64> = (0..reps).map(|_| sample_binomial(&mut rng, n, p)).collect();
        assert!(samples.iter().all(|&k| k <= n));
        let (mean, var) = empirical_moments(&samples);
        let true_mean = binomial_mean(n, p);
        let true_var = binomial_variance(n, p);
        let se_mean = (true_var / reps as f64).sqrt();
        assert!(
            (mean - true_mean).abs() < 5.0 * se_mean + 1e-9,
            "n={n} p={p}: mean {mean} vs {true_mean} (se {se_mean})"
        );
        assert!(
            (var - true_var).abs() < 0.2 * true_var + 1.0,
            "n={n} p={p}: var {var} vs {true_var}"
        );
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = rng_from(0);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn binv_regime_moments() {
        check_moments(50, 0.05, 20_000, 1); // np = 2.5 -> BINV
        check_moments(8, 0.3, 20_000, 2);
        check_moments(1000, 0.001, 20_000, 3);
    }

    #[test]
    fn btrs_regime_moments() {
        check_moments(1000, 0.3, 20_000, 4); // np = 300 -> BTRS
        check_moments(100, 0.5, 20_000, 5);
        check_moments(1_000_000, 0.25, 5_000, 6);
    }

    #[test]
    fn reflection_regime_moments() {
        check_moments(1000, 0.9, 20_000, 7);
        check_moments(64, 0.99, 20_000, 8);
    }

    #[test]
    fn distribution_matches_exact_pmf_in_total_variation() {
        // Compare empirical frequencies against the exact PMF for a case
        // that exercises BTRS.
        let n = 200u64;
        let p = 0.4;
        let reps = 200_000usize;
        let mut rng = rng_from(99);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..reps {
            counts[sample_binomial(&mut rng, n, p) as usize] += 1;
        }
        let pmf = binomial_pmf_vec(n, p);
        let tv: f64 =
            counts.iter().zip(&pmf).map(|(&c, &q)| (c as f64 / reps as f64 - q).abs()).sum::<f64>()
                / 2.0;
        // With 2e5 samples over ~±4σ ≈ 55 effective bins, TV ≈ O(sqrt(bins/reps)) ≈ 0.01.
        assert!(tv < 0.03, "total variation {tv}");
    }

    #[test]
    fn binv_distribution_matches_exact_pmf() {
        let n = 30u64;
        let p = 0.1;
        let reps = 200_000usize;
        let mut rng = rng_from(100);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..reps {
            counts[sample_binomial(&mut rng, n, p) as usize] += 1;
        }
        let pmf = binomial_pmf_vec(n, p);
        let tv: f64 =
            counts.iter().zip(&pmf).map(|(&c, &q)| (c as f64 / reps as f64 - q).abs()).sum::<f64>()
                / 2.0;
        assert!(tv < 0.02, "total variation {tv}");
    }

    #[test]
    fn extreme_regime_moments() {
        // n = 10⁸, p = 10⁻⁶: n·p = 100 dispatches to BTRS; the huge-n /
        // tiny-p corner that motivated the log-space BINV restart.
        check_moments(100_000_000, 1e-6, 20_000, 20);
        // n = 10⁸, p = 5·10⁻⁸: n·p = 5 dispatches to BINV at extreme n.
        check_moments(100_000_000, 5e-8, 20_000, 21);
    }

    #[test]
    fn binv_survives_q_pow_n_underflow() {
        // Direct BINV call where f₀ = 0.6^5000 = e^-2554 underflows f64.
        // The un-fixed recurrence kept f = 0 forever and returned k = n on
        // every draw; the log-space restart must recover the true moments.
        let n = 5_000u64;
        let p = 0.4;
        let reps = 2_000usize;
        let mut rng = rng_from(22);
        let samples: Vec<u64> = (0..reps).map(|_| binv(&mut rng, n, p)).collect();
        assert!(samples.iter().all(|&k| k < n), "draws collapsed to k = n");
        let (mean, var) = empirical_moments(&samples);
        let true_mean = binomial_mean(n, p);
        let true_var = binomial_variance(n, p);
        let se_mean = (true_var / reps as f64).sqrt();
        assert!((mean - true_mean).abs() < 5.0 * se_mean, "mean {mean} vs {true_mean}");
        assert!((var - true_var).abs() < 0.2 * true_var, "var {var} vs {true_var}");
    }

    #[test]
    fn naive_and_fast_agree_in_distribution() {
        let n = 40u64;
        let p = 0.35;
        let reps = 50_000;
        let mut r1 = rng_from(11);
        let mut r2 = rng_from(12);
        let fast: Vec<u64> = (0..reps).map(|_| sample_binomial(&mut r1, n, p)).collect();
        let naive: Vec<u64> = (0..reps).map(|_| sample_binomial_naive(&mut r2, n, p)).collect();
        let (mf, vf) = empirical_moments(&fast);
        let (mn, vn) = empirical_moments(&naive);
        assert!((mf - mn).abs() < 0.15, "{mf} vs {mn}");
        assert!((vf - vn).abs() < 1.0, "{vf} vs {vn}");
    }

    #[test]
    fn samples_are_deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut rng = rng_from(5);
            (0..50).map(|_| sample_binomial(&mut rng, 500, 0.3)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = rng_from(5);
            (0..50).map(|_| sample_binomial(&mut rng, 500, 0.3)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn rejects_invalid_p() {
        let mut rng = rng_from(0);
        let _ = sample_binomial(&mut rng, 10, 1.5);
    }

    #[test]
    fn memo_is_bit_identical_to_plain_sampler() {
        // Identical rng streams through memoized and fresh paths, across
        // every regime: degenerate, BINV, BTRS, and the p > 1/2 reflection.
        // Interleave (n, p) pairs so the memo both hits and misses.
        let cases: Vec<(u64, f64)> = vec![
            (0, 0.5),
            (100, 0.0),
            (100, 1.0),
            (512, 0.003), // BINV
            (512, 0.37),  // BTRS
            (512, 0.82),  // reflected BTRS
            (512, 0.999), // reflected BINV
            (7, 0.4),     // BINV small n
        ];
        let mut memo = BinomialMemo::new();
        let mut a = rng_from(42);
        let mut b = rng_from(42);
        for round in 0..200 {
            let (n, p) = cases[round % cases.len()];
            assert_eq!(
                memo.sample(&mut a, n, p),
                sample_binomial(&mut b, n, p),
                "round {round}: n={n} p={p}"
            );
        }
    }

    #[test]
    fn memo_collisions_are_correct() {
        // More distinct (n, p) pairs than slots: every lookup that evicts
        // or misses must still draw the exact sample_binomial value.
        let mut memo = BinomialMemo::new();
        let mut a = rng_from(7);
        let mut b = rng_from(7);
        for i in 0..2000u64 {
            let n = 200 + (i % 700);
            let p = 0.05 + 0.9 * ((i % 101) as f64 / 101.0);
            assert_eq!(memo.sample(&mut a, n, p), sample_binomial(&mut b, n, p), "i={i}");
        }
    }

    #[test]
    fn memo_moments_in_every_regime() {
        let mut memo = BinomialMemo::new();
        for (n, p, seed) in [(50u64, 0.05, 31u64), (1000, 0.3, 32), (1000, 0.9, 33)] {
            let mut rng = rng_from(seed);
            let reps = 20_000;
            let samples: Vec<u64> = (0..reps).map(|_| memo.sample(&mut rng, n, p)).collect();
            let (mean, _) = empirical_moments(&samples);
            let true_mean = binomial_mean(n, p);
            let se = (binomial_variance(n, p) / reps as f64).sqrt();
            assert!((mean - true_mean).abs() < 5.0 * se + 1e-9, "n={n} p={p}: {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "n*p >= 10")]
    fn btrs_guards_preconditions() {
        let mut rng = rng_from(0);
        let _ = btrs(&mut rng, 10, 0.1);
    }

    // ---- Wide-path (one-word) sampler: DKW quantile-level coverage ----

    use crate::rng::counter_rng;

    /// `P(X ≤ k)` for `k ∈ lo..=hi`, computed independently of the wide
    /// path's ratio recurrence: each pmf term is a direct log-space
    /// `ln_gamma` evaluation. Callers choose `lo` far enough below the
    /// mean (≥ 10σ) that the missing lower tail is negligible.
    fn exact_cdf_window(n: u64, p: f64, lo: u64, hi: u64) -> Vec<f64> {
        let lnp = p.ln();
        let lnq = (-p).ln_1p();
        let nf = n as f64;
        let ln_pmf = |k: u64| {
            let kf = k as f64;
            ln_gamma(nf + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0)
                + kf * lnp
                + (nf - kf) * lnq
        };
        let mut acc = 0.0f64;
        (lo..=hi)
            .map(|k| {
                acc += ln_pmf(k).exp();
                acc
            })
            .collect()
    }

    /// DKW band check for the wide sampler: with `N` draws the empirical
    /// CDF stays within `sqrt(ln(2/α)/(2N))` of the exact CDF everywhere,
    /// simultaneously over all quantile levels (α = 1e-9), plus a 1e-6
    /// allowance for the window truncation and threshold quantization.
    fn dkw_check_wide(n: u64, p: f64, draws: usize, seed: u64) {
        let sampler = WideBinomial::build(n, p);
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for i in 0..draws {
            let k = sampler.sample(counter_rng(seed, i as u64));
            assert!(k <= n, "n={n} p={p}: draw {k} out of range");
            *counts.entry(k).or_insert(0) += 1;
        }
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let lo = (mean - 12.0 * sd).floor().max(0.0) as u64;
        let hi = (((mean + 12.0 * sd).ceil()) as u64).min(n);
        for &k in counts.keys() {
            assert!((lo..=hi).contains(&k), "n={n} p={p}: draw {k} outside ±12σ");
        }
        let cdf = exact_cdf_window(n, p, lo, hi);
        let mut emp = 0u64;
        let mut sup = 0.0f64;
        for (idx, k) in (lo..=hi).enumerate() {
            emp += counts.get(&k).copied().unwrap_or(0);
            sup = sup.max((emp as f64 / draws as f64 - cdf[idx]).abs());
        }
        let eps = ((2.0f64 / 1e-9).ln() / (2.0 * draws as f64)).sqrt();
        assert!(sup <= eps + 1e-6, "n={n} p={p}: sup|F̂−F| = {sup} > DKW band {eps}");
    }

    #[test]
    fn wide_sampler_dkw_binv_regime() {
        // n·p < 10: the scalar dispatch would pick BINV; the wide path
        // tabulates the same law.
        dkw_check_wide(50, 0.05, 20_000, 101);
        dkw_check_wide(1000, 0.001, 20_000, 102);
    }

    #[test]
    fn wide_sampler_dkw_btrs_regime() {
        dkw_check_wide(1000, 0.3, 20_000, 103);
        dkw_check_wide(100, 0.5, 20_000, 104);
    }

    #[test]
    fn wide_sampler_dkw_dispatch_boundary() {
        // n·q straddling 10, where the scalar path switches BINV ↔ BTRS;
        // the wide law must be seamless across the boundary.
        dkw_check_wide(100, 0.0999, 20_000, 105);
        dkw_check_wide(100, 0.1001, 20_000, 106);
    }

    #[test]
    fn wide_sampler_dkw_reflection() {
        dkw_check_wide(1000, 0.9, 20_000, 107);
        dkw_check_wide(64, 0.99, 20_000, 108);
    }

    #[test]
    fn wide_sampler_dkw_huge_n_tiny_p() {
        // n = 10⁸, p = 10⁻⁶: the q^n corner whose log-space restart PR 4
        // fixed in BINV. The mode-outward window build never forms q^n, so
        // the wide path cannot reintroduce the underflow; it must land on
        // the alias fast path and pass the same DKW band.
        let sampler = WideBinomial::build(100_000_000, 1e-6);
        assert!(matches!(sampler, WideBinomial::Alias(_)), "±7.5σ ≈ 150 values fits the table");
        dkw_check_wide(100_000_000, 1e-6, 20_000, 109);
    }

    #[test]
    fn wide_sampler_scalar_fallback_dkw() {
        // n = 10⁸, p = ½: σ = 5000, far too wide to tabulate — the wide
        // build must fall back to the scalar BTRS plan and still pass DKW
        // through the word-seeded temporary rng.
        let sampler = WideBinomial::build(100_000_000, 0.5);
        assert!(matches!(sampler, WideBinomial::Scalar { .. }));
        dkw_check_wide(100_000_000, 0.5, 20_000, 110);
    }

    #[test]
    fn wide_sampler_degenerate_cases_are_draw_free_constants() {
        for (n, p, expect) in [(0u64, 0.7, 0u64), (100, 0.0, 0), (100, 1.0, 100)] {
            let sampler = WideBinomial::build(n, p);
            assert!(matches!(sampler, WideBinomial::Const(k) if k == expect), "n={n} p={p}");
            assert_eq!(sampler.sample(0xDEAD_BEEF), expect);
        }
    }

    #[test]
    fn pmf_window_is_centered_and_normalizable() {
        for &(n, p) in &[(40u64, 0.25), (1000, 0.004), (1000, 0.996), (100_000_000, 1e-6)] {
            let (lo, w) = pmf_window(n, p, MAX_ALIAS_SUPPORT).expect("narrow support");
            let mode = (((n as f64) + 1.0) * p).floor().min(n as f64) as u64;
            assert!(lo <= mode && mode < lo + w.len() as u64, "n={n} p={p}");
            assert_eq!(w[(mode - lo) as usize], 1.0, "mode weight is the reference");
            assert!(w.iter().all(|&x| (PMF_WINDOW_REL_EPS..=1.0).contains(&x)));
            assert!(lo + w.len() as u64 - 1 <= n);
        }
        assert!(pmf_window(100_000_000, 0.5, MAX_ALIAS_SUPPORT).is_none(), "σ=5000 over-wide");
    }

    #[test]
    fn alias_table_reproduces_small_pmf_exactly() {
        // Three-point law with known weights; 2e5 one-word draws must land
        // within ~3σ of each cell's expectation.
        let table = AliasTable::build(10, &[0.2, 0.5, 0.3]);
        let draws = 200_000usize;
        let mut counts = [0u64; 3];
        for i in 0..draws {
            let v = table.draw(counter_rng(77, i as u64));
            counts[(v - 10) as usize] += 1;
        }
        for (i, &expect) in [0.2f64, 0.5, 0.3].iter().enumerate() {
            let freq = counts[i] as f64 / draws as f64;
            let se = (expect * (1.0 - expect) / draws as f64).sqrt();
            assert!((freq - expect).abs() < 4.0 * se, "cell {i}: {freq} vs {expect}");
        }
    }
}
