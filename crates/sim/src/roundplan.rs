//! Per-state round-plan cache for the aggregate hot loop.
//!
//! For a fixed `(kernel, n, z)` everything a round needs — the adoption
//! probabilities `(P₀(x/n), P₁(x/n))`, the two binomial counts, and both
//! sampler setups — is a pure function of the current ones-count `x`. The
//! chain revisits a narrow contiguous band of states (hovering around its
//! drift fixed point, or drifting toward absorption), so a direct-mapped
//! cache indexed by the low bits of `x` is collision-free whenever the
//! band is narrower than the slot count, unlike a `(count, p)`-keyed memo
//! where unrelated keys can hash to the same slot and evict each other
//! every round.
//!
//! A hit skips the kernel evaluation *and* both sampler setups; the draw
//! code itself is byte-for-byte the one behind
//! [`sample_binomial`](crate::binomial::sample_binomial), so sampled
//! values are bit-identical for any rng state.

use bitdissem_core::Kernel;

use crate::binomial::{with_lnfact, Plan};
use crate::rng::SimRng;

/// Slot count (power of two). The visited band is `O(√n)` wide, so 512
/// slots are collision-free for populations up to the hundreds of
/// thousands; beyond that the cache degrades gracefully (distant states
/// that alias simply rebuild on revisit).
const SLOTS: usize = 512;

/// Everything needed to advance one replica from ones-count `x`.
#[derive(Debug, Clone, Copy)]
struct RoundPlan {
    /// The state this plan was built for (the slot tag).
    x: u64,
    /// The source opinion this plan was built for (part of the tag: a plan
    /// for `(x, z)` must never serve `(x, 1 − z)`).
    z: u64,
    /// Non-source agents currently holding the correct opinion.
    keep_n: u64,
    /// Non-source agents currently holding the wrong opinion.
    flip_n: u64,
    /// Sampler for `Binomial(keep_n, P_z)`.
    keep: Plan,
    /// Sampler for `Binomial(flip_n, P_{1−z})`.
    flip: Plan,
}

/// Direct-mapped cache of [`RoundPlan`]s, indexed by `x & (SLOTS − 1)`.
///
/// One cache instance serves one `(kernel, n)` pair (both fixed at
/// simulator construction). Slots are tagged with `(x, z)`, so a source
/// flip mid-run is safe without an explicit [`clear`](RoundPlanCache::clear):
/// a plan built for `(x, z)` misses when queried for `(x, 1 − z)` and is
/// rebuilt in place.
#[derive(Debug, Clone)]
pub(crate) struct RoundPlanCache {
    slots: Vec<Option<RoundPlan>>,
}

impl Default for RoundPlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundPlanCache {
    /// Allocates the (empty) slot array up front, so the first simulated
    /// round pays only its own plan build, not a ~90 KiB memset.
    pub(crate) fn new() -> Self {
        Self { slots: vec![None; SLOTS] }
    }

    /// Drops all cached plans (subsequent steps rebuild on demand).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Advances one replica by one aggregate round: draws the keep/flip
    /// binomials for state `x` and returns the next ones-count.
    ///
    /// Draws are bit-identical to two
    /// [`sample_binomial`](crate::binomial::sample_binomial) calls with
    /// `(keep_n, P_z)` then `(flip_n, P_{1−z})` on the same rng.
    #[inline]
    pub(crate) fn step(
        &mut self,
        kernel: &Kernel,
        n: u64,
        z: u64,
        x: u64,
        rng: &mut SimRng,
    ) -> u64 {
        let slot = &mut self.slots[(x as usize) & (SLOTS - 1)];
        let plan = match slot {
            Some(plan) if plan.x == x && plan.z == z => plan,
            _ => {
                let (p0, p1) = kernel.eval(x as f64 / n as f64);
                // Environment perturbations can produce the transient states
                // `x < z` / `x + (1 − z) > n`; clamp into the legal band so
                // the component sizes never wrap `u64`. The slot keeps the
                // raw `x` as its tag so lookups still hit.
                let cx = x.clamp(z, n - (1 - z));
                let keep_n = cx - z;
                let flip_n = n - cx - (1 - z);
                slot.insert(RoundPlan {
                    x,
                    z,
                    keep_n,
                    flip_n,
                    keep: Plan::build(keep_n, p1),
                    flip: Plan::build(flip_n, p0),
                })
            }
        };
        with_lnfact(n, |lnfact| {
            let keep = plan.keep.sample_with(rng, plan.keep_n, lnfact);
            let flip = plan.flip.sample_with(rng, plan.flip_n, lnfact);
            z + keep + flip
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::sample_binomial;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::Minority;
    use bitdissem_core::ProtocolExt;
    use rand::Rng;

    /// The cache's draws must be bit-identical to two `sample_binomial`
    /// calls, across repeated visits (cache hits) and band wanderings
    /// (misses and rebuilds).
    #[test]
    fn step_matches_plain_sampling_bit_for_bit() {
        let n = 256u64;
        let z = 1u64;
        let kernel = Minority::new(5).unwrap().to_table(n).unwrap().compile().unwrap();
        let mut cache = RoundPlanCache::new();
        let mut a = rng_from(42);
        let mut b = rng_from(42);
        let mut x = n / 2;
        for _ in 0..2000 {
            let next = cache.step(&kernel, n, z, x, &mut a);
            let (p0, p1) = kernel.eval(x as f64 / n as f64);
            let keep = sample_binomial(&mut b, x - z, p1);
            let flip = sample_binomial(&mut b, n - x - (1 - z), p0);
            assert_eq!(next, z + keep + flip);
            x = next;
        }
    }

    /// Absorbing states (p exactly 0 or 1, empty counts) must be handled
    /// without burning randomness, like `sample_binomial`'s early returns.
    #[test]
    fn absorbing_states_are_fixed_points_and_draw_free() {
        let n = 64u64;
        let kernel = Minority::new(3).unwrap().to_table(n).unwrap().compile().unwrap();
        for z in [0u64, 1] {
            let mut cache = RoundPlanCache::new();
            // Visit twice: once through the miss path, once through a hit.
            for _ in 0..2 {
                let x = z * n;
                let mut rng = rng_from(5);
                let mut probe = rng_from(5);
                let next = cache.step(&kernel, n, z, x, &mut rng);
                assert_eq!(next, x, "consensus is absorbing");
                assert_eq!(rng.random::<u64>(), probe.random::<u64>(), "no randomness consumed");
            }
        }
    }

    /// Flipping the source opinion mid-run must not reuse plans built for
    /// the old `z`: every draw after the flip has to match a cold cache
    /// bit for bit. (Regression test: slots used to be tagged by `x`
    /// alone, so a plan for `(x, 1)` silently served `(x, 0)`.)
    #[test]
    fn source_flip_mid_run_matches_cold_cache() {
        let n = 256u64;
        let kernel = Minority::new(3).unwrap().to_table(n).unwrap().compile().unwrap();
        let mut warm = RoundPlanCache::new();
        // Warm the cache for z = 1 over a band of states.
        let mut x = n / 2;
        let mut rng = rng_from(13);
        for _ in 0..500 {
            x = warm.step(&kernel, n, 1, x, &mut rng);
        }
        // Flip the source to z = 0 and replay against a cold cache: the
        // warm cache's draws must be identical, state by state.
        let mut cold = RoundPlanCache::new();
        let mut a = rng_from(77);
        let mut b = rng_from(77);
        let mut xw = n / 2;
        let mut xc = n / 2;
        for round in 0..500 {
            xw = warm.step(&kernel, n, 0, xw, &mut a);
            xc = cold.step(&kernel, n, 0, xc, &mut b);
            assert_eq!(xw, xc, "stale z-plan served at round {round}");
        }
    }

    /// States further apart than the slot count alias the same slot; the
    /// cache must rebuild rather than reuse a stale plan.
    #[test]
    fn aliasing_states_rebuild_instead_of_reusing() {
        let n = 2048u64;
        let z = 1u64;
        let kernel = Minority::new(3).unwrap().to_table(n).unwrap().compile().unwrap();
        let mut cache = RoundPlanCache::new();
        // x and x + 512 share a slot.
        for &x in &[700u64, 700 + 512, 700, 700 + 512] {
            let mut a = rng_from(9);
            let mut b = rng_from(9);
            let next = cache.step(&kernel, n, z, x, &mut a);
            let (p0, p1) = kernel.eval(x as f64 / n as f64);
            let keep = sample_binomial(&mut b, x - z, p1);
            let flip = sample_binomial(&mut b, n - x - (1 - z), p0);
            assert_eq!(next, z + keep + flip, "x={x}");
        }
    }
}
