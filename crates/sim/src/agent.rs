//! The literal agent-level simulator (ground truth).

use rand::Rng;

use bitdissem_core::{Configuration, GTable, Opinion, Protocol, ProtocolError, ProtocolExt};

use crate::rng::SimRng;
use crate::run::Simulator;

/// Simulates the parallel-setting process one agent at a time, exactly as
/// written in Section 1.1: each round, every non-source agent draws `ℓ`
/// agents uniformly at random **with replacement**, counts the ones, and
/// re-decides via `g^[own](k)`.
///
/// Cost is `O(n·ℓ)` per round; this simulator is the ground truth against
/// which [`AggregateSim`](crate::aggregate::AggregateSim) is validated
/// (ablation A1). Agent 0 is the source and never updates.
#[derive(Debug, Clone)]
pub struct AgentSim {
    table: GTable,
    correct: Opinion,
    opinions: Vec<Opinion>,
    scratch: Vec<Opinion>,
    ones: u64,
}

impl AgentSim {
    /// Creates a simulator for `protocol` starting from `start`.
    ///
    /// The source is agent 0; the remaining ones are assigned to the
    /// lowest-index non-source agents (identities are immaterial because
    /// sampling is uniform).
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    pub fn new<P: Protocol + ?Sized>(
        protocol: &P,
        start: Configuration,
    ) -> Result<Self, ProtocolError> {
        let n = start.n();
        let table = protocol.to_table(n)?;
        let correct = start.correct();
        let z = u64::from(correct.as_bit());
        let mut opinions = vec![Opinion::Zero; usize::try_from(n).expect("n fits usize")];
        opinions[0] = correct;
        let mut remaining_ones = start.ones() - z;
        for slot in opinions.iter_mut().skip(1) {
            if remaining_ones == 0 {
                break;
            }
            *slot = Opinion::One;
            remaining_ones -= 1;
        }
        let scratch = opinions.clone();
        Ok(Self { table, correct, opinions, scratch, ones: start.ones() })
    }

    /// Current opinion of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn opinion(&self, i: usize) -> Opinion {
        self.opinions[i]
    }

    /// The opinions of all agents (agent 0 is the source).
    #[must_use]
    pub fn opinions(&self) -> &[Opinion] {
        &self.opinions
    }
}

impl Simulator for AgentSim {
    fn configuration(&self) -> Configuration {
        Configuration::new(self.opinions.len() as u64, self.correct, self.ones)
            .expect("internal state is always consistent")
    }

    fn step_round(&mut self, rng: &mut SimRng) {
        let n = self.opinions.len();
        let ell = self.table.sample_size();
        let mut ones: u64 = u64::from(self.correct.as_bit());
        self.scratch[0] = self.correct;
        for i in 1..n {
            let mut k = 0usize;
            for _ in 0..ell {
                let j = rng.random_range(0..n);
                if self.opinions[j].is_one() {
                    k += 1;
                }
            }
            let g = self.table.g(self.opinions[i], k);
            let next = if g == 1.0 {
                Opinion::One
            } else if g == 0.0 {
                Opinion::Zero
            } else {
                Opinion::from_bool(rng.random::<f64>() < g)
            };
            self.scratch[i] = next;
            ones += u64::from(next.as_bit());
        }
        std::mem::swap(&mut self.opinions, &mut self.scratch);
        self.ones = ones;
    }

    /// Nominally `ℓ·n` samples per round (the source's `ℓ` draws are
    /// counted even though it ignores them, matching the other simulators).
    fn opinion_samples_per_round(&self) -> u64 {
        self.table.sample_size() as u64 * self.opinions.len() as u64
    }

    /// Agent-level perturbation: the schedule rewrites individual opinions
    /// (law-equal to the aggregate application; see
    /// [`crate::env::EnvSchedule::apply_agents`]).
    fn perturb(&mut self, env: &crate::env::EnvSchedule, t: u64, rng: &mut SimRng) -> u64 {
        let events = env.apply_agents(t, &mut self.correct, &mut self.opinions, rng);
        if events > 0 {
            self.ones = self.opinions.iter().filter(|o| o.is_one()).count() as u64;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use crate::run::{run_to_consensus, Outcome};
    use bitdissem_core::dynamics::{Minority, Voter};

    #[test]
    fn initial_state_matches_configuration() {
        let start = Configuration::new(10, Opinion::One, 4).unwrap();
        let sim = AgentSim::new(&Voter::new(1).unwrap(), start).unwrap();
        assert_eq!(sim.configuration(), start);
        assert_eq!(sim.opinion(0), Opinion::One);
        let count = sim.opinions().iter().filter(|o| o.is_one()).count();
        assert_eq!(count, 4);
    }

    #[test]
    fn source_never_flips() {
        let start = Configuration::all_wrong(30, Opinion::Zero);
        let mut sim = AgentSim::new(&Voter::new(2).unwrap(), start).unwrap();
        let mut rng = rng_from(5);
        for _ in 0..100 {
            sim.step_round(&mut rng);
            assert_eq!(sim.opinion(0), Opinion::Zero);
        }
    }

    #[test]
    fn ones_counter_stays_consistent() {
        let start = Configuration::new(25, Opinion::One, 13).unwrap();
        let mut sim = AgentSim::new(&Minority::new(3).unwrap(), start).unwrap();
        let mut rng = rng_from(6);
        for _ in 0..50 {
            sim.step_round(&mut rng);
            let direct = sim.opinions().iter().filter(|o| o.is_one()).count() as u64;
            assert_eq!(direct, sim.configuration().ones());
        }
    }

    #[test]
    fn voter_converges_at_small_n() {
        let start = Configuration::all_wrong(16, Opinion::One);
        let mut sim = AgentSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(7);
        match run_to_consensus(&mut sim, &mut rng, 100_000) {
            Outcome::Converged { .. } => {}
            other => panic!("voter must converge: {other:?}"),
        }
    }

    #[test]
    fn consensus_is_absorbing() {
        let start = Configuration::correct_consensus(20, Opinion::One);
        let mut sim = AgentSim::new(&Minority::new(3).unwrap(), start).unwrap();
        let mut rng = rng_from(8);
        for _ in 0..50 {
            sim.step_round(&mut rng);
            assert!(sim.configuration().is_correct_consensus());
        }
    }
}
