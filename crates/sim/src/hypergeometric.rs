//! Hypergeometric sampling, built from uniforms.
//!
//! The partial-synchrony scheduler ([`crate::partial`]) activates a random
//! subset of `m` non-source agents per round; the number of 1-holders in
//! that subset is `Hypergeometric(N, K, m)` (population `N`, successes `K`,
//! draws `m`). Sampling is by inversion from the mode with the stable PMF
//! ratio recurrence — exact, `O(√(variance))` expected steps.

use rand::Rng;

use crate::rng::SimRng;

/// PMF of `Hypergeometric(population, successes, draws)` at `k`, via a
/// numerically stable product formula.
///
/// # Panics
///
/// Panics if `successes > population` or `draws > population`.
#[must_use]
pub fn hypergeometric_pmf(population: u64, successes: u64, draws: u64, k: u64) -> f64 {
    assert!(successes <= population, "successes must not exceed population");
    assert!(draws <= population, "draws must not exceed population");
    let lo = draws.saturating_sub(population - successes);
    let hi = successes.min(draws);
    if k < lo || k > hi {
        return 0.0;
    }
    // ln C(K,k) + ln C(N−K, m−k) − ln C(N, m)
    use bitdissem_poly::binomial::ln_choose;
    (ln_choose(successes, k) + ln_choose(population - successes, draws - k)
        - ln_choose(population, draws))
    .exp()
}

/// Draws one `Hypergeometric(population, successes, draws)` variate: the
/// number of successes in a uniform sample of `draws` items **without
/// replacement**.
///
/// Uses inversion from the mode: the expected number of PMF-ratio steps is
/// `O(σ)` where `σ² = m·(K/N)·(1−K/N)·(N−m)/(N−1)`, which is plenty fast
/// for the per-round use in the partial-synchrony simulator.
///
/// # Panics
///
/// Panics if `successes > population` or `draws > population`.
#[must_use]
pub fn sample_hypergeometric(rng: &mut SimRng, population: u64, successes: u64, draws: u64) -> u64 {
    assert!(successes <= population, "successes must not exceed population");
    assert!(draws <= population, "draws must not exceed population");
    let lo = draws.saturating_sub(population - successes);
    let hi = successes.min(draws);
    if lo == hi {
        return lo;
    }
    // Mode of the hypergeometric.
    let mode = (((draws + 1) * (successes + 1)) as f64 / (population + 2) as f64)
        .floor()
        .clamp(lo as f64, hi as f64) as u64;
    let pmf_mode = hypergeometric_pmf(population, successes, draws, mode);

    // Two-sided inversion walking outward from the mode.
    let mut u: f64 = rng.random();
    // Ratio recurrences: p(k+1)/p(k) = (K−k)(m−k) / ((k+1)(N−K−m+k+1)).
    // Computed in f64 because N−K−m can be negative inside the support.
    let (nf, kf, mf) = (population as f64, successes as f64, draws as f64);
    let ratio_up = |k: u64| -> f64 {
        let k = k as f64;
        (kf - k) * (mf - k) / ((k + 1.0) * (nf - kf - mf + k + 1.0))
    };
    let mut up_k = mode;
    let mut up_p = pmf_mode;
    let mut down_k = mode;
    let mut down_p = pmf_mode;

    u -= pmf_mode;
    if u <= 0.0 {
        return mode;
    }
    loop {
        let can_up = up_k < hi;
        let can_down = down_k > lo;
        if !can_up && !can_down {
            // Rounding exhausted the mass: return the nearer boundary.
            return if u > 0.5 { hi } else { lo };
        }
        if can_up {
            up_p *= ratio_up(up_k);
            up_k += 1;
            u -= up_p;
            if u <= 0.0 {
                return up_k;
            }
        }
        if can_down {
            // p(k−1)/p(k) = inverse of the up-ratio at k−1.
            down_p /= ratio_up(down_k - 1);
            down_k -= 1;
            u -= down_p;
            if u <= 0.0 {
                return down_k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;

    #[test]
    fn pmf_is_normalized_and_supported() {
        for &(pop, suc, draws) in &[(10u64, 4u64, 3u64), (50, 25, 10), (7, 7, 3), (8, 0, 5)] {
            let lo = draws.saturating_sub(pop - suc);
            let hi = suc.min(draws);
            let total: f64 = (0..=draws).map(|k| hypergeometric_pmf(pop, suc, draws, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "({pop},{suc},{draws}): {total}");
            assert_eq!(hypergeometric_pmf(pop, suc, draws, hi + 1), 0.0);
            if lo > 0 {
                assert_eq!(hypergeometric_pmf(pop, suc, draws, lo - 1), 0.0);
            }
        }
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = rng_from(1);
        // All successes: every draw is a success.
        assert_eq!(sample_hypergeometric(&mut rng, 10, 10, 4), 4);
        // No successes.
        assert_eq!(sample_hypergeometric(&mut rng, 10, 0, 4), 0);
        // Draw everything.
        assert_eq!(sample_hypergeometric(&mut rng, 10, 3, 10), 3);
        // Draw nothing.
        assert_eq!(sample_hypergeometric(&mut rng, 10, 3, 0), 0);
    }

    #[test]
    fn moments_match_theory() {
        let (pop, suc, draws) = (1000u64, 300u64, 120u64);
        let reps = 40_000;
        let mut rng = rng_from(2);
        let samples: Vec<u64> =
            (0..reps).map(|_| sample_hypergeometric(&mut rng, pop, suc, draws)).collect();
        let mean = samples.iter().map(|&k| k as f64).sum::<f64>() / reps as f64;
        let expect_mean = draws as f64 * suc as f64 / pop as f64; // 36
        let var =
            samples.iter().map(|&k| (k as f64 - mean).powi(2)).sum::<f64>() / (reps - 1) as f64;
        let p = suc as f64 / pop as f64;
        let expect_var = draws as f64 * p * (1.0 - p) * ((pop - draws) as f64 / (pop - 1) as f64);
        assert!((mean - expect_mean).abs() < 0.15, "{mean} vs {expect_mean}");
        assert!((var - expect_var).abs() < 0.12 * expect_var + 0.5, "{var} vs {expect_var}");
    }

    #[test]
    fn distribution_matches_pmf_in_total_variation() {
        let (pop, suc, draws) = (40u64, 18u64, 12u64);
        let reps = 150_000;
        let mut rng = rng_from(3);
        let mut counts = vec![0u64; draws as usize + 1];
        for _ in 0..reps {
            counts[sample_hypergeometric(&mut rng, pop, suc, draws) as usize] += 1;
        }
        let tv: f64 = (0..=draws)
            .map(|k| {
                (counts[k as usize] as f64 / reps as f64 - hypergeometric_pmf(pop, suc, draws, k))
                    .abs()
            })
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.02, "total variation {tv}");
    }

    #[test]
    fn samples_respect_support_bounds() {
        // draws > population − successes forces a minimum count.
        let (pop, suc, draws) = (20u64, 15u64, 10u64);
        let lo = draws - (pop - suc); // 5
        let mut rng = rng_from(4);
        for _ in 0..2_000 {
            let k = sample_hypergeometric(&mut rng, pop, suc, draws);
            assert!((lo..=10).contains(&k), "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "successes must not exceed")]
    fn rejects_invalid_parameters() {
        let mut rng = rng_from(0);
        let _ = sample_hypergeometric(&mut rng, 5, 6, 2);
    }
}
