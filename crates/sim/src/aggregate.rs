//! The aggregate exact-chain simulator.

use bitdissem_core::{Configuration, GTable, Opinion, Protocol, ProtocolError, ProtocolExt};
use bitdissem_poly::binomial::binomial_pmf_vec;

use crate::binomial::sample_binomial;
use crate::rng::SimRng;
use crate::run::Simulator;

/// Computes the one-round adoption probabilities of Eq. 4 at fraction `p`:
/// `(P₀(p), P₁(p))` — the probability that a 0-holder (resp. 1-holder)
/// adopts opinion 1 next round.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn adoption_probs(table: &GTable, p: f64) -> (f64, f64) {
    let ell = table.sample_size();
    let weights = binomial_pmf_vec(ell as u64, p);
    let mut p0 = 0.0;
    let mut p1 = 0.0;
    for (k, &w) in weights.iter().enumerate() {
        p0 += w * table.g(Opinion::Zero, k);
        p1 += w * table.g(Opinion::One, k);
    }
    (p0.clamp(0.0, 1.0), p1.clamp(0.0, 1.0))
}

/// Simulates the parallel-setting process on its aggregate state `(z, X_t)`.
///
/// Exactness: conditioned on `X_t = x`, the non-source 1-holders keep
/// opinion 1 independently with probability `P₁(x/n)` and the 0-holders flip
/// with probability `P₀(x/n)`, so
/// `X_{t+1} = z + Bin(x−z, P₁) + Bin(n−x−(1−z), P₀)` — the same law as the
/// agent-level simulator (ablation A1 checks this), at two binomial draws
/// per round instead of `n·ℓ` uniform draws.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Minority, Configuration, Opinion};
/// use bitdissem_sim::{aggregate::AggregateSim, rng::rng_from, run::Simulator};
///
/// let start = Configuration::new(1000, Opinion::One, 300)?;
/// let mut sim = AggregateSim::new(&Minority::new(3)?, start)?;
/// let mut rng = rng_from(7);
/// sim.step_round(&mut rng);
/// assert!(sim.configuration().ones() >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AggregateSim {
    table: GTable,
    config: Configuration,
}

impl AggregateSim {
    /// Creates a simulator for `protocol` starting from `start`.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol.
    pub fn new<P: Protocol + ?Sized>(
        protocol: &P,
        start: Configuration,
    ) -> Result<Self, ProtocolError> {
        let table = protocol.to_table(start.n())?;
        Ok(Self { table, config: start })
    }

    /// The materialized decision table.
    #[must_use]
    pub fn table(&self) -> &GTable {
        &self.table
    }

    /// Resets the state to a new configuration (same protocol and `n`).
    ///
    /// # Panics
    ///
    /// Panics if the new configuration has a different population size.
    pub fn reset(&mut self, start: Configuration) {
        assert_eq!(start.n(), self.config.n(), "population size is fixed at construction");
        self.config = start;
    }
}

impl Simulator for AggregateSim {
    fn configuration(&self) -> Configuration {
        self.config
    }

    fn step_round(&mut self, rng: &mut SimRng) {
        let n = self.config.n();
        let x = self.config.ones();
        let z = u64::from(self.config.correct().as_bit());
        let (p0, p1) = adoption_probs(&self.table, x as f64 / n as f64);
        let ones_nonsource = x - z;
        let zeros_nonsource = n - x - (1 - z);
        let keep = sample_binomial(rng, ones_nonsource, p1);
        let flip = sample_binomial(rng, zeros_nonsource, p0);
        let next = z + keep + flip;
        self.config = self.config.with_ones(next).expect("next state is always consistent");
    }

    /// The aggregate chain is distributionally equivalent to every agent
    /// drawing `ℓ` samples per round, so the nominal sample count is `ℓ·n`
    /// even though only two binomial draws are performed.
    fn opinion_samples_per_round(&self) -> u64 {
        self.table.sample_size() as u64 * self.config.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::{Minority, Voter};

    #[test]
    fn adoption_probs_match_hand_computation_for_voter() {
        // For the Voter, P_b(p) = p exactly, for any ℓ.
        let table = Voter::new(3).unwrap().to_table(100).unwrap();
        for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let (p0, p1) = adoption_probs(&table, p);
            assert!((p0 - p).abs() < 1e-12, "p={p}: P0={p0}");
            assert!((p1 - p).abs() < 1e-12, "p={p}: P1={p1}");
        }
    }

    #[test]
    fn adoption_probs_match_hand_computation_for_minority3() {
        // Minority ℓ=3: P(p) = 3p(1−p)² + p³·... :
        // g = [0, 1, 0, 1] -> P(p) = 3p(1−p)² + p³.
        let table = Minority::new(3).unwrap().to_table(100).unwrap();
        for &p in &[0.1, 0.3, 0.5, 0.8] {
            let expect = 3.0 * p * (1.0 - p) * (1.0 - p) + p * p * p;
            let (p0, p1) = adoption_probs(&table, p);
            assert!((p0 - expect).abs() < 1e-12, "p={p}");
            assert_eq!(p0, p1);
        }
    }

    #[test]
    fn source_is_never_lost() {
        let start = Configuration::all_wrong(100, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(3);
        for _ in 0..500 {
            sim.step_round(&mut rng);
            assert!(sim.configuration().ones() >= 1, "source must keep opinion 1");
        }
    }

    #[test]
    fn consensus_is_absorbing_for_prop3_protocols() {
        let start = Configuration::correct_consensus(50, Opinion::Zero);
        let mut sim = AggregateSim::new(&Minority::new(3).unwrap(), start).unwrap();
        let mut rng = rng_from(4);
        for _ in 0..100 {
            sim.step_round(&mut rng);
            assert!(sim.configuration().is_correct_consensus());
        }
    }

    #[test]
    fn reset_keeps_protocol() {
        let start = Configuration::all_wrong(10, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        sim.reset(Configuration::correct_consensus(10, Opinion::One));
        assert!(sim.configuration().is_correct_consensus());
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn reset_rejects_size_change() {
        let start = Configuration::all_wrong(10, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        sim.reset(Configuration::all_wrong(20, Opinion::One));
    }

    #[test]
    fn deterministic_given_seed() {
        let start = Configuration::new(200, Opinion::One, 77).unwrap();
        let run = |seed| {
            let mut sim = AggregateSim::new(&Minority::new(5).unwrap(), start).unwrap();
            let mut rng = rng_from(seed);
            (0..50)
                .map(|_| {
                    sim.step_round(&mut rng);
                    sim.configuration().ones()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
