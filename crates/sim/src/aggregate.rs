//! The aggregate exact-chain simulator.

use std::sync::Arc;

use bitdissem_core::{
    Configuration, GTable, Kernel, Opinion, Protocol, ProtocolError, ProtocolExt,
};
use bitdissem_poly::binomial::{binomial_pmf_into, binomial_pmf_vec};

use crate::rng::SimRng;
use crate::roundplan::RoundPlanCache;
use crate::run::Simulator;

/// Slack allowed around `[0, 1]` for an adoption probability before it is
/// treated as a genuine violation rather than floating-point summation
/// noise. With validated `g` entries and pmf weights summing to `1 ± εℓ`,
/// the true rounding error is orders of magnitude below this.
const ADOPTION_PROB_TOL: f64 = 1e-9;

/// Computes the one-round adoption probabilities of Eq. 4 at fraction `p`:
/// `(P₀(p), P₁(p))` — the probability that a 0-holder (resp. 1-holder)
/// adopts opinion 1 next round.
///
/// Values within [`ADOPTION_PROB_TOL`] of `[0, 1]` are clamped (summation
/// noise); anything further out means the table or the pmf computation is
/// corrupt and is surfaced as
/// [`ProtocolError::InvalidAdoptionProbability`] instead of being silently
/// clamped into range.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidAdoptionProbability`] if a pre-clamp
/// probability is non-finite or outside `[−1e-9, 1 + 1e-9]`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn try_adoption_probs(table: &GTable, p: f64) -> Result<(f64, f64), ProtocolError> {
    let ell = table.sample_size();
    // Realistic sample sizes fit a stack scratch buffer, so the per-call
    // pmf evaluation allocates nothing; the (never-exercised in practice)
    // ℓ > MAX_STACK_ELL fallback keeps the function total. Both paths run
    // the same mode-centered recurrence, so values are identical to the
    // historical `binomial_pmf_vec` implementation bit for bit.
    const MAX_STACK_ELL: usize = 64;
    let mut stack = [0.0f64; MAX_STACK_ELL + 1];
    let heap: Vec<f64>;
    let weights: &[f64] = if ell <= MAX_STACK_ELL {
        let buf = &mut stack[..=ell];
        binomial_pmf_into(ell as u64, p, buf);
        buf
    } else {
        heap = binomial_pmf_vec(ell as u64, p);
        &heap
    };
    let mut p0 = 0.0;
    let mut p1 = 0.0;
    for (k, &w) in weights.iter().enumerate() {
        p0 += w * table.g(Opinion::Zero, k);
        p1 += w * table.g(Opinion::One, k);
    }
    // The pre-clamp check is enforced in every build profile (two compares
    // per round, negligible next to the pmf evaluation), which is strictly
    // stronger than a debug_assert — release sweeps are where corruption
    // matters most.
    for (own, v) in [(0u8, p0), (1u8, p1)] {
        if !v.is_finite() || !(-ADOPTION_PROB_TOL..=1.0 + ADOPTION_PROB_TOL).contains(&v) {
            return Err(ProtocolError::InvalidAdoptionProbability { own, p, value: v });
        }
    }
    Ok((p0.clamp(0.0, 1.0), p1.clamp(0.0, 1.0)))
}

/// Infallible wrapper over [`try_adoption_probs`] for the simulator hot
/// paths, where an out-of-tolerance adoption probability is a programming
/// error (tables are validated at construction).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`, or with the
/// [`ProtocolError::InvalidAdoptionProbability`] message on a genuine
/// violation.
#[must_use]
pub fn adoption_probs(table: &GTable, p: f64) -> (f64, f64) {
    match try_adoption_probs(table, p) {
        Ok(probs) => probs,
        Err(e) => panic!("{e}"),
    }
}

/// Simulates the parallel-setting process on its aggregate state `(z, X_t)`.
///
/// Exactness: conditioned on `X_t = x`, the non-source 1-holders keep
/// opinion 1 independently with probability `P₁(x/n)` and the 0-holders flip
/// with probability `P₀(x/n)`, so
/// `X_{t+1} = z + Bin(x−z, P₁) + Bin(n−x−(1−z), P₀)` — the same law as the
/// agent-level simulator (ablation A1 checks this), at two binomial draws
/// per round instead of `n·ℓ` uniform draws.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Minority, Configuration, Opinion};
/// use bitdissem_sim::{aggregate::AggregateSim, rng::rng_from, run::Simulator};
///
/// let start = Configuration::new(1000, Opinion::One, 300)?;
/// let mut sim = AggregateSim::new(&Minority::new(3)?, start)?;
/// let mut rng = rng_from(7);
/// sim.step_round(&mut rng);
/// assert!(sim.configuration().ones() >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AggregateSim {
    kernel: Arc<Kernel>,
    config: Configuration,
    plans: RoundPlanCache,
}

impl AggregateSim {
    /// Creates a simulator for `protocol` starting from `start`.
    ///
    /// Materializes the protocol's table and compiles it into a fresh
    /// [`Kernel`]. Replicated drivers should compile once and share via
    /// [`AggregateSim::with_kernel`] instead.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors from the protocol, and
    /// kernel compilation errors for corrupt (unchecked) tables.
    pub fn new<P: Protocol + ?Sized>(
        protocol: &P,
        start: Configuration,
    ) -> Result<Self, ProtocolError> {
        let table = protocol.to_table(start.n())?;
        Ok(Self::with_kernel(Arc::new(table.compile()?), start))
    }

    /// Creates a simulator around an already-compiled kernel, shared
    /// read-only with the caller (no per-replica table materialization).
    #[must_use]
    pub fn with_kernel(kernel: Arc<Kernel>, start: Configuration) -> Self {
        Self { kernel, config: start, plans: RoundPlanCache::new() }
    }

    /// The compiled adoption-probability kernel.
    #[must_use]
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Resets the state to a new configuration (same protocol and `n`).
    ///
    /// # Panics
    ///
    /// Panics if the new configuration has a different population size.
    pub fn reset(&mut self, start: Configuration) {
        assert_eq!(start.n(), self.config.n(), "population size is fixed at construction");
        // Cached round plans are keyed by the ones-count for a fixed source
        // opinion; a different source invalidates them.
        if start.correct() != self.config.correct() {
            self.plans.clear();
        }
        self.config = start;
    }
}

impl Simulator for AggregateSim {
    fn configuration(&self) -> Configuration {
        self.config
    }

    fn step_round(&mut self, rng: &mut SimRng) {
        let n = self.config.n();
        let x = self.config.ones();
        let z = u64::from(self.config.correct().as_bit());
        let next = self.plans.step(&self.kernel, n, z, x, rng);
        self.config = self.config.with_ones(next).expect("next state is always consistent");
    }

    /// The aggregate chain is distributionally equivalent to every agent
    /// drawing `ℓ` samples per round, so the nominal sample count is `ℓ·n`
    /// even though only two binomial draws are performed. Saturates
    /// instead of overflowing for extreme-`n` nominal accounting.
    fn opinion_samples_per_round(&self) -> u64 {
        (self.kernel.sample_size() as u64).saturating_mul(self.config.n())
    }

    /// Aggregate perturbation: the schedule rewrites `(z, x)` directly. The
    /// round-plan cache needs no flushing — its slots are tagged by the
    /// full `(x, z)` pair (DESIGN decision 15).
    fn perturb(&mut self, env: &crate::env::EnvSchedule, t: u64, rng: &mut SimRng) -> u64 {
        let n = self.config.n();
        let mut z = u64::from(self.config.correct().as_bit());
        let mut x = self.config.ones();
        let events = env.apply_aggregate(t, n, &mut z, &mut x, rng);
        if events > 0 {
            let correct = Opinion::from_bool(z == 1);
            self.config =
                Configuration::new(n, correct, x).expect("perturbations stay in the legal band");
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::{Minority, Voter};

    #[test]
    fn adoption_probs_match_hand_computation_for_voter() {
        // For the Voter, P_b(p) = p exactly, for any ℓ.
        let table = Voter::new(3).unwrap().to_table(100).unwrap();
        for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let (p0, p1) = adoption_probs(&table, p);
            assert!((p0 - p).abs() < 1e-12, "p={p}: P0={p0}");
            assert!((p1 - p).abs() < 1e-12, "p={p}: P1={p1}");
        }
    }

    #[test]
    fn adoption_probs_match_hand_computation_for_minority3() {
        // Minority ℓ=3: P(p) = 3p(1−p)² + p³·... :
        // g = [0, 1, 0, 1] -> P(p) = 3p(1−p)² + p³.
        let table = Minority::new(3).unwrap().to_table(100).unwrap();
        for &p in &[0.1, 0.3, 0.5, 0.8] {
            let expect = 3.0 * p * (1.0 - p) * (1.0 - p) + p * p * p;
            let (p0, p1) = adoption_probs(&table, p);
            assert!((p0 - expect).abs() < 1e-12, "p={p}");
            assert_eq!(p0, p1);
        }
    }

    #[test]
    fn corrupt_table_surfaces_invalid_adoption_probability() {
        // An out-of-range g entry (injectable only via the unchecked
        // constructor) must surface as a ProtocolError, not be clamped away.
        let table = GTable::new_unchecked(vec![0.0, 2.0, 2.0, 2.0], vec![0.0, 2.0, 2.0, 2.0]);
        let err = try_adoption_probs(&table, 0.4).unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidAdoptionProbability { own: 0, .. }), "{err}");
        let table = GTable::new_unchecked(vec![0.0, f64::NAN], vec![0.0, 1.0]);
        assert!(try_adoption_probs(&table, 0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn adoption_probs_panics_on_genuine_violation() {
        let table = GTable::new_unchecked(vec![0.0, -1.5], vec![0.0, 1.0]);
        let _ = adoption_probs(&table, 0.5);
    }

    #[test]
    fn fp_noise_within_tolerance_is_clamped_not_fatal() {
        // Entries a hair outside [0,1] model accumulated summation noise:
        // within 1e-9 the result is clamped, beyond it is an error.
        let eps = 1e-12;
        let table = GTable::new_unchecked(vec![0.0, 1.0 + eps], vec![0.0, 1.0 + eps]);
        let (p0, p1) = adoption_probs(&table, 1.0);
        assert_eq!((p0, p1), (1.0, 1.0));
    }

    #[test]
    fn source_is_never_lost() {
        let start = Configuration::all_wrong(100, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(3);
        for _ in 0..500 {
            sim.step_round(&mut rng);
            assert!(sim.configuration().ones() >= 1, "source must keep opinion 1");
        }
    }

    #[test]
    fn consensus_is_absorbing_for_prop3_protocols() {
        let start = Configuration::correct_consensus(50, Opinion::Zero);
        let mut sim = AggregateSim::new(&Minority::new(3).unwrap(), start).unwrap();
        let mut rng = rng_from(4);
        for _ in 0..100 {
            sim.step_round(&mut rng);
            assert!(sim.configuration().is_correct_consensus());
        }
    }

    #[test]
    fn reset_keeps_protocol() {
        let start = Configuration::all_wrong(10, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        sim.reset(Configuration::correct_consensus(10, Opinion::One));
        assert!(sim.configuration().is_correct_consensus());
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn reset_rejects_size_change() {
        let start = Configuration::all_wrong(10, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        sim.reset(Configuration::all_wrong(20, Opinion::One));
    }

    #[test]
    fn kernel_matches_legacy_adoption_probs() {
        // The compiled fast path and the pmf-summation legacy path agree
        // within 1e-12 on a dense grid (including endpoints) for every
        // named protocol shape that reaches the hot loop.
        for table in [
            Voter::new(1).unwrap().to_table(100).unwrap(),
            Voter::new(5).unwrap().to_table(100).unwrap(),
            Minority::new(3).unwrap().to_table(100).unwrap(),
            Minority::new(9).unwrap().to_table(100).unwrap(),
        ] {
            let kernel = table.compile().unwrap();
            for i in 0..=400 {
                let p = f64::from(i) / 400.0;
                let (l0, l1) = adoption_probs(&table, p);
                let (k0, k1) = kernel.eval(p);
                assert!((k0 - l0).abs() < 1e-12, "P0 at p={p}: {k0} vs {l0}");
                assert!((k1 - l1).abs() < 1e-12, "P1 at p={p}: {k1} vs {l1}");
            }
        }
    }

    #[test]
    fn shared_kernel_is_bit_identical_to_owned() {
        use std::sync::Arc;
        let start = Configuration::new(500, Opinion::One, 140).unwrap();
        let minority = Minority::new(5).unwrap();
        let kernel = Arc::new(minority.to_table(500).unwrap().compile().unwrap());
        let trace = |mut sim: AggregateSim| {
            let mut rng = rng_from(17);
            (0..200)
                .map(|_| {
                    sim.step_round(&mut rng);
                    sim.configuration().ones()
                })
                .collect::<Vec<_>>()
        };
        let owned = trace(AggregateSim::new(&minority, start).unwrap());
        let shared = trace(AggregateSim::with_kernel(Arc::clone(&kernel), start));
        assert_eq!(owned, shared);
    }

    #[test]
    fn opinion_samples_saturate_instead_of_overflowing() {
        let start = Configuration::all_wrong(u64::MAX / 2, Opinion::One);
        let sim = AggregateSim::new(&Minority::new(5).unwrap(), start).unwrap();
        assert_eq!(sim.opinion_samples_per_round(), u64::MAX, "5 * (u64::MAX/2) saturates");
    }

    #[test]
    fn deterministic_given_seed() {
        let start = Configuration::new(200, Opinion::One, 77).unwrap();
        let run = |seed| {
            let mut sim = AggregateSim::new(&Minority::new(5).unwrap(), start).unwrap();
            let mut rng = rng_from(seed);
            (0..50)
                .map(|_| {
                    sim.step_round(&mut rng);
                    sim.configuration().ones()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
