//! Lock-step batched replication of the aggregate chain.
//!
//! [`BatchedAggregateSim`] advances `B` independent replications of the
//! aggregate process one parallel round at a time, in struct-of-arrays
//! layout: one contiguous `ones` vector and one contiguous RNG vector,
//! walked linearly per round. All replicas share a single read-only
//! [`Kernel`] and a single per-state round-plan cache, so when the
//! replicas cluster in the same narrow band of states — hovering, or near
//! absorption — almost every round reuses a cached kernel evaluation and
//! pair of sampler setups.
//!
//! Replicas that reach the correct consensus are **retired** by
//! `swap_remove`, keeping the live arrays dense; the hot loop never
//! branches on dead replicas. Retirement is pure bookkeeping: each
//! replica's RNG stream is derived from its replication index alone and is
//! consumed only by that replica's own draws, so every replica's
//! trajectory is bit-identical to running it solo through
//! [`AggregateSim`](crate::aggregate::AggregateSim) with the same seed —
//! regardless of batch composition, retirement order, or chunking. The
//! `batched_matches_solo_bit_for_bit` test pins this.

use std::sync::{Arc, Mutex};

use bitdissem_core::{Configuration, Kernel};
use bitdissem_obs::{Event, LatencyId, Obs, ReplicationOutcome, Timer};
use bitdissem_pool::Pool;

use crate::env::EnvSchedule;
use crate::rng::{replication_seed, rng_from, SimRng};
use crate::roundplan::RoundPlanCache;
use crate::run::Outcome;

/// `B` replicas of the aggregate chain stepped in lock-step.
///
/// Construction seeds every replica from the same start configuration;
/// replicas already at the correct consensus are retired immediately with
/// a convergence round of 0, matching the solo run-loop convention that
/// consensus is checked *before* stepping.
#[derive(Debug)]
pub struct BatchedAggregateSim {
    kernel: Arc<Kernel>,
    n: u64,
    /// Source contribution to the count of ones (1 iff the correct opinion
    /// is `One`).
    z: u64,
    /// The `ones` value that constitutes the correct consensus.
    target: u64,
    /// Rounds completed so far (shared by all live replicas).
    round: u64,
    // Dense live arrays, parallel by position.
    live_ones: Vec<u64>,
    live_rngs: Vec<SimRng>,
    live_rep: Vec<usize>,
    /// Position of each replica in the live arrays (`usize::MAX` once
    /// retired).
    pos_of_rep: Vec<usize>,
    /// Current (live) or final (retired) `ones` per replica.
    ones_by_rep: Vec<u64>,
    /// First round at which each replica held the correct consensus.
    converged_at: Vec<Option<u64>>,
    /// `false` keeps replicas stepping past the correct consensus (their
    /// first-hit round is still recorded). Required under an environment
    /// schedule that can knock a replica off consensus: consensus is no
    /// longer absorbing, so a retired replica would report a stale state.
    retire_on_consensus: bool,
    plans: RoundPlanCache,
}

impl BatchedAggregateSim {
    /// Creates a batch of `seeds.len()` replicas, all starting from
    /// `start`, with replica `i` drawing from `rng_from(seeds[i])`.
    #[must_use]
    pub fn new(kernel: Arc<Kernel>, start: Configuration, seeds: &[u64]) -> Self {
        Self::with_retirement(kernel, start, seeds, true)
    }

    /// [`BatchedAggregateSim::new`] with retirement pinned explicitly.
    /// `retire_on_consensus = false` keeps every replica live for the whole
    /// run — first consensus hits are recorded in `converged_at`, but the
    /// replicas continue stepping (the conformance harness needs the true
    /// post-consensus marginals when an environment schedule is active).
    #[must_use]
    pub fn with_retirement(
        kernel: Arc<Kernel>,
        start: Configuration,
        seeds: &[u64],
        retire_on_consensus: bool,
    ) -> Self {
        let n = start.n();
        let z = u64::from(start.correct().as_bit());
        let target = if z == 1 { n } else { 0 };
        let b = seeds.len();
        let mut sim = Self {
            kernel,
            n,
            z,
            target,
            round: 0,
            live_ones: Vec::with_capacity(b),
            live_rngs: Vec::with_capacity(b),
            live_rep: Vec::with_capacity(b),
            pos_of_rep: vec![usize::MAX; b],
            ones_by_rep: vec![start.ones(); b],
            converged_at: vec![None; b],
            retire_on_consensus,
            plans: RoundPlanCache::new(),
        };
        for (rep, &seed) in seeds.iter().enumerate() {
            if start.ones() == target {
                sim.converged_at[rep] = Some(0);
                if retire_on_consensus {
                    continue;
                }
            }
            sim.pos_of_rep[rep] = sim.live_ones.len();
            sim.live_ones.push(start.ones());
            sim.live_rngs.push(rng_from(seed));
            sim.live_rep.push(rep);
        }
        sim
    }

    /// Total number of replicas in the batch (live and retired).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.converged_at.len()
    }

    /// Number of replicas still running.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live_ones.len()
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current `ones` count of replica `rep` — its final (consensus) value
    /// once retired.
    #[must_use]
    pub fn ones_of(&self, rep: usize) -> u64 {
        self.ones_by_rep[rep]
    }

    /// First round at which replica `rep` held the correct consensus, or
    /// `None` while it is still running.
    #[must_use]
    pub fn converged_at(&self, rep: usize) -> Option<u64> {
        self.converged_at[rep]
    }

    /// Advances every live replica by one parallel round, then retires the
    /// replicas that reached the correct consensus.
    pub fn step_round(&mut self) {
        self.round += 1;
        for pos in 0..self.live_ones.len() {
            let x = self.live_ones[pos];
            let rng = &mut self.live_rngs[pos];
            let next = self.plans.step(&self.kernel, self.n, self.z, x, rng);
            debug_assert!(next <= self.n);
            self.live_ones[pos] = next;
            self.ones_by_rep[self.live_rep[pos]] = next;
        }
        // Retire in a separate dense sweep so the sampling loop stays
        // branch-light; swap_remove keeps the arrays packed.
        let mut pos = 0;
        while pos < self.live_ones.len() {
            if self.live_ones[pos] == self.target {
                let rep = self.live_rep[pos];
                if self.converged_at[rep].is_none() {
                    self.converged_at[rep] = Some(self.round);
                }
                if self.retire_on_consensus {
                    self.retire(pos);
                    continue;
                }
            }
            pos += 1;
        }
    }

    /// Applies the environment schedule at the current round boundary
    /// (`t = self.round`), drawing each replica's perturbation randomness
    /// from that replica's own stream — exactly the draws the solo
    /// [`run_to_consensus_env`](crate::run::run_to_consensus_env) loop
    /// makes, so trajectories stay bit-identical to the per-replica
    /// engine. Returns the number of perturbation events across the batch.
    ///
    /// Source flips are time-scheduled, so every replica computes the same
    /// new `z`; the shared `z`/`target` pair is committed after the sweep.
    pub fn perturb_round(&mut self, env: &EnvSchedule) -> u64 {
        let t = self.round;
        let mut events_total = 0u64;
        let mut new_z = self.z;
        for pos in 0..self.live_ones.len() {
            let mut z = self.z;
            let mut x = self.live_ones[pos];
            let events = env.apply_aggregate(t, self.n, &mut z, &mut x, &mut self.live_rngs[pos]);
            if events > 0 {
                self.live_ones[pos] = x;
                self.ones_by_rep[self.live_rep[pos]] = x;
            }
            events_total += events;
            new_z = z;
        }
        if new_z != self.z {
            self.z = new_z;
            self.target = if self.z == 1 { self.n } else { 0 };
        }
        events_total
    }

    fn retire(&mut self, pos: usize) {
        self.pos_of_rep[self.live_rep[pos]] = usize::MAX;
        self.live_ones.swap_remove(pos);
        self.live_rngs.swap_remove(pos);
        self.live_rep.swap_remove(pos);
        if pos < self.live_rep.len() {
            self.pos_of_rep[self.live_rep[pos]] = pos;
        }
    }

    /// Per-replica outcomes under a round budget: `Converged` with the
    /// recorded round for retired replicas, `TimedOut { rounds: budget }`
    /// for the rest.
    #[must_use]
    pub fn outcomes(&self, budget: u64) -> Vec<Outcome> {
        self.converged_at
            .iter()
            .map(|c| match *c {
                Some(rounds) => Outcome::Converged { rounds },
                None => Outcome::TimedOut { rounds: budget },
            })
            .collect()
    }

    /// Runs until every replica has converged or `budget` rounds have
    /// elapsed, and returns the per-replica outcomes in batch order.
    ///
    /// Outcomes are bit-identical to running each replica solo through
    /// [`run_to_consensus`](crate::run::run_to_consensus) with the same
    /// seed and budget.
    pub fn run_to_consensus(&mut self, budget: u64) -> Vec<Outcome> {
        while self.live() > 0 && self.round < budget {
            self.step_round();
        }
        self.outcomes(budget)
    }

    /// [`BatchedAggregateSim::run_to_consensus`] under an environment
    /// schedule: every boundary `t` is perturbed after the consensus check
    /// at `t` (the retirement sweep of the previous round) and before the
    /// step to `t + 1` — the same convention as the solo
    /// [`run_to_consensus_env`](crate::run::run_to_consensus_env), to which
    /// each replica's trajectory is bit-identical.
    pub fn run_to_consensus_env(&mut self, budget: u64, env: &EnvSchedule) -> Vec<Outcome> {
        while self.live() > 0 && self.round < budget {
            self.perturb_round(env);
            self.step_round();
        }
        self.outcomes(budget)
    }

    /// [`BatchedAggregateSim::run_to_consensus`] with observability:
    /// emits per-replica [`Event::RoundCompleted`] events (subject to the
    /// handle's round stride, same label convention as the solo loop) and
    /// one [`Event::ReplicationFinished`] per replica, and batch-adds the
    /// round/sample counters so metric totals match the solo path.
    ///
    /// `reps[i]` is the trace label for batch replica `i` (the replication
    /// index within the experiment). Instrumentation never touches the
    /// RNGs, so outcomes are identical to the uninstrumented run.
    ///
    /// # Panics
    ///
    /// Panics if `reps.len() != self.batch_size()`.
    pub fn run_to_consensus_observed(
        &mut self,
        budget: u64,
        obs: &Obs,
        reps: &[u64],
    ) -> Vec<Outcome> {
        self.run_observed_inner(budget, None, obs, reps)
    }

    /// [`BatchedAggregateSim::run_to_consensus_env`] with the same
    /// observability as [`BatchedAggregateSim::run_to_consensus_observed`],
    /// plus the batch total of perturbation events folded into the
    /// `perturbations_applied` counter.
    ///
    /// # Panics
    ///
    /// Panics if `reps.len() != self.batch_size()`.
    pub fn run_to_consensus_env_observed(
        &mut self,
        budget: u64,
        env: &EnvSchedule,
        obs: &Obs,
        reps: &[u64],
    ) -> Vec<Outcome> {
        self.run_observed_inner(budget, Some(env), obs, reps)
    }

    fn run_observed_inner(
        &mut self,
        budget: u64,
        env: Option<&EnvSchedule>,
        obs: &Obs,
        reps: &[u64],
    ) -> Vec<Outcome> {
        assert_eq!(reps.len(), self.batch_size(), "one trace label per replica");
        if !obs.active() && !obs.metrics_on() {
            return match env {
                Some(env) => self.run_to_consensus_env(budget, env),
                None => self.run_to_consensus(budget),
            };
        }

        let timer = Timer::start();
        let mut perturbations = 0u64;
        if obs.active() {
            // Replicas already at consensus finish at round 0, before any
            // round event — same shape as the solo loop.
            for (rep, &label) in reps.iter().enumerate() {
                if self.converged_at[rep] == Some(0) {
                    obs.emit(&Event::ReplicationFinished {
                        rep: label,
                        outcome: ReplicationOutcome::Converged,
                        rounds: 0,
                        elapsed_us: timer.elapsed_us(),
                    });
                }
            }
        }
        while self.live() > 0 && self.round < budget {
            if let Some(env) = env {
                perturbations += self.perturb_round(env);
            }
            // Sampled 1-in-8: a round is microseconds, so timing every
            // pass would itself cost a few percent (see
            // LATENCY_SAMPLE_EVERY).
            let pass_start = (obs.metrics_on()
                && self.round.is_multiple_of(bitdissem_obs::LATENCY_SAMPLE_EVERY))
            .then(std::time::Instant::now);
            self.step_round();
            if let Some(start) = pass_start {
                obs.metrics().record_latency(
                    LatencyId::RoundPass,
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            if !obs.active() {
                continue;
            }
            // Re-read after the step: a source flip mid-run changes the
            // opinion the round events must carry.
            let source_opinion = self.z as u8;
            let r = self.round;
            if obs.wants_round(r) {
                // Still-live replicas report their post-round state; the
                // replicas retired *this* round report the consensus they
                // just reached (the solo loop emits that round too).
                for pos in 0..self.live_rep.len() {
                    obs.emit(&Event::RoundCompleted {
                        rep: reps[self.live_rep[pos]],
                        round: r,
                        ones: self.live_ones[pos],
                        source_opinion,
                    });
                }
            }
            for (rep, &label) in reps.iter().enumerate() {
                if self.converged_at[rep] == Some(r) {
                    if obs.wants_round(r) {
                        obs.emit(&Event::RoundCompleted {
                            rep: label,
                            round: r,
                            ones: self.ones_by_rep[rep],
                            source_opinion,
                        });
                    }
                    obs.emit(&Event::ReplicationFinished {
                        rep: label,
                        outcome: ReplicationOutcome::Converged,
                        rounds: r,
                        elapsed_us: timer.elapsed_us(),
                    });
                }
            }
        }
        if obs.active() {
            for pos in 0..self.live_rep.len() {
                obs.emit(&Event::ReplicationFinished {
                    rep: reps[self.live_rep[pos]],
                    outcome: ReplicationOutcome::TimedOut,
                    rounds: budget,
                    elapsed_us: timer.elapsed_us(),
                });
            }
        }
        if obs.metrics_on() {
            let samples_per_round = (self.kernel.sample_size() as u64).saturating_mul(self.n);
            let mut rounds_total: u64 = 0;
            let mut samples_total: u64 = 0;
            for c in &self.converged_at {
                // Without retirement every replica runs the full loop, not
                // just up to its first consensus hit.
                let steps = if self.retire_on_consensus { c.unwrap_or(budget) } else { self.round };
                rounds_total += steps;
                samples_total =
                    samples_total.saturating_add(steps.saturating_mul(samples_per_round));
            }
            obs.metrics().add_rounds(rounds_total);
            obs.metrics().add_samples(samples_total);
            let retired = self.converged_at.iter().filter(|c| c.is_some()).count();
            obs.metrics().add_retired(retired as u64);
            if env.is_some() {
                obs.metrics().add_perturbations(perturbations);
            }
        }
        self.outcomes(budget)
    }
}

/// Smallest chunk a pool task will step lock-step.
const MIN_CHUNK: usize = 8;
/// Largest chunk a pool task will step lock-step. Wide enough to amortize
/// kernel/plan-cache sharing, narrow enough that work-stealing can balance
/// heavy-tailed convergence times.
const MAX_CHUNK: usize = 64;

/// Runs the replications named by `indices` through lock-step batches over
/// the shared worker pool and returns their outcomes **in the order of
/// `indices`**.
///
/// The batched counterpart of
/// [`replicate_indices_observed`](crate::runner::replicate_indices_observed):
/// each replica still derives its RNG from its own index via
/// [`replication_seed`], so results are bit-identical to the per-replica
/// engine (and to any partition of the index set across calls — the
/// checkpoint-splicing contract), for every thread count and chunk layout.
///
/// # Panics
///
/// Panics if any batch task panics (the panic is propagated).
#[must_use]
pub fn replicate_batched_observed(
    kernel: &Arc<Kernel>,
    start: Configuration,
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    budget: u64,
    obs: &Obs,
) -> Vec<Outcome> {
    replicate_batched_inner(kernel, start, indices, base_seed, threads, budget, None, obs)
}

/// [`replicate_batched_observed`] under an environment schedule: every
/// replica perturbs and steps through
/// [`BatchedAggregateSim::run_to_consensus_env_observed`], so outcomes stay
/// bit-identical to the solo
/// [`run_to_consensus_env`](crate::run::run_to_consensus_env) with the same
/// replication seed, for every thread count and chunk layout.
///
/// # Panics
///
/// Panics if any batch task panics (the panic is propagated).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn replicate_batched_env_observed(
    kernel: &Arc<Kernel>,
    start: Configuration,
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    budget: u64,
    env: &EnvSchedule,
    obs: &Obs,
) -> Vec<Outcome> {
    replicate_batched_inner(kernel, start, indices, base_seed, threads, budget, Some(env), obs)
}

#[allow(clippy::too_many_arguments)]
fn replicate_batched_inner(
    kernel: &Arc<Kernel>,
    start: Configuration,
    indices: &[usize],
    base_seed: u64,
    threads: Option<usize>,
    budget: u64,
    env: Option<&EnvSchedule>,
    obs: &Obs,
) -> Vec<Outcome> {
    if indices.is_empty() {
        return Vec::new();
    }
    let tasks = indices.len();
    let cap = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .clamp(1, tasks);
    // Aim for ~4 chunks per worker so stealing can balance convergence-time
    // skew; chunk boundaries never affect results.
    let chunk = tasks.div_ceil(cap * 4).clamp(MIN_CHUNK, MAX_CHUNK);

    let _scope = obs.scope("replicate");
    if obs.metrics_on() {
        obs.metrics().add_rng_streams(tasks as u64);
        obs.metrics().add_replications(tasks as u64);
    }

    let slots: Mutex<Vec<Option<Outcome>>> = Mutex::new(vec![None; tasks]);
    let stats = Pool::global().run_chunks(tasks, chunk, cap, &|range| {
        // Batch-level latency span (one per lock-step chunk), distinct
        // from the per-replication "replication" span of the reference
        // engine.
        let _span = obs.span("replication_batch");
        let chunk_indices = &indices[range.clone()];
        let seeds: Vec<u64> =
            chunk_indices.iter().map(|&rep| replication_seed(base_seed, rep as u64)).collect();
        let labels: Vec<u64> = chunk_indices.iter().map(|&rep| rep as u64).collect();
        let mut batch = BatchedAggregateSim::new(Arc::clone(kernel), start, &seeds);
        let outcomes = match env {
            Some(env) => batch.run_to_consensus_env_observed(budget, env, obs, &labels),
            None => batch.run_to_consensus_observed(budget, obs, &labels),
        };
        {
            let mut slots = slots.lock().expect("batched replication slots poisoned");
            for (offset, outcome) in outcomes.into_iter().enumerate() {
                let slot = &mut slots[range.start + offset];
                debug_assert!(slot.is_none(), "replication produced twice");
                *slot = Some(outcome);
            }
        }
        if let Some(progress) = obs.progress() {
            progress.tick(chunk_indices.len() as u64);
        }
    });
    if obs.metrics_on() {
        obs.metrics().add_pool_batch(stats.tasks, stats.steals);
    }

    slots
        .into_inner()
        .expect("batched replication slots poisoned")
        .into_iter()
        .map(|r| r.expect("every replication index is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSim;
    use crate::run::{run_to_consensus, Simulator};
    use crate::runner::replicate_indices_observed;
    use bitdissem_core::dynamics::{Minority, Stay, Voter};
    use bitdissem_core::{Opinion, ProtocolExt};

    fn kernel_of(protocol: &dyn bitdissem_core::Protocol, n: u64) -> Arc<Kernel> {
        Arc::new(protocol.to_table(n).unwrap().compile().unwrap())
    }

    fn seeds_for(base: u64, reps: usize) -> Vec<u64> {
        (0..reps).map(|rep| replication_seed(base, rep as u64)).collect()
    }

    #[test]
    fn batched_matches_solo_bit_for_bit() {
        // Every replica of the batch must reproduce the exact trajectory of
        // a solo AggregateSim with the same seed — not just the same law.
        let n = 300;
        let minority = Minority::new(5).unwrap();
        let kernel = kernel_of(&minority, n);
        let start = Configuration::new(n, Opinion::One, 90).unwrap();
        let base = 424_242;
        let budget = 200_000;

        let solo: Vec<Outcome> = (0..24)
            .map(|rep| {
                let mut sim = AggregateSim::with_kernel(Arc::clone(&kernel), start);
                let mut rng = rng_from(replication_seed(base, rep));
                run_to_consensus(&mut sim, &mut rng, budget)
            })
            .collect();

        let mut batch = BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(base, 24));
        let batched = batch.run_to_consensus(budget);
        assert_eq!(batched, solo);
    }

    #[test]
    fn lock_step_trajectories_match_solo_round_by_round() {
        // Stronger than outcome equality: after every lock-step round, each
        // live replica's ones count equals the solo simulator's state at
        // the same round.
        let n = 200;
        let voter = Voter::new(3).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 60).unwrap();
        let base = 7;
        let reps = 8usize;

        let mut solos: Vec<(AggregateSim, SimRng)> = (0..reps)
            .map(|rep| {
                (
                    AggregateSim::with_kernel(Arc::clone(&kernel), start),
                    rng_from(replication_seed(base, rep as u64)),
                )
            })
            .collect();
        let mut batch =
            BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(base, reps));

        for _round in 0..500 {
            if batch.live() == 0 {
                break;
            }
            batch.step_round();
            for (rep, (sim, rng)) in solos.iter_mut().enumerate() {
                if !sim.configuration().is_correct_consensus() {
                    sim.step_round(rng);
                }
                assert_eq!(
                    batch.ones_of(rep),
                    sim.configuration().ones(),
                    "rep {rep} diverged at round {}",
                    batch.round()
                );
            }
        }
    }

    #[test]
    fn already_converged_start_retires_everything_at_round_zero() {
        let n = 64;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::correct_consensus(n, Opinion::One);
        let mut batch = BatchedAggregateSim::new(kernel, start, &seeds_for(1, 5));
        assert_eq!(batch.live(), 0);
        assert_eq!(batch.run_to_consensus(100), vec![Outcome::Converged { rounds: 0 }; 5]);
        for rep in 0..5 {
            assert_eq!(batch.converged_at(rep), Some(0));
            assert_eq!(batch.ones_of(rep), n);
        }
    }

    #[test]
    fn stay_times_out_with_the_budget() {
        let n = 32;
        let stay = Stay::new(1);
        let kernel = kernel_of(&stay, n);
        let start = Configuration::all_wrong(n, Opinion::One);
        let mut batch = BatchedAggregateSim::new(kernel, start, &seeds_for(3, 4));
        assert_eq!(batch.run_to_consensus(50), vec![Outcome::TimedOut { rounds: 50 }; 4]);
        assert_eq!(batch.round(), 50);
    }

    #[test]
    fn zero_budget_means_no_steps() {
        let n = 32;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::all_wrong(n, Opinion::One);
        let mut batch = BatchedAggregateSim::new(kernel, start, &seeds_for(3, 3));
        assert_eq!(batch.run_to_consensus(0), vec![Outcome::TimedOut { rounds: 0 }; 3]);
        assert_eq!(batch.round(), 0);
    }

    #[test]
    fn retirement_keeps_survivor_bookkeeping_consistent() {
        // Run a batch where replicas converge at different rounds and check
        // ones_of/converged_at stay coherent through the swap_removes.
        let n = 100;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 50).unwrap();
        let reps = 16usize;
        let mut batch = BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(11, reps));
        let outcomes = batch.run_to_consensus(500_000);
        let distinct: std::collections::HashSet<u64> =
            outcomes.iter().filter_map(Outcome::rounds).collect();
        assert!(distinct.len() > 1, "replicas should converge at different rounds");
        for (rep, outcome) in outcomes.iter().enumerate() {
            if outcome.is_converged() {
                assert_eq!(batch.converged_at(rep), outcome.rounds());
                assert_eq!(batch.ones_of(rep), n, "retired replica holds the consensus");
            }
        }
    }

    #[test]
    fn driver_matches_per_replica_engine_bit_for_bit() {
        // The pooled batched driver and the reference per-replica engine
        // must agree on every outcome, for any thread count — including a
        // sparse index subset (the checkpoint-splicing contract).
        let n = 250;
        let minority = Minority::new(3).unwrap();
        let kernel = kernel_of(&minority, n);
        let start = Configuration::new(n, Opinion::One, 70).unwrap();
        let base = 99;
        let budget = 200_000;
        let obs = Obs::none();

        let indices: Vec<usize> = (0..40).collect();
        let reference = replicate_indices_observed(&indices, base, Some(4), &obs, |mut rng, _| {
            let mut sim = AggregateSim::with_kernel(Arc::clone(&kernel), start);
            run_to_consensus(&mut sim, &mut rng, budget)
        });
        for &threads in &[1usize, 2, 7] {
            let batched = replicate_batched_observed(
                &kernel,
                start,
                &indices,
                base,
                Some(threads),
                budget,
                &obs,
            );
            assert_eq!(batched, reference, "threads={threads}");
        }
        let sparse: Vec<usize> = (0..40).filter(|i| i % 3 == 0).collect();
        let spliced =
            replicate_batched_observed(&kernel, start, &sparse, base, Some(2), budget, &obs);
        for (pos, &rep) in sparse.iter().enumerate() {
            assert_eq!(spliced[pos], reference[rep], "sparse rep {rep}");
        }
    }

    #[test]
    fn env_run_matches_solo_env_bit_for_bit() {
        // Under an active schedule the batched engine must still reproduce
        // the exact per-replica trajectory: perturbation draws come from
        // each replica's own stream, in the same perturb-then-step order
        // as the solo loop.
        let n = 64;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 20).unwrap();
        let env: crate::env::EnvSchedule = "flip@30,noise:0.01".parse().unwrap();
        let base = 77;
        let reps = 12usize;
        let budget = 20_000;

        let solo: Vec<Outcome> = (0..reps)
            .map(|rep| {
                let mut sim = AggregateSim::with_kernel(Arc::clone(&kernel), start);
                let mut rng = rng_from(replication_seed(base, rep as u64));
                crate::run::run_to_consensus_env(&mut sim, &env, &mut rng, budget)
            })
            .collect();
        assert!(solo.iter().any(Outcome::is_converged), "some replicas re-converge post-flip");

        let mut batch =
            BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(base, reps));
        assert_eq!(batch.run_to_consensus_env(budget, &env), solo);

        // The pooled driver agrees too, for several thread counts.
        let indices: Vec<usize> = (0..reps).collect();
        for &threads in &[1usize, 3] {
            let driven = replicate_batched_env_observed(
                &kernel,
                start,
                &indices,
                base,
                Some(threads),
                budget,
                &env,
                &Obs::none(),
            );
            assert_eq!(driven, solo, "threads={threads}");
        }
    }

    #[test]
    fn no_retire_mode_keeps_stepping_past_first_consensus() {
        // Conformance contract: with retirement off, a replica that hits
        // the (old) consensus keeps its first-hit round but stays live, so
        // a post-flip checkpoint reads its true, perturbed state.
        let n = 48;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 40).unwrap();
        let env: crate::env::EnvSchedule = "flip@400".parse().unwrap();
        let reps = 6usize;
        let mut batch = BatchedAggregateSim::with_retirement(
            Arc::clone(&kernel),
            start,
            &seeds_for(9, reps),
            false,
        );
        let outcomes = batch.run_to_consensus_env(800, &env);
        assert_eq!(batch.live(), reps, "nothing retires without retirement");
        assert_eq!(batch.round(), 800, "the loop runs the whole budget");
        for (rep, outcome) in outcomes.iter().enumerate() {
            let k = outcome.rounds().expect("voter reaches the pre-flip consensus quickly");
            assert!(k < 400, "rep {rep} converged before the flip");
            assert_eq!(batch.converged_at(rep), Some(k), "first hit is kept, not overwritten");
            assert!(batch.ones_of(rep) < n, "rep {rep} was knocked off the old consensus");
        }
    }

    #[test]
    fn observed_run_matches_unobserved_and_counts_metrics() {
        let n = 80;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 30).unwrap();
        let reps = 6usize;
        let budget = 100_000;

        let plain = BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(5, reps))
            .run_to_consensus(budget);

        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _).with_metrics();
        let labels: Vec<u64> = (0..reps as u64).collect();
        let observed = BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(5, reps))
            .run_to_consensus_observed(budget, &obs, &labels);
        assert_eq!(plain, observed);

        // Metric totals equal the solo-path sums: Σ rounds and Σ rounds·ℓ·n.
        let total_rounds: u64 = observed.iter().map(Outcome::rounds_censored).sum();
        let m = obs.metrics();
        assert_eq!(m.rounds_simulated.load(std::sync::atomic::Ordering::Relaxed), total_rounds);
        assert_eq!(
            m.opinion_samples.load(std::sync::atomic::Ordering::Relaxed),
            total_rounds * n,
            "voter draws ℓ = 1 sample per agent per round"
        );

        // Event shape per replica: round events 1..=k (carrying X_r, the
        // consensus for r = k) plus exactly one ReplicationFinished.
        for (rep, outcome) in observed.iter().enumerate() {
            let k = outcome.rounds().expect("voter converges");
            let rounds: Vec<(u64, u64)> = sink
                .events()
                .iter()
                .filter_map(|e| match *e {
                    Event::RoundCompleted { rep: r, round, ones, .. } if r == rep as u64 => {
                        Some((round, ones))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(rounds.len() as u64, k, "rep {rep}: one event per executed round");
            for (i, &(round, ones)) in rounds.iter().enumerate() {
                assert_eq!(round, i as u64 + 1, "labels start at 1");
                assert!(ones <= n);
            }
            assert_eq!(rounds.last().unwrap().1, n, "final round event shows the consensus");
            let finishes: Vec<(ReplicationOutcome, u64)> = sink
                .events()
                .iter()
                .filter_map(|e| match *e {
                    Event::ReplicationFinished { rep: r, outcome, rounds, .. }
                        if r == rep as u64 =>
                    {
                        Some((outcome, rounds))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(finishes, vec![(ReplicationOutcome::Converged, k)]);
        }
    }

    #[test]
    fn opinion_samples_match_the_per_replica_engine_across_retirement() {
        // Audit of the retirement-round accounting (ISSUE 7 satellite):
        // replicas retired mid-run by swap_remove must be charged ℓ·n for
        // exactly the rounds they ran — the batch metric totals have to
        // equal the per-replica reference engine's, replica by replica in
        // aggregate. Minority ℓ = 3 from an off-center start staggers the
        // retirement rounds, which is the regime the ℓ·n bug family hits.
        // Voter ℓ = 3 from a supermajority start drifts to consensus at
        // replica-dependent rounds.
        let n = 120;
        let voter3 = Voter::new(3).unwrap();
        let kernel = kernel_of(&voter3, n);
        let start = Configuration::new(n, Opinion::One, 80).unwrap();
        let base = 31;
        let reps = 12usize;
        let budget = 400_000;

        let batched_obs = Obs::none().with_metrics();
        let labels: Vec<u64> = (0..reps as u64).collect();
        let outcomes = BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds_for(base, reps))
            .run_to_consensus_observed(budget, &batched_obs, &labels);
        let distinct: std::collections::HashSet<u64> =
            outcomes.iter().filter_map(Outcome::rounds).collect();
        assert!(distinct.len() > 1, "retirement must be staggered for this test to bite");

        let reference_obs = Obs::none().with_metrics();
        let indices: Vec<usize> = (0..reps).collect();
        let reference =
            replicate_indices_observed(&indices, base, Some(2), &reference_obs, |mut rng, rep| {
                let mut sim = AggregateSim::with_kernel(Arc::clone(&kernel), start);
                crate::run::run_to_consensus_observed(
                    &mut sim,
                    &mut rng,
                    budget,
                    &reference_obs,
                    rep as u64,
                )
            });
        assert_eq!(outcomes, reference);

        let load = |obs: &Obs| {
            let m = obs.metrics();
            (
                m.rounds_simulated.load(std::sync::atomic::Ordering::Relaxed),
                m.opinion_samples.load(std::sync::atomic::Ordering::Relaxed),
            )
        };
        let (batched_rounds, batched_samples) = load(&batched_obs);
        let (reference_rounds, reference_samples) = load(&reference_obs);
        assert_eq!(batched_rounds, reference_rounds);
        assert_eq!(batched_samples, reference_samples);
        // And both equal the closed form Σ rounds · ℓ · n.
        let total_rounds: u64 = outcomes.iter().map(Outcome::rounds_censored).sum();
        assert_eq!(batched_rounds, total_rounds);
        assert_eq!(batched_samples, total_rounds * 3 * n);
    }

    #[test]
    fn observed_timeout_emits_timed_out_finishes() {
        let n = 16;
        let stay = Stay::new(1);
        let kernel = kernel_of(&stay, n);
        let start = Configuration::all_wrong(n, Opinion::One);
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _);
        let mut batch = BatchedAggregateSim::new(kernel, start, &seeds_for(2, 3));
        let outcomes = batch.run_to_consensus_observed(25, &obs, &[0, 1, 2]);
        assert_eq!(outcomes, vec![Outcome::TimedOut { rounds: 25 }; 3]);
        let finishes = sink
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::ReplicationFinished {
                        outcome: ReplicationOutcome::TimedOut,
                        rounds: 25,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(finishes, 3);
    }

    #[test]
    fn observed_respects_round_stride() {
        let n = 64;
        let voter = Voter::new(1).unwrap();
        let kernel = kernel_of(&voter, n);
        let start = Configuration::new(n, Opinion::One, 20).unwrap();
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _).with_round_stride(8);
        let mut batch = BatchedAggregateSim::new(kernel, start, &seeds_for(21, 4));
        let outcomes = batch.run_to_consensus_observed(500_000, &obs, &[0, 1, 2, 3]);
        for (rep, outcome) in outcomes.iter().enumerate() {
            let k = outcome.rounds().unwrap();
            let round_events = sink
                .events()
                .iter()
                .filter(|e| matches!(e, Event::RoundCompleted { rep: r, .. } if *r == rep as u64))
                .count() as u64;
            assert_eq!(round_events, k / 8, "rep {rep}: only multiples of 8 traced");
        }
    }
}
