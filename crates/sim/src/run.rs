//! Convergence detection and run control.

use serde::{Deserialize, Serialize};

use bitdissem_core::Configuration;
use bitdissem_obs::{Event, Obs, ReplicationOutcome, Timer};

use crate::env::EnvSchedule;
use crate::rng::SimRng;

/// A steppable simulation of the bit-dissemination process.
///
/// Implementations advance one **parallel round** per [`Simulator::step_round`]
/// call (the sequential simulator performs `n` activations per call so that
/// times stay comparable across settings, as in the paper).
pub trait Simulator {
    /// Current configuration `(n, z, X_t)`.
    fn configuration(&self) -> Configuration;

    /// Advances the process by one parallel round.
    fn step_round(&mut self, rng: &mut SimRng);

    /// Population size (convenience).
    fn n(&self) -> u64 {
        self.configuration().n()
    }

    /// Opinion samples drawn per parallel round, used for the
    /// `opinion_samples` metric. The process draws `ℓ` samples per agent
    /// per round, so simulators with a materialized decision table
    /// override this to `ℓ·n`; the trait default of `n` is only correct
    /// for `ℓ = 1` and exists for lightweight test doubles.
    fn opinion_samples_per_round(&self) -> u64 {
        self.n()
    }

    /// Applies the boundary-`t` environment perturbations to the current
    /// state and returns the number of perturbation events applied (see
    /// [`EnvSchedule`]). Called *after* the consensus check at `t` and
    /// *before* the step that produces `X_{t+1}`.
    ///
    /// The default panics: a simulator must opt into the environment
    /// layer explicitly, because silently ignoring a schedule would make
    /// a "perturbed" run statically indistinguishable from a static one.
    fn perturb(&mut self, env: &EnvSchedule, t: u64, rng: &mut SimRng) -> u64 {
        let _ = (env, t, rng);
        unimplemented!("this simulator does not support environment perturbations")
    }
}

/// Result of running a simulation until consensus or a round budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The correct consensus was reached after `rounds` parallel rounds.
    Converged {
        /// First round at which every agent held the correct opinion.
        rounds: u64,
    },
    /// The round budget was exhausted without reaching consensus.
    TimedOut {
        /// The budget that was exhausted.
        rounds: u64,
    },
}

impl Outcome {
    /// The convergence time, or `None` on timeout.
    #[must_use]
    pub fn rounds(&self) -> Option<u64> {
        match *self {
            Outcome::Converged { rounds } => Some(rounds),
            Outcome::TimedOut { .. } => None,
        }
    }

    /// The convergence time, with timeouts mapped to the budget itself —
    /// a right-censored value, appropriate for medians when fewer than half
    /// of the replications time out.
    #[must_use]
    pub fn rounds_censored(&self) -> u64 {
        match *self {
            Outcome::Converged { rounds } | Outcome::TimedOut { rounds } => rounds,
        }
    }

    /// Returns `true` if the run converged.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }
}

/// Runs `sim` until the **correct consensus** is first reached, or until
/// `max_rounds` rounds have elapsed.
///
/// For Proposition-3-compliant protocols the correct consensus is absorbing,
/// so the first hitting time *is* the convergence time `τ` of the paper. For
/// non-compliant protocols use [`run_with_exit_detection`], which
/// additionally verifies stability.
pub fn run_to_consensus<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: u64,
) -> Outcome {
    for t in 0..=max_rounds {
        if sim.configuration().is_correct_consensus() {
            return Outcome::Converged { rounds: t };
        }
        if t == max_rounds {
            break;
        }
        sim.step_round(rng);
    }
    Outcome::TimedOut { rounds: max_rounds }
}

/// [`run_to_consensus`] with observability: emits a
/// [`Event::RoundCompleted`] per simulated round (subject to the handle's
/// round stride), a closing [`Event::ReplicationFinished`], and
/// batch-adds round/sample counters once at the end of the run.
///
/// Round labels follow the convention documented on
/// [`Event::RoundCompleted`]: the event labeled `round = r` carries the
/// configuration `X_r` — the state *after* `r` completed rounds — so
/// labels start at 1 and a run converging at round `k` reports the
/// consensus in its `round = k` event.
///
/// Instrumentation never touches `rng`, so outcomes are **identical** to
/// [`run_to_consensus`] for the same seed; with a fully disabled handle
/// the call forwards directly to the uninstrumented loop.
pub fn run_to_consensus_observed<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: u64,
    obs: &Obs,
    rep: u64,
) -> Outcome {
    if !obs.active() && !obs.metrics_on() {
        return run_to_consensus(sim, rng, max_rounds);
    }

    let timer = Timer::start();
    let mut rounds_done: u64 = 0;
    let outcome = 'run: {
        for t in 0..=max_rounds {
            if sim.configuration().is_correct_consensus() {
                break 'run Outcome::Converged { rounds: t };
            }
            if t == max_rounds {
                break;
            }
            sim.step_round(rng);
            rounds_done += 1;
            // `rounds_done` rounds have completed, so this event describes
            // X_{rounds_done} (label convention on `Event::RoundCompleted`).
            if obs.wants_round(rounds_done) {
                let config = sim.configuration();
                obs.emit(&Event::RoundCompleted {
                    rep,
                    round: rounds_done,
                    ones: config.ones(),
                    source_opinion: config.correct().as_bit(),
                });
            }
        }
        Outcome::TimedOut { rounds: max_rounds }
    };
    if obs.metrics_on() {
        obs.metrics().add_rounds(rounds_done);
        obs.metrics().add_samples(rounds_done.saturating_mul(sim.opinion_samples_per_round()));
    }
    if obs.active() {
        obs.emit(&Event::ReplicationFinished {
            rep,
            outcome: if outcome.is_converged() {
                ReplicationOutcome::Converged
            } else {
                ReplicationOutcome::TimedOut
            },
            rounds: outcome.rounds_censored(),
            elapsed_us: timer.elapsed_us(),
        });
    }
    outcome
}

/// [`run_to_consensus`] under an environment schedule: the perturbation
/// at boundary `t` is applied after the consensus check at `t` and before
/// the step, so a run that is perturbed *into* the correct consensus is
/// credited at the next boundary, uniformly across every engine.
pub fn run_to_consensus_env<S: Simulator + ?Sized>(
    sim: &mut S,
    env: &EnvSchedule,
    rng: &mut SimRng,
    max_rounds: u64,
) -> Outcome {
    for t in 0..=max_rounds {
        if sim.configuration().is_correct_consensus() {
            return Outcome::Converged { rounds: t };
        }
        if t == max_rounds {
            break;
        }
        sim.perturb(env, t, rng);
        sim.step_round(rng);
    }
    Outcome::TimedOut { rounds: max_rounds }
}

/// [`run_to_consensus_env`] with observability — the same event and
/// counter conventions as [`run_to_consensus_observed`], plus the
/// `perturbations_applied` counter. Instrumentation never touches `rng`,
/// so outcomes are identical to the uninstrumented loop for the same
/// seed.
pub fn run_to_consensus_env_observed<S: Simulator + ?Sized>(
    sim: &mut S,
    env: &EnvSchedule,
    rng: &mut SimRng,
    max_rounds: u64,
    obs: &Obs,
    rep: u64,
) -> Outcome {
    if !obs.active() && !obs.metrics_on() {
        return run_to_consensus_env(sim, env, rng, max_rounds);
    }

    let timer = Timer::start();
    let mut rounds_done: u64 = 0;
    let mut perturbations: u64 = 0;
    let outcome = 'run: {
        for t in 0..=max_rounds {
            if sim.configuration().is_correct_consensus() {
                break 'run Outcome::Converged { rounds: t };
            }
            if t == max_rounds {
                break;
            }
            perturbations += sim.perturb(env, t, rng);
            sim.step_round(rng);
            rounds_done += 1;
            if obs.wants_round(rounds_done) {
                let config = sim.configuration();
                obs.emit(&Event::RoundCompleted {
                    rep,
                    round: rounds_done,
                    ones: config.ones(),
                    source_opinion: config.correct().as_bit(),
                });
            }
        }
        Outcome::TimedOut { rounds: max_rounds }
    };
    if obs.metrics_on() {
        obs.metrics().add_rounds(rounds_done);
        obs.metrics().add_samples(rounds_done.saturating_mul(sim.opinion_samples_per_round()));
        obs.metrics().add_perturbations(perturbations);
    }
    if obs.active() {
        obs.emit(&Event::ReplicationFinished {
            rep,
            outcome: if outcome.is_converged() {
                ReplicationOutcome::Converged
            } else {
                ReplicationOutcome::TimedOut
            },
            rounds: outcome.rounds_censored(),
            elapsed_us: timer.elapsed_us(),
        });
    }
    outcome
}

/// Result of a stability-checked run (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StabilityOutcome {
    /// Consensus was reached at `entered` and held for the whole dwell
    /// window.
    Stable {
        /// Round at which the correct consensus was first reached.
        entered: u64,
    },
    /// Consensus was reached at `entered` but lost again at `exited` —
    /// the protocol cannot maintain it (violates Proposition 3).
    Exited {
        /// Round at which the correct consensus was first reached.
        entered: u64,
        /// First round after `entered` at which some agent deviated.
        exited: u64,
    },
    /// Consensus was never reached within the budget.
    NeverReached {
        /// The exhausted round budget.
        rounds: u64,
    },
}

/// Runs until the correct consensus is reached, then keeps stepping for
/// `dwell` further rounds to check that the consensus *persists* — the
/// "remains with it forever" part of the problem definition, observable in
/// finite time for protocols that leak mass out of the consensus.
pub fn run_with_exit_detection<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: u64,
    dwell: u64,
) -> StabilityOutcome {
    let entered = match run_to_consensus(sim, rng, max_rounds) {
        Outcome::Converged { rounds } => rounds,
        Outcome::TimedOut { rounds } => return StabilityOutcome::NeverReached { rounds },
    };
    for d in 1..=dwell {
        sim.step_round(rng);
        if !sim.configuration().is_correct_consensus() {
            return StabilityOutcome::Exited { entered, exited: entered + d };
        }
    }
    StabilityOutcome::Stable { entered }
}

/// [`run_with_exit_detection`] with observability: the consensus phase runs
/// through [`run_to_consensus_observed`] (round events, replication event,
/// counters), the dwell window emits its own [`Event::RoundCompleted`]
/// events (labeled `entered + d`, continuing the run's round numbering) and
/// adds its rounds and samples to the metrics, and a consensus loss emits a
/// closing [`Event::ConsensusExited`].
///
/// Instrumentation never touches `rng`, so outcomes are **identical** to
/// [`run_with_exit_detection`] for the same seed; with a fully disabled
/// handle the call forwards directly to the uninstrumented loop.
pub fn run_with_exit_detection_observed<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: u64,
    dwell: u64,
    obs: &Obs,
    rep: u64,
) -> StabilityOutcome {
    if !obs.active() && !obs.metrics_on() {
        return run_with_exit_detection(sim, rng, max_rounds, dwell);
    }

    let entered = match run_to_consensus_observed(sim, rng, max_rounds, obs, rep) {
        Outcome::Converged { rounds } => rounds,
        Outcome::TimedOut { rounds } => return StabilityOutcome::NeverReached { rounds },
    };
    let mut dwell_done: u64 = 0;
    let outcome = 'dwell: {
        for d in 1..=dwell {
            sim.step_round(rng);
            dwell_done += 1;
            let config = sim.configuration();
            if obs.wants_round(entered + d) {
                obs.emit(&Event::RoundCompleted {
                    rep,
                    round: entered + d,
                    ones: config.ones(),
                    source_opinion: config.correct().as_bit(),
                });
            }
            if !config.is_correct_consensus() {
                break 'dwell StabilityOutcome::Exited { entered, exited: entered + d };
            }
        }
        StabilityOutcome::Stable { entered }
    };
    if obs.metrics_on() {
        obs.metrics().add_rounds(dwell_done);
        obs.metrics().add_samples(dwell_done.saturating_mul(sim.opinion_samples_per_round()));
    }
    if obs.active() {
        if let StabilityOutcome::Exited { entered, exited } = outcome {
            obs.emit(&Event::ConsensusExited { rep, entered, exited });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSim;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::{NoisyVoter, Stay, Voter};
    use bitdissem_core::Opinion;

    #[test]
    fn outcome_accessors() {
        let c = Outcome::Converged { rounds: 5 };
        let t = Outcome::TimedOut { rounds: 9 };
        assert_eq!(c.rounds(), Some(5));
        assert_eq!(t.rounds(), None);
        assert_eq!(c.rounds_censored(), 5);
        assert_eq!(t.rounds_censored(), 9);
        assert!(c.is_converged());
        assert!(!t.is_converged());
    }

    #[test]
    fn already_converged_returns_zero() {
        let start = Configuration::correct_consensus(16, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(0);
        assert_eq!(run_to_consensus(&mut sim, &mut rng, 10), Outcome::Converged { rounds: 0 });
    }

    #[test]
    fn stay_always_times_out() {
        let start = Configuration::all_wrong(16, Opinion::One);
        let mut sim = AggregateSim::new(&Stay::new(1), start).unwrap();
        let mut rng = rng_from(1);
        assert_eq!(run_to_consensus(&mut sim, &mut rng, 100), Outcome::TimedOut { rounds: 100 });
    }

    #[test]
    fn voter_converges_and_is_stable() {
        let start = Configuration::all_wrong(32, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(2);
        match run_with_exit_detection(&mut sim, &mut rng, 1_000_000, 200) {
            StabilityOutcome::Stable { entered } => assert!(entered > 0),
            other => panic!("expected stable convergence, got {other:?}"),
        }
    }

    #[test]
    fn observed_run_matches_unobserved_exactly() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(64, Opinion::One);
        let plain = {
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            run_to_consensus(&mut sim, &mut rng_from(11), 100_000)
        };
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(sink).with_metrics();
        let observed = {
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            run_to_consensus_observed(&mut sim, &mut rng_from(11), 100_000, &obs, 0)
        };
        assert_eq!(plain, observed);
    }

    #[test]
    fn memory_sink_records_the_exact_event_sequence() {
        // Fixed seed, n = 8, Voter: the trace must be RoundCompleted for
        // rounds 1..=k (the event labeled r carries X_r, per the convention
        // on Event::RoundCompleted) followed by a single
        // ReplicationFinished whose round count equals the outcome.
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(8, Opinion::One);
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _);
        let mut sim = AggregateSim::new(&voter, start).unwrap();
        let outcome = run_to_consensus_observed(&mut sim, &mut rng_from(42), 100_000, &obs, 5);
        let k = outcome.rounds().expect("voter converges on n = 8");
        assert!(k > 0);

        let events = sink.events();
        assert_eq!(events.len() as u64, k + 1, "k round events plus the replication event");
        for (t, ev) in events[..events.len() - 1].iter().enumerate() {
            match *ev {
                bitdissem_obs::Event::RoundCompleted { rep, round, ones, source_opinion } => {
                    assert_eq!(rep, 5);
                    assert_eq!(round, t as u64 + 1, "label r carries X_r; labels start at 1");
                    assert!(ones <= 8);
                    assert_eq!(source_opinion, 1);
                }
                ref other => panic!("expected RoundCompleted at {t}, got {other:?}"),
            }
        }
        // The final round event shows the correct consensus being reached.
        match events[events.len() - 2] {
            bitdissem_obs::Event::RoundCompleted { ones, .. } => assert_eq!(ones, 8),
            ref other => panic!("unexpected event {other:?}"),
        }
        match events[events.len() - 1] {
            bitdissem_obs::Event::ReplicationFinished { rep, outcome, rounds, .. } => {
                assert_eq!(rep, 5);
                assert_eq!(outcome, ReplicationOutcome::Converged);
                assert_eq!(rounds, k);
            }
            ref other => panic!("expected ReplicationFinished, got {other:?}"),
        }
    }

    #[test]
    fn round_stride_thins_the_trace() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(64, Opinion::One);
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _).with_round_stride(8);
        let mut sim = AggregateSim::new(&voter, start).unwrap();
        let outcome = run_to_consensus_observed(&mut sim, &mut rng_from(4), 100_000, &obs, 0);
        let k = outcome.rounds().unwrap();
        let round_events = sink
            .events()
            .iter()
            .filter(|e| matches!(e, bitdissem_obs::Event::RoundCompleted { .. }))
            .count() as u64;
        // Labels run 1..=k, so exactly ⌊k/8⌋ of them are multiples of 8.
        assert_eq!(round_events, k / 8);
    }

    #[test]
    fn observed_metrics_count_rounds_and_samples() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(16, Opinion::One);
        let obs = Obs::none().with_metrics();
        let mut sim = AggregateSim::new(&voter, start).unwrap();
        let outcome = run_to_consensus_observed(&mut sim, &mut rng_from(9), 100_000, &obs, 0);
        let k = outcome.rounds().unwrap();
        let m = obs.metrics();
        assert_eq!(m.rounds_simulated.load(std::sync::atomic::Ordering::Relaxed), k);
        assert_eq!(m.opinion_samples.load(std::sync::atomic::Ordering::Relaxed), k * 16);
    }

    #[test]
    fn observed_metrics_count_ell_samples_per_agent() {
        // Regression: `opinion_samples` must equal ℓ·n·rounds, not
        // n·rounds — every agent draws ℓ opinions per parallel round.
        use bitdissem_core::dynamics::Minority;
        let minority = Minority::new(3).unwrap();
        let start = Configuration::new(16, Opinion::One, 14).unwrap();
        let obs = Obs::none().with_metrics();
        let mut sim = AggregateSim::new(&minority, start).unwrap();
        let outcome = run_to_consensus_observed(&mut sim, &mut rng_from(13), 100_000, &obs, 0);
        let k = outcome.rounds().expect("minority converges from 14/16 correct");
        let m = obs.metrics();
        assert_eq!(m.rounds_simulated.load(std::sync::atomic::Ordering::Relaxed), k);
        assert_eq!(m.opinion_samples.load(std::sync::atomic::Ordering::Relaxed), 3 * 16 * k);
    }

    #[test]
    fn noisy_voter_exits_consensus() {
        // ε = 0.02 with n = 16: consensus is reached quickly (each agent is
        // correct w.p. ≈ 0.98 near consensus) but exits at rate
        // 1 − 0.98¹⁵ ≈ 0.26 per round, so an exit within the dwell window
        // is essentially certain.
        let start = Configuration::new(16, Opinion::One, 14).unwrap();
        let mut sim = AggregateSim::new(&NoisyVoter::new(1, 0.02).unwrap(), start).unwrap();
        let mut rng = rng_from(3);
        match run_with_exit_detection(&mut sim, &mut rng, 1_000_000, 10_000) {
            StabilityOutcome::Exited { entered, exited } => assert!(exited > entered),
            other => panic!("expected consensus exit, got {other:?}"),
        }
    }

    #[test]
    fn observed_exit_detection_matches_unobserved_exactly() {
        let noisy = NoisyVoter::new(1, 0.02).unwrap();
        let start = Configuration::new(16, Opinion::One, 14).unwrap();
        let plain = {
            let mut sim = AggregateSim::new(&noisy, start).unwrap();
            run_with_exit_detection(&mut sim, &mut rng_from(21), 1_000_000, 10_000)
        };
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(sink).with_metrics();
        let observed = {
            let mut sim = AggregateSim::new(&noisy, start).unwrap();
            run_with_exit_detection_observed(
                &mut sim,
                &mut rng_from(21),
                1_000_000,
                10_000,
                &obs,
                0,
            )
        };
        assert_eq!(plain, observed);
    }

    #[test]
    fn observed_exit_detection_emits_consensus_exited() {
        let noisy = NoisyVoter::new(1, 0.02).unwrap();
        let start = Configuration::new(16, Opinion::One, 14).unwrap();
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _).with_metrics();
        let mut sim = AggregateSim::new(&noisy, start).unwrap();
        let outcome = run_with_exit_detection_observed(
            &mut sim,
            &mut rng_from(3),
            1_000_000,
            10_000,
            &obs,
            7,
        );
        let StabilityOutcome::Exited { entered, exited } = outcome else {
            panic!("expected consensus exit, got {outcome:?}");
        };
        let exits: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match *e {
                bitdissem_obs::Event::ConsensusExited { rep, entered, exited } => {
                    Some((rep, entered, exited))
                }
                _ => None,
            })
            .collect();
        assert_eq!(exits, vec![(7, entered, exited)]);
        // The dwell rounds are counted: total rounds exceed the consensus
        // phase by the dwell length actually simulated.
        let m = obs.metrics();
        let rounds = m.rounds_simulated.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(rounds, exited, "entered rounds plus (exited − entered) dwell rounds");
    }

    #[test]
    fn observed_exit_detection_reenters_after_a_forced_exit() {
        // After an exit the simulator sits in a perturbed, off-consensus
        // state. A fresh observed run on the *same* simulator must
        // re-detect consensus entry from that state (its own round
        // numbering starting at zero) and catch the next exit too —
        // nothing in the detector may assume it starts from a virgin
        // state.
        let noisy = NoisyVoter::new(1, 0.02).unwrap();
        let start = Configuration::new(16, Opinion::One, 14).unwrap();
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _).with_metrics();
        let mut sim = AggregateSim::new(&noisy, start).unwrap();
        let mut rng = rng_from(6);
        let first =
            run_with_exit_detection_observed(&mut sim, &mut rng, 1_000_000, 10_000, &obs, 1);
        let StabilityOutcome::Exited { exited: first_exit, .. } = first else {
            panic!("expected a forced exit, got {first:?}");
        };
        assert!(
            !sim.configuration().is_correct_consensus(),
            "the detector leaves the sim in its post-exit state"
        );
        let second =
            run_with_exit_detection_observed(&mut sim, &mut rng, 1_000_000, 10_000, &obs, 2);
        let StabilityOutcome::Exited { entered, exited } = second else {
            panic!("ε = 0.02 on n = 16 exits within 10k dwell rounds w.h.p.: {second:?}");
        };
        assert!(exited > entered, "re-entered at {entered}, re-exited at {exited}");
        let exits: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match *e {
                bitdissem_obs::Event::ConsensusExited { rep, .. } => Some(rep),
                _ => None,
            })
            .collect();
        assert_eq!(exits, vec![1, 2], "one ConsensusExited per run, in order");
        let _ = first_exit;
    }

    #[test]
    fn env_run_matches_unobserved_and_counts_perturbations() {
        let voter = Voter::new(1).unwrap();
        let env: crate::env::EnvSchedule = "reset:k=4@every:25".parse().unwrap();
        let start = Configuration::all_wrong(32, Opinion::One);
        let plain = {
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            run_to_consensus_env(&mut sim, &env, &mut rng_from(31), 100_000)
        };
        let obs = Obs::none().with_metrics();
        let observed = {
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            run_to_consensus_env_observed(&mut sim, &env, &mut rng_from(31), 100_000, &obs, 0)
        };
        assert_eq!(plain, observed);
        assert!(observed.is_converged());
        // Periodic resets slow the climb: perturbations were both applied
        // and counted.
        let m = obs.metrics();
        let p = m.perturbations_applied.load(std::sync::atomic::Ordering::Relaxed);
        let k = observed.rounds().unwrap();
        // Perturbations apply at boundaries 0..k, so one reset fired per
        // full period inside [1, k − 1].
        assert_eq!(p, (k - 1) / 25);
    }

    #[test]
    fn observed_exit_detection_is_silent_when_stable() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(32, Opinion::One);
        let sink = std::sync::Arc::new(bitdissem_obs::MemorySink::new());
        let obs = Obs::none().with_sink(std::sync::Arc::clone(&sink) as _);
        let mut sim = AggregateSim::new(&voter, start).unwrap();
        let outcome =
            run_with_exit_detection_observed(&mut sim, &mut rng_from(2), 1_000_000, 200, &obs, 0);
        assert!(matches!(outcome, StabilityOutcome::Stable { .. }));
        assert!(!sink
            .events()
            .iter()
            .any(|e| matches!(e, bitdissem_obs::Event::ConsensusExited { .. })));
    }
}
