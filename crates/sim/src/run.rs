//! Convergence detection and run control.

use serde::{Deserialize, Serialize};

use bitdissem_core::Configuration;

use crate::rng::SimRng;

/// A steppable simulation of the bit-dissemination process.
///
/// Implementations advance one **parallel round** per [`Simulator::step_round`]
/// call (the sequential simulator performs `n` activations per call so that
/// times stay comparable across settings, as in the paper).
pub trait Simulator {
    /// Current configuration `(n, z, X_t)`.
    fn configuration(&self) -> Configuration;

    /// Advances the process by one parallel round.
    fn step_round(&mut self, rng: &mut SimRng);

    /// Population size (convenience).
    fn n(&self) -> u64 {
        self.configuration().n()
    }
}

/// Result of running a simulation until consensus or a round budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The correct consensus was reached after `rounds` parallel rounds.
    Converged {
        /// First round at which every agent held the correct opinion.
        rounds: u64,
    },
    /// The round budget was exhausted without reaching consensus.
    TimedOut {
        /// The budget that was exhausted.
        rounds: u64,
    },
}

impl Outcome {
    /// The convergence time, or `None` on timeout.
    #[must_use]
    pub fn rounds(&self) -> Option<u64> {
        match *self {
            Outcome::Converged { rounds } => Some(rounds),
            Outcome::TimedOut { .. } => None,
        }
    }

    /// The convergence time, with timeouts mapped to the budget itself —
    /// a right-censored value, appropriate for medians when fewer than half
    /// of the replications time out.
    #[must_use]
    pub fn rounds_censored(&self) -> u64 {
        match *self {
            Outcome::Converged { rounds } | Outcome::TimedOut { rounds } => rounds,
        }
    }

    /// Returns `true` if the run converged.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }
}

/// Runs `sim` until the **correct consensus** is first reached, or until
/// `max_rounds` rounds have elapsed.
///
/// For Proposition-3-compliant protocols the correct consensus is absorbing,
/// so the first hitting time *is* the convergence time `τ` of the paper. For
/// non-compliant protocols use [`run_with_exit_detection`], which
/// additionally verifies stability.
pub fn run_to_consensus<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: u64,
) -> Outcome {
    for t in 0..=max_rounds {
        if sim.configuration().is_correct_consensus() {
            return Outcome::Converged { rounds: t };
        }
        if t == max_rounds {
            break;
        }
        sim.step_round(rng);
    }
    Outcome::TimedOut { rounds: max_rounds }
}

/// Result of a stability-checked run (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StabilityOutcome {
    /// Consensus was reached at `entered` and held for the whole dwell
    /// window.
    Stable {
        /// Round at which the correct consensus was first reached.
        entered: u64,
    },
    /// Consensus was reached at `entered` but lost again at `exited` —
    /// the protocol cannot maintain it (violates Proposition 3).
    Exited {
        /// Round at which the correct consensus was first reached.
        entered: u64,
        /// First round after `entered` at which some agent deviated.
        exited: u64,
    },
    /// Consensus was never reached within the budget.
    NeverReached {
        /// The exhausted round budget.
        rounds: u64,
    },
}

/// Runs until the correct consensus is reached, then keeps stepping for
/// `dwell` further rounds to check that the consensus *persists* — the
/// "remains with it forever" part of the problem definition, observable in
/// finite time for protocols that leak mass out of the consensus.
pub fn run_with_exit_detection<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: u64,
    dwell: u64,
) -> StabilityOutcome {
    let entered = match run_to_consensus(sim, rng, max_rounds) {
        Outcome::Converged { rounds } => rounds,
        Outcome::TimedOut { rounds } => return StabilityOutcome::NeverReached { rounds },
    };
    for d in 1..=dwell {
        sim.step_round(rng);
        if !sim.configuration().is_correct_consensus() {
            return StabilityOutcome::Exited { entered, exited: entered + d };
        }
    }
    StabilityOutcome::Stable { entered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSim;
    use crate::rng::rng_from;
    use bitdissem_core::dynamics::{NoisyVoter, Stay, Voter};
    use bitdissem_core::Opinion;

    #[test]
    fn outcome_accessors() {
        let c = Outcome::Converged { rounds: 5 };
        let t = Outcome::TimedOut { rounds: 9 };
        assert_eq!(c.rounds(), Some(5));
        assert_eq!(t.rounds(), None);
        assert_eq!(c.rounds_censored(), 5);
        assert_eq!(t.rounds_censored(), 9);
        assert!(c.is_converged());
        assert!(!t.is_converged());
    }

    #[test]
    fn already_converged_returns_zero() {
        let start = Configuration::correct_consensus(16, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(0);
        assert_eq!(run_to_consensus(&mut sim, &mut rng, 10), Outcome::Converged { rounds: 0 });
    }

    #[test]
    fn stay_always_times_out() {
        let start = Configuration::all_wrong(16, Opinion::One);
        let mut sim = AggregateSim::new(&Stay::new(1), start).unwrap();
        let mut rng = rng_from(1);
        assert_eq!(run_to_consensus(&mut sim, &mut rng, 100), Outcome::TimedOut { rounds: 100 });
    }

    #[test]
    fn voter_converges_and_is_stable() {
        let start = Configuration::all_wrong(32, Opinion::One);
        let mut sim = AggregateSim::new(&Voter::new(1).unwrap(), start).unwrap();
        let mut rng = rng_from(2);
        match run_with_exit_detection(&mut sim, &mut rng, 1_000_000, 200) {
            StabilityOutcome::Stable { entered } => assert!(entered > 0),
            other => panic!("expected stable convergence, got {other:?}"),
        }
    }

    #[test]
    fn noisy_voter_exits_consensus() {
        // ε = 0.02 with n = 16: consensus is reached quickly (each agent is
        // correct w.p. ≈ 0.98 near consensus) but exits at rate
        // 1 − 0.98¹⁵ ≈ 0.26 per round, so an exit within the dwell window
        // is essentially certain.
        let start = Configuration::new(16, Opinion::One, 14).unwrap();
        let mut sim = AggregateSim::new(&NoisyVoter::new(1, 0.02).unwrap(), start).unwrap();
        let mut rng = rng_from(3);
        match run_with_exit_detection(&mut sim, &mut rng, 1_000_000, 10_000) {
            StabilityOutcome::Exited { entered, exited } => assert!(exited > entered),
            other => panic!("expected consensus exit, got {other:?}"),
        }
    }
}
