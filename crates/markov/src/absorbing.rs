//! Absorbing-chain analysis: exact hitting times of the correct consensus.

use serde::{Deserialize, Serialize};

use crate::chain::AggregateChain;
use crate::linalg::Lu;

/// Exact expected hitting times of the correct consensus for every state of
/// an [`AggregateChain`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HittingTimes {
    lo: u64,
    times: Vec<f64>,
}

impl HittingTimes {
    /// Assembles hitting times from a state offset and per-state values
    /// (crate-internal: used by the sparse solver).
    pub(crate) fn from_parts(lo: u64, times: Vec<f64>) -> Self {
        Self { lo, times }
    }

    /// Expected number of rounds to absorb from state `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the state range used at construction.
    #[must_use]
    pub fn from_state(&self, x: u64) -> f64 {
        assert!(x >= self.lo && (x - self.lo) < self.times.len() as u64, "state {x} out of range");
        self.times[(x - self.lo) as usize]
    }

    /// The worst (largest) expected hitting time and its state.
    #[must_use]
    pub fn worst(&self) -> (u64, f64) {
        let (idx, &t) = self
            .times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        (self.lo + idx as u64, t)
    }

    /// All `(state, expected rounds)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.times.iter().enumerate().map(move |(i, &t)| (self.lo + i as u64, t))
    }
}

/// Computes the exact expected hitting time (in parallel rounds) of the
/// correct consensus from **every** state, by solving the dense linear
/// system `(I − Q)·t = 1` over the transient states with LU decomposition.
///
/// Returns `None` if the system is singular, i.e. the consensus is not
/// reachable from some state (protocols violating Proposition 3 reachability,
/// such as `Stay`).
///
/// Complexity is `O(n³)`; intended for `n ≲ 512`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Voter, Opinion};
/// use bitdissem_markov::{chain::AggregateChain, absorbing::expected_hitting_times};
///
/// let chain = AggregateChain::build(&Voter::new(1)?, 12, Opinion::One)?;
/// let times = expected_hitting_times(&chain).expect("voter absorbs");
/// assert_eq!(times.from_state(12), 0.0);
/// assert!(times.from_state(1) > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn expected_hitting_times(chain: &AggregateChain) -> Option<HittingTimes> {
    let lo = chain.state_lo();
    let hi = chain.state_hi();
    let target = chain.target();
    let states: Vec<u64> = (lo..=hi).collect();
    let transient: Vec<u64> = states.iter().copied().filter(|&x| x != target).collect();
    let m = transient.len();
    // Map state -> transient index.
    let index_of = |x: u64| -> Option<usize> {
        if x == target || x < lo || x > hi {
            None
        } else if x < target {
            Some((x - lo) as usize)
        } else {
            // States above the target shift down by one.
            Some((x - lo - 1) as usize)
        }
    };
    // Assemble I − Q.
    let mut a = vec![vec![0.0; m]; m];
    for (i, &x) in transient.iter().enumerate() {
        let row = chain.transition_row(x);
        a[i][i] = 1.0;
        for (y, &p) in row.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            if let Some(j) = index_of(y as u64) {
                a[i][j] -= p;
            }
        }
    }
    let lu = Lu::factor(a)?;
    let t = lu.solve(&vec![1.0; m]);
    if t.iter().any(|&v| !v.is_finite() || v < -1e-9) {
        return None;
    }
    // Reassemble including the target (time 0).
    let mut times = Vec::with_capacity(m + 1);
    let mut it = t.into_iter();
    for &x in &states {
        if x == target {
            times.push(0.0);
        } else {
            times.push(it.next().expect("one entry per transient state").max(0.0));
        }
    }
    Some(HittingTimes { lo, times })
}

/// Iterates the state distribution of the chain from the point mass at `x0`
/// and returns the survival curve `P(τ > t)` for `t = 0, …, t_max`, where
/// `τ` is the hitting time of the correct consensus.
///
/// Also usable to extract the exact *median* convergence time via
/// [`median_from_survival`].
///
/// # Panics
///
/// Panics if `x0` is outside the valid state range.
#[must_use]
pub fn survival_curve(chain: &AggregateChain, x0: u64, t_max: usize) -> Vec<f64> {
    let n = chain.n() as usize;
    let target = chain.target() as usize;
    let lo = chain.state_lo() as usize;
    let hi = chain.state_hi() as usize;
    // Precompute rows once.
    let rows: Vec<Vec<f64>> = (lo..=hi).map(|x| chain.transition_row(x as u64)).collect();
    let mut dist = vec![0.0; n + 1];
    dist[usize::try_from(x0).expect("x0 fits usize")] = 1.0;
    let mut curve = Vec::with_capacity(t_max + 1);
    curve.push(1.0 - dist[target]);
    for _ in 0..t_max {
        let mut next = vec![0.0; n + 1];
        // Absorbed mass stays at the target.
        next[target] = dist[target];
        for x in lo..=hi {
            if x == target {
                continue;
            }
            let w = dist[x];
            if w == 0.0 {
                continue;
            }
            for (y, &p) in rows[x - lo].iter().enumerate() {
                if p > 0.0 {
                    next[y] += w * p;
                }
            }
        }
        dist = next;
        curve.push((1.0 - dist[target]).max(0.0));
    }
    curve
}

/// Extracts the smallest `t` with `P(τ ≤ t) ≥ q` from a survival curve, or
/// `None` if the curve never reaches that mass.
#[must_use]
pub fn quantile_from_survival(curve: &[f64], q: f64) -> Option<usize> {
    curve.iter().position(|&surv| 1.0 - surv >= q)
}

/// The exact median hitting time from a survival curve.
#[must_use]
pub fn median_from_survival(curve: &[f64]) -> Option<usize> {
    quantile_from_survival(curve, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Majority, Minority, Stay, Voter};
    use bitdissem_core::Opinion;

    #[test]
    fn voter_hitting_times_scale_like_n_log_n() {
        // Known: Voter converges in Θ(n log n) parallel rounds; at n = 32
        // the worst-case expected time is on that order, far below n².
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 32, Opinion::One).unwrap();
        let times = expected_hitting_times(&chain).unwrap();
        let (worst_state, worst) = times.worst();
        assert_eq!(worst_state, 1, "worst from all-wrong configuration");
        let n = 32.0f64;
        assert!(worst > n / 2.0, "worst = {worst}");
        assert!(worst < 3.0 * n * n.ln(), "worst = {worst}");
    }

    #[test]
    fn minority_small_ell_hitting_times_exceed_voter_scale() {
        // With constant ℓ the minority dynamics is also slow (Theorem 1):
        // exact expected times from the adversarial state are Ω(n^{1−ε}).
        let n = 48;
        let chain = AggregateChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
        let times = expected_hitting_times(&chain).unwrap();
        let (_, worst) = times.worst();
        assert!(worst > n as f64 / 4.0, "worst = {worst}");
    }

    #[test]
    fn majority_from_wrong_majority_is_astronomically_slow() {
        let n = 40;
        let chain = AggregateChain::build(&Majority::new(3).unwrap(), n, Opinion::One).unwrap();
        let times = expected_hitting_times(&chain).unwrap();
        // From the all-wrong state, expected time is super-polynomial in n.
        let t_wrong = times.from_state(1);
        assert!(t_wrong > 1e6, "t = {t_wrong}");
        // From the nearly-converged state it is tiny.
        let t_good = times.from_state(n - 1);
        assert!(t_good < 10.0, "t = {t_good}");
    }

    #[test]
    fn stay_is_singular() {
        let chain = AggregateChain::build(&Stay::new(1), 10, Opinion::One).unwrap();
        assert!(expected_hitting_times(&chain).is_none());
    }

    #[test]
    fn survival_curve_is_monotone_and_matches_expected_time() {
        let n = 16;
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap();
        let x0 = 1;
        let curve = survival_curve(&chain, x0, 4000);
        // Monotone non-increasing.
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Sum of survival probabilities equals the expected hitting time
        // (E[τ] = Σ_{t≥0} P(τ > t)), up to curve truncation.
        let e_from_curve: f64 = curve.iter().sum::<f64>() - curve.last().unwrap() * 0.0;
        let times = expected_hitting_times(&chain).unwrap();
        let e_exact = times.from_state(x0);
        assert!(
            (e_from_curve - e_exact).abs() < 0.05 * e_exact + 1.0,
            "{e_from_curve} vs {e_exact}"
        );
    }

    #[test]
    fn median_extraction() {
        let curve = vec![1.0, 0.8, 0.55, 0.45, 0.1];
        assert_eq!(median_from_survival(&curve), Some(3));
        assert_eq!(quantile_from_survival(&curve, 0.9), Some(4));
        assert_eq!(quantile_from_survival(&curve, 0.99), None);
    }

    #[test]
    fn quantile_edge_cases() {
        // q = 0 is satisfied by the very first entry of any non-empty curve
        // (P(τ ≤ t) ≥ 0 always holds).
        assert_eq!(quantile_from_survival(&[1.0, 0.4], 0.0), Some(0));
        // q = 1 requires the curve to actually reach zero survival.
        assert_eq!(quantile_from_survival(&[1.0, 0.4, 0.0], 1.0), Some(2));
        assert_eq!(quantile_from_survival(&[1.0, 0.4, 0.1], 1.0), None);
        // Empty curves have no quantiles at all.
        assert_eq!(quantile_from_survival(&[], 0.0), None);
        assert_eq!(quantile_from_survival(&[], 0.5), None);
        // A flat all-ones curve (absorption never observed) has no median.
        assert_eq!(quantile_from_survival(&[1.0; 8], 0.5), None);
        assert_eq!(median_from_survival(&[1.0; 8]), None);
    }

    #[test]
    fn hitting_times_iter_covers_all_states() {
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::Zero).unwrap();
        let times = expected_hitting_times(&chain).unwrap();
        let collected: Vec<(u64, f64)> = times.iter().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[0].0, 0);
        assert_eq!(collected[0].1, 0.0); // target is state 0 for z = 0
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_state_out_of_range_panics() {
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::One).unwrap();
        let times = expected_hitting_times(&chain).unwrap();
        let _ = times.from_state(0);
    }
}
