//! Mixing-time analysis for non-absorbing (broken-protocol) chains.
//!
//! Proposition-3 violators — e.g. any protocol behind a noisy observation
//! channel (E14) — yield an *ergodic* aggregate chain. Its total-variation
//! mixing time quantifies how fast the population forgets the source: once
//! the chain has mixed, the initial configuration (and hence the correct
//! opinion) is statistically unrecoverable.

use crate::chain::AggregateChain;

/// Total-variation distance between two distributions over the same state
/// space.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share a state space");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / 2.0
}

/// Iterates the chain one round from a distribution over the *valid* states
/// (`state_lo..=state_hi`, indexed from 0) into a caller-provided scratch
/// buffer, using pre-materialized transition rows. Callers ping-pong two
/// buffers so the stepping loop performs no per-step allocation.
fn step_distribution_into(rows: &[Vec<f64>], lo: usize, dist: &[f64], next: &mut [f64]) {
    next.fill(0.0);
    for (i, &w) in dist.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for (y, &p) in rows[i].iter().enumerate() {
            if p > 0.0 {
                next[y - lo] += w * p;
            }
        }
    }
}

/// The ε-mixing time from the two extreme starts: the first round `t` at
/// which the distributions started from the lowest and highest valid states
/// are within total variation `epsilon` of each other. (For a monotone-ish
/// chain this upper-bounds forgetting any pair of starts.)
///
/// Returns `None` if the chain has not coupled within `max_rounds` —
/// in particular for absorbing chains whose two extremes absorb into
/// different behaviours, or chains mixing slower than the budget.
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)`.
#[must_use]
pub fn mixing_time_extremes(
    chain: &AggregateChain,
    epsilon: f64,
    max_rounds: usize,
) -> Option<usize> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let lo = chain.state_lo() as usize;
    let hi = chain.state_hi() as usize;
    let m = hi - lo + 1;
    // Materialize each transition row once: the old per-step
    // `transition_row` recomputation dominated the loop for any t > 1.
    let rows: Vec<Vec<f64>> = (lo..=hi).map(|x| chain.transition_row(x as u64)).collect();
    let mut from_lo = vec![0.0; m];
    from_lo[0] = 1.0;
    let mut from_hi = vec![0.0; m];
    from_hi[m - 1] = 1.0;
    let mut scratch_lo = vec![0.0; m];
    let mut scratch_hi = vec![0.0; m];
    for t in 0..=max_rounds {
        if total_variation(&from_lo, &from_hi) <= epsilon {
            return Some(t);
        }
        if t == max_rounds {
            break;
        }
        step_distribution_into(&rows, lo, &from_lo, &mut scratch_lo);
        step_distribution_into(&rows, lo, &from_hi, &mut scratch_hi);
        std::mem::swap(&mut from_lo, &mut scratch_lo);
        std::mem::swap(&mut from_hi, &mut scratch_hi);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::channel::with_observation_noise;
    use bitdissem_core::dynamics::Voter;
    use bitdissem_core::Opinion;

    #[test]
    fn tv_basic_properties() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "state space")]
    fn tv_rejects_mismatched_lengths() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn noisy_voter_mixes_fast() {
        // δ = 0.1 at n = 32: the chain forgets its start in O(1/δ · log n)
        // rounds — far faster than the clean voter converges.
        let n = 32;
        let noisy = with_observation_noise(&Voter::new(1).unwrap(), 0.1, n).unwrap();
        let chain = AggregateChain::build(&noisy, n, Opinion::One).unwrap();
        let t = mixing_time_extremes(&chain, 0.25, 10_000).expect("ergodic chain mixes");
        assert!(t > 0);
        assert!(t < 500, "mixing time {t}");
    }

    #[test]
    fn more_noise_mixes_faster() {
        let n = 24;
        let mix = |delta: f64| {
            let noisy = with_observation_noise(&Voter::new(1).unwrap(), delta, n).unwrap();
            let chain = AggregateChain::build(&noisy, n, Opinion::One).unwrap();
            mixing_time_extremes(&chain, 0.25, 100_000).expect("mixes")
        };
        assert!(mix(0.25) <= mix(0.02), "{} vs {}", mix(0.25), mix(0.02));
    }

    #[test]
    fn clean_voter_couples_at_absorption_speed() {
        // The clean voter is absorbing: both extremes eventually absorb at
        // the same correct consensus, so the extremes *do* couple — on the
        // Θ(n log n) absorption timescale rather than a fast mixing one.
        let n = 16;
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap();
        let t = mixing_time_extremes(&chain, 0.25, 100_000).expect("absorbs eventually");
        let noisy = with_observation_noise(&Voter::new(1).unwrap(), 0.2, n).unwrap();
        let noisy_chain = AggregateChain::build(&noisy, n, Opinion::One).unwrap();
        let t_noisy = mixing_time_extremes(&noisy_chain, 0.25, 100_000).unwrap();
        assert!(t_noisy < t, "noisy {t_noisy} should forget faster than clean absorbs {t}");
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 64, Opinion::One).unwrap();
        assert_eq!(mixing_time_extremes(&chain, 0.01, 3), None);
    }
}
