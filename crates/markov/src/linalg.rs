//! Dense and tridiagonal linear solvers, built from scratch.
//!
//! The absorbing-chain computations reduce to solving `(I − Q)·t = 1`. For
//! the parallel chain `Q` is dense (any state can jump to any other), so we
//! use LU with partial pivoting; for the sequential birth–death chain `Q` is
//! tridiagonal and the Thomas algorithm solves it in `O(n)`.

use std::sync::Mutex;

use bitdissem_pool::{effective_parallelism, Pool};

/// An LU decomposition with partial pivoting of a square matrix.
///
/// # Examples
///
/// ```
/// use bitdissem_markov::linalg::Lu;
///
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let lu = Lu::factor(a).expect("non-singular");
/// let x = lu.solve(&[5.0, 10.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (L below the diagonal with implicit unit diagonal,
    /// U on and above).
    lu: Vec<Vec<f64>>,
    /// Row permutation applied during pivoting.
    perm: Vec<usize>,
}

impl Lu {
    /// Factors `a` (consumed) into LU form with partial pivoting.
    ///
    /// Returns `None` if the matrix is singular to working precision
    /// (a pivot smaller than `1e-300` in absolute value), or empty/ragged.
    #[must_use]
    pub fn factor(mut a: Vec<Vec<f64>>) -> Option<Self> {
        let n = a.len();
        if n == 0 || a.iter().any(|row| row.len() != n) {
            return None;
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot: pick the largest |entry| in this column.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a[r][col].abs()))
                .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                .expect("non-empty range");
            if pivot_val < 1e-300 || !pivot_val.is_finite() {
                return None;
            }
            if pivot_row != col {
                a.swap(pivot_row, col);
                perm.swap(pivot_row, col);
            }
            let pivot = a[col][col];
            for r in col + 1..n {
                let factor = a[r][col] / pivot;
                a[r][col] = factor;
                if factor != 0.0 {
                    // Manual split to satisfy the borrow checker.
                    let (upper, lower) = a.split_at_mut(r);
                    let src = &upper[col];
                    let dst = &mut lower[0];
                    for c in col + 1..n {
                        dst[c] -= factor * src[c];
                    }
                }
            }
        }
        Some(Self { lu: a, perm })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.len()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side dimension mismatch");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower-triangular).
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[i][j] * xj;
            }
            x[i] = s;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[i][j] * xj;
            }
            x[i] = s / self.lu[i][i];
        }
        x
    }
}

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// The system is `sub[i]·x[i−1] + diag[i]·x[i] + sup[i]·x[i+1] = rhs[i]`
/// with `sub[0]` and `sup[n−1]` ignored.
///
/// Returns `None` on dimension mismatch or a vanishing pivot (the algorithm
/// is stable for the diagonally dominant systems produced by birth–death
/// chains).
#[must_use]
pub fn tridiagonal_solve(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = diag.len();
    if n == 0 || sub.len() != n || sup.len() != n || rhs.len() != n {
        return None;
    }
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0].abs() < 1e-300 {
        return None;
    }
    c[0] = sup[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i] * c[i - 1];
        if denom.abs() < 1e-300 || !denom.is_finite() {
            return None;
        }
        c[i] = sup[i] / denom;
        d[i] = (rhs[i] - sub[i] * d[i - 1]) / denom;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    Some(x)
}

/// Multiplies `A·x` for a dense square matrix (testing helper).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| {
            assert_eq!(row.len(), x.len(), "dimension mismatch");
            row.iter().zip(x).map(|(&aij, &xj)| aij * xj).sum()
        })
        .collect()
}

/// Solves `A·x = b` for a banded sparse matrix in CSR-band form: row `i` has
/// contiguous support `lo[i]..lo[i] + (offsets[i+1] - offsets[i])` with
/// coefficients `vals[offsets[i]..offsets[i+1]]`.
///
/// Uses a row-oriented (up-looking) Doolittle LU **without pivoting**,
/// intended for the diagonally structured M-matrices `I − Q` arising from
/// absorbing-chain hitting-time systems, where all pivots are provably
/// positive when absorption is reachable. The forward substitution is
/// interleaved into the elimination, so `L` is applied to the right-hand
/// side on the fly and discarded; only `U`'s skyline (diagonal to the
/// fill-extended upper profile) is kept for the back substitution. Work is
/// `O(Σ_i b_l(i)·b_u(i))` for lower/upper bandwidths `b_l`, `b_u` — for the
/// aggregate chains' `O(√(n log n))` bands that is `O(n² log n / n)` flops
/// instead of the dense `O(n³)`.
///
/// The dominant cost — applying the already-finalized `U` rows to a fresh
/// panel of rows — is split into per-worker chunks and run on
/// [`Pool::global`]. Each chunk keeps the serial elimination order for its
/// own rows, so the result is **bitwise identical** for every worker count.
///
/// Returns `None` if a pivot is smaller than `1e-300` in magnitude or goes
/// non-finite (singular or numerically unreachable absorption), or if any
/// solution component is non-finite (hitting times beyond f64 range, e.g.
/// `e^Θ(n)` expectations of Majority-like chains at large `n`).
///
/// # Panics
///
/// Panics if the shapes are inconsistent or some row's support does not
/// cover its own diagonal (`lo[i] <= i < lo[i] + len_i`).
#[must_use]
pub fn banded_solve(
    lo: &[usize],
    offsets: &[usize],
    vals: &[f64],
    rhs: &[f64],
) -> Option<Vec<f64>> {
    // Rows are eliminated in panels of this many: one streamed pass over the
    // earlier U rows updates the whole panel, so each U row is read from
    // memory once per panel instead of once per row — the elimination is
    // otherwise bandwidth-bound, not flop-bound, at large bandwidths.
    const PANEL: usize = 48;
    let m = rhs.len();
    assert_eq!(lo.len(), m, "one band offset per row");
    assert_eq!(offsets.len(), m + 1, "offsets bracket every row");
    assert_eq!(*offsets.last().unwrap_or(&0), vals.len(), "offsets cover vals");
    for i in 0..m {
        let len = offsets[i + 1] - offsets[i];
        assert!(
            lo[i] <= i && i < lo[i] + len && lo[i] + len <= m,
            "row {i} support [{}, {}) must contain the diagonal",
            lo[i],
            lo[i] + len
        );
    }
    let workers = effective_parallelism().max(1);
    // U's skyline: row i spans columns i..uend[i], stored at uoff[i].
    let mut uoff: Vec<usize> = Vec::with_capacity(m);
    let mut uend: Vec<usize> = Vec::with_capacity(m);
    let mut uvals: Vec<f64> = Vec::new();
    let mut y = vec![0.0; m];
    // Per-panel-row dense scratch, kept all-zero between panels.
    let mut w: Vec<Vec<f64>> = (0..PANEL.min(m)).map(|_| vec![0.0; m]).collect();
    let mut yp = [0.0; PANEL];
    let mut ubs = [0usize; PANEL];
    let mut i0 = 0;
    while i0 < m {
        let pb = PANEL.min(m - i0);
        // External phase: scatter each panel row, then apply every earlier
        // U row in one streamed pass over the chunk (k ascending keeps the
        // Doolittle dependency order — a panel row's entry at k is final
        // before it is used as a factor). Panel rows only read finalized U
        // rows, so chunks of rows are independent and fan out over the pool;
        // within a chunk the k-outer loop still reads each U row once.
        let ext_chunk = |t0: usize, ws: &mut [&mut [f64]], ys: &mut [f64], ubc: &mut [usize]| {
            let mut kmin = i0;
            for (j, wt) in ws.iter_mut().enumerate() {
                let i = i0 + t0 + j;
                let row = &vals[offsets[i]..offsets[i + 1]];
                let rl = lo[i];
                wt[rl..rl + row.len()].copy_from_slice(row);
                ubc[j] = rl + row.len();
                ys[j] = rhs[i];
                kmin = kmin.min(rl);
            }
            for k in kmin..i0 {
                let urow = &uvals[uoff[k]..uoff[k] + (uend[k] - k)];
                let ud = urow[0];
                let ue = uend[k];
                let yk = y[k];
                for (j, wt) in ws.iter_mut().enumerate() {
                    let wk = wt[k];
                    if wk == 0.0 {
                        continue;
                    }
                    wt[k] = 0.0;
                    let factor = wk / ud;
                    let dst = &mut wt[k + 1..ue];
                    for (d, &u) in dst.iter_mut().zip(&urow[1..]) {
                        *d -= factor * u;
                    }
                    ys[j] -= factor * yk;
                    if ue > ubc[j] {
                        ubc[j] = ue;
                    }
                }
            }
        };
        let nchunks = workers.min(pb);
        let chunk = pb.div_ceil(nchunks);
        if nchunks > 1 {
            type ChunkCell<'a> = Mutex<(usize, Vec<&'a mut [f64]>, Vec<f64>, Vec<usize>)>;
            let mut rows = w.iter_mut().take(pb).map(Vec::as_mut_slice);
            let cells: Vec<ChunkCell> = (0..nchunks)
                .map(|c| {
                    let ws: Vec<&mut [f64]> = rows.by_ref().take(chunk).collect();
                    let len = ws.len();
                    Mutex::new((c * chunk, ws, vec![0.0; len], vec![0usize; len]))
                })
                .collect();
            Pool::global().run_batch(nchunks, nchunks, &|c| {
                let mut guard = cells[c].lock().expect("panel chunk poisoned");
                let (t0, ws, ys, ubc) = &mut *guard;
                ext_chunk(*t0, ws, ys, ubc);
            });
            for cell in cells {
                let (t0, _, ys, ubc) = cell.into_inner().expect("panel chunk poisoned");
                for (j, (yv, ubv)) in ys.into_iter().zip(ubc).enumerate() {
                    yp[t0 + j] = yv;
                    ubs[t0 + j] = ubv;
                }
            }
        } else {
            let mut ws: Vec<&mut [f64]> = w.iter_mut().take(pb).map(Vec::as_mut_slice).collect();
            ext_chunk(0, &mut ws, &mut yp[..pb], &mut ubs[..pb]);
        }
        // Internal phase: eliminate within the panel against the U rows
        // stored moments ago (cache-resident), then emit U row i.
        for t in 0..pb {
            let i = i0 + t;
            for k in i0..i {
                let wk = w[t][k];
                if wk == 0.0 {
                    continue;
                }
                w[t][k] = 0.0;
                let urow = &uvals[uoff[k]..uoff[k] + (uend[k] - k)];
                let factor = wk / urow[0];
                let ue = uend[k];
                let dst = &mut w[t][k + 1..ue];
                for (d, &u) in dst.iter_mut().zip(&urow[1..]) {
                    *d -= factor * u;
                }
                yp[t] -= factor * y[k];
                if ue > ubs[t] {
                    ubs[t] = ue;
                }
            }
            let diag = w[t][i];
            if !diag.is_finite() || diag.abs() < 1e-300 {
                return None;
            }
            let mut e = ubs[t];
            while e > i + 1 && w[t][e - 1] == 0.0 {
                e -= 1;
            }
            uoff.push(uvals.len());
            uend.push(e);
            uvals.extend_from_slice(&w[t][i..e]);
            w[t][i..e].fill(0.0);
            y[i] = yp[t];
        }
        i0 += pb;
    }
    // Back substitution on U's skyline.
    let mut x = vec![0.0; m];
    for i in (0..m).rev() {
        let urow = &uvals[uoff[i]..uoff[i] + (uend[i] - i)];
        let mut s = y[i];
        for (&u, &xj) in urow[1..].iter().zip(&x[i + 1..uend[i]]) {
            s -= u * xj;
        }
        x[i] = s / urow[0];
    }
    if x.iter().any(|v| !v.is_finite()) {
        return None;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lu_solves_identity() {
        let a = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let lu = Lu::factor(a).unwrap();
        let x = lu.solve(&[3.0, -1.0, 2.5]);
        assert_eq!(x, vec![3.0, -1.0, 2.5]);
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let lu = Lu::factor(a).unwrap();
        let x = lu.solve(&[7.0, 9.0]);
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(Lu::factor(a).is_none());
        assert!(Lu::factor(Vec::new()).is_none());
        // Ragged input.
        assert!(Lu::factor(vec![vec![1.0, 2.0], vec![1.0]]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn lu_solve_dimension_mismatch_panics() {
        let lu = Lu::factor(vec![vec![1.0]]).unwrap();
        let _ = lu.solve(&[1.0, 2.0]);
    }

    #[test]
    fn thomas_solves_small_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4, 8, 8] -> x = [1, 2, 3]
        let x = tridiagonal_solve(
            &[0.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0],
            &[1.0, 1.0, 0.0],
            &[4.0, 8.0, 8.0],
        )
        .unwrap();
        for (xi, expect) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn thomas_rejects_mismatched_lengths() {
        assert!(tridiagonal_solve(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]).is_none());
        assert!(tridiagonal_solve(&[], &[], &[], &[]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_lu_roundtrip(
            n in 1usize..8,
            seed in proptest::collection::vec(-5.0f64..5.0, 64 + 8),
        ) {
            // Build a diagonally dominant (hence non-singular) matrix.
            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                let mut row_sum = 0.0;
                for j in 0..n {
                    a[i][j] = seed[i * 8 + j];
                    row_sum += a[i][j].abs();
                }
                a[i][i] = row_sum + 1.0;
            }
            let x_true: Vec<f64> = seed[64..64 + n].to_vec();
            let b = mat_vec(&a, &x_true);
            let lu = Lu::factor(a).unwrap();
            let x = lu.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-8, "{} vs {}", xi, ti);
            }
        }

        #[test]
        fn prop_thomas_matches_lu(
            n in 2usize..10,
            vals in proptest::collection::vec(0.1f64..2.0, 40),
        ) {
            // Diagonally dominant tridiagonal system.
            let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { vals[i % vals.len()] }).collect();
            let sup: Vec<f64> = (0..n).map(|i| if i == n - 1 { 0.0 } else { vals[(i + 7) % vals.len()] }).collect();
            let diag: Vec<f64> = (0..n).map(|i| sub[i] + sup[i] + 1.0 + vals[(i + 13) % vals.len()]).collect();
            let rhs: Vec<f64> = (0..n).map(|i| vals[(i + 23) % vals.len()] - 1.0).collect();

            let x_thomas = tridiagonal_solve(&sub, &diag, &sup, &rhs).unwrap();

            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                a[i][i] = diag[i];
                if i > 0 { a[i][i - 1] = sub[i]; }
                if i + 1 < n { a[i][i + 1] = sup[i]; }
            }
            let x_lu = Lu::factor(a).unwrap().solve(&rhs);
            for (a, b) in x_thomas.iter().zip(&x_lu) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }
    }
}
