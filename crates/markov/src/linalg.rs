//! Dense and tridiagonal linear solvers, built from scratch.
//!
//! The absorbing-chain computations reduce to solving `(I − Q)·t = 1`. For
//! the parallel chain `Q` is dense (any state can jump to any other), so we
//! use LU with partial pivoting; for the sequential birth–death chain `Q` is
//! tridiagonal and the Thomas algorithm solves it in `O(n)`.

/// An LU decomposition with partial pivoting of a square matrix.
///
/// # Examples
///
/// ```
/// use bitdissem_markov::linalg::Lu;
///
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let lu = Lu::factor(a).expect("non-singular");
/// let x = lu.solve(&[5.0, 10.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (L below the diagonal with implicit unit diagonal,
    /// U on and above).
    lu: Vec<Vec<f64>>,
    /// Row permutation applied during pivoting.
    perm: Vec<usize>,
}

impl Lu {
    /// Factors `a` (consumed) into LU form with partial pivoting.
    ///
    /// Returns `None` if the matrix is singular to working precision
    /// (a pivot smaller than `1e-300` in absolute value), or empty/ragged.
    #[must_use]
    pub fn factor(mut a: Vec<Vec<f64>>) -> Option<Self> {
        let n = a.len();
        if n == 0 || a.iter().any(|row| row.len() != n) {
            return None;
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot: pick the largest |entry| in this column.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a[r][col].abs()))
                .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                .expect("non-empty range");
            if pivot_val < 1e-300 || !pivot_val.is_finite() {
                return None;
            }
            if pivot_row != col {
                a.swap(pivot_row, col);
                perm.swap(pivot_row, col);
            }
            let pivot = a[col][col];
            for r in col + 1..n {
                let factor = a[r][col] / pivot;
                a[r][col] = factor;
                if factor != 0.0 {
                    // Manual split to satisfy the borrow checker.
                    let (upper, lower) = a.split_at_mut(r);
                    let src = &upper[col];
                    let dst = &mut lower[0];
                    for c in col + 1..n {
                        dst[c] -= factor * src[c];
                    }
                }
            }
        }
        Some(Self { lu: a, perm })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.len()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side dimension mismatch");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower-triangular).
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[i][j] * xj;
            }
            x[i] = s;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[i][j] * xj;
            }
            x[i] = s / self.lu[i][i];
        }
        x
    }
}

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// The system is `sub[i]·x[i−1] + diag[i]·x[i] + sup[i]·x[i+1] = rhs[i]`
/// with `sub[0]` and `sup[n−1]` ignored.
///
/// Returns `None` on dimension mismatch or a vanishing pivot (the algorithm
/// is stable for the diagonally dominant systems produced by birth–death
/// chains).
#[must_use]
pub fn tridiagonal_solve(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = diag.len();
    if n == 0 || sub.len() != n || sup.len() != n || rhs.len() != n {
        return None;
    }
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0].abs() < 1e-300 {
        return None;
    }
    c[0] = sup[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i] * c[i - 1];
        if denom.abs() < 1e-300 || !denom.is_finite() {
            return None;
        }
        c[i] = sup[i] / denom;
        d[i] = (rhs[i] - sub[i] * d[i - 1]) / denom;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    Some(x)
}

/// Multiplies `A·x` for a dense square matrix (testing helper).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| {
            assert_eq!(row.len(), x.len(), "dimension mismatch");
            row.iter().zip(x).map(|(&aij, &xj)| aij * xj).sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lu_solves_identity() {
        let a = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let lu = Lu::factor(a).unwrap();
        let x = lu.solve(&[3.0, -1.0, 2.5]);
        assert_eq!(x, vec![3.0, -1.0, 2.5]);
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let lu = Lu::factor(a).unwrap();
        let x = lu.solve(&[7.0, 9.0]);
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(Lu::factor(a).is_none());
        assert!(Lu::factor(Vec::new()).is_none());
        // Ragged input.
        assert!(Lu::factor(vec![vec![1.0, 2.0], vec![1.0]]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn lu_solve_dimension_mismatch_panics() {
        let lu = Lu::factor(vec![vec![1.0]]).unwrap();
        let _ = lu.solve(&[1.0, 2.0]);
    }

    #[test]
    fn thomas_solves_small_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4, 8, 8] -> x = [1, 2, 3]
        let x = tridiagonal_solve(
            &[0.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0],
            &[1.0, 1.0, 0.0],
            &[4.0, 8.0, 8.0],
        )
        .unwrap();
        for (xi, expect) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn thomas_rejects_mismatched_lengths() {
        assert!(tridiagonal_solve(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]).is_none());
        assert!(tridiagonal_solve(&[], &[], &[], &[]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_lu_roundtrip(
            n in 1usize..8,
            seed in proptest::collection::vec(-5.0f64..5.0, 64 + 8),
        ) {
            // Build a diagonally dominant (hence non-singular) matrix.
            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                let mut row_sum = 0.0;
                for j in 0..n {
                    a[i][j] = seed[i * 8 + j];
                    row_sum += a[i][j].abs();
                }
                a[i][i] = row_sum + 1.0;
            }
            let x_true: Vec<f64> = seed[64..64 + n].to_vec();
            let b = mat_vec(&a, &x_true);
            let lu = Lu::factor(a).unwrap();
            let x = lu.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-8, "{} vs {}", xi, ti);
            }
        }

        #[test]
        fn prop_thomas_matches_lu(
            n in 2usize..10,
            vals in proptest::collection::vec(0.1f64..2.0, 40),
        ) {
            // Diagonally dominant tridiagonal system.
            let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { vals[i % vals.len()] }).collect();
            let sup: Vec<f64> = (0..n).map(|i| if i == n - 1 { 0.0 } else { vals[(i + 7) % vals.len()] }).collect();
            let diag: Vec<f64> = (0..n).map(|i| sub[i] + sup[i] + 1.0 + vals[(i + 13) % vals.len()]).collect();
            let rhs: Vec<f64> = (0..n).map(|i| vals[(i + 23) % vals.len()] - 1.0).collect();

            let x_thomas = tridiagonal_solve(&sub, &diag, &sup, &rhs).unwrap();

            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                a[i][i] = diag[i];
                if i > 0 { a[i][i - 1] = sub[i]; }
                if i + 1 < n { a[i][i + 1] = sup[i]; }
            }
            let x_lu = Lu::factor(a).unwrap().solve(&rhs);
            for (a, b) in x_thomas.iter().zip(&x_lu) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }
    }
}
