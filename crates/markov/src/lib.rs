//! Exact Markov-chain analysis of the bit-dissemination process.
//!
//! Because agents are anonymous and memory-less, the global state of the
//! system is the pair `(z, X_t)` (Section 1.1 of the paper), so for a fixed
//! correct opinion the process is a Markov chain on `{0, …, n}`. For small
//! `n` everything about it can be computed *exactly*, with no sampling
//! error:
//!
//! * [`chain::AggregateChain`] — the parallel-setting chain: one row of the
//!   transition matrix is the convolution of two binomials (the updated
//!   1-holders that stay and the 0-holders that flip);
//! * [`chain::SequentialChain`] — the sequential-setting birth–death chain
//!   (one uniformly random non-source agent activates per step), whose
//!   hitting times follow from an `O(n)` tridiagonal solve;
//! * [`absorbing`] — expected and median hitting times of the correct
//!   consensus, plus full survival curves, via a dense LU solve
//!   ([`linalg`]) or distribution iteration;
//! * [`sparse`] — the same analytics at `n ≥ 10⁵`: an ε-truncated banded
//!   operator ([`sparse::SparseChain`]) built in parallel, with banded
//!   skyline hitting-time solves, log-space survival curves, pruned
//!   distribution stepping and spectral gaps — each exact up to an
//!   explicitly tracked truncation tail bound.
//!
//! These exact values validate the simulation engine (experiment E10) and
//! provide ground truth for the Voter's `Θ(n log n)` behaviour at small `n`.
//!
//! # Example
//!
//! ```
//! use bitdissem_core::{dynamics::Voter, Opinion};
//! use bitdissem_markov::chain::AggregateChain;
//!
//! let chain = AggregateChain::build(&Voter::new(1)?, 16, Opinion::One)?;
//! let row = chain.transition_row(8);
//! assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorbing;
pub mod chain;
pub mod linalg;
pub mod mixing;
pub mod optimize;
pub mod sparse;
pub mod stationary;

pub use absorbing::{expected_hitting_times, survival_curve, HittingTimes};
pub use chain::{AggregateChain, SequentialChain};
pub use sparse::{
    expected_hitting_times_sparse, mixing_time_extremes_sparse, spectral_gap, spectral_gap_shifted,
    survival_curve_sparse, SparseChain,
};
