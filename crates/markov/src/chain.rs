//! The exact aggregate chains of the bit-dissemination process.

use bitdissem_core::{Configuration, Opinion, Protocol, ProtocolError, ProtocolExt};
use bitdissem_poly::binomial::{binomial_pmf_into, binomial_pmf_vec};

/// The parallel-setting aggregate chain on `X_t` (number of ones), for a
/// fixed correct opinion `z`.
///
/// Conditioned on `X_t = x`, every non-source 1-holder independently keeps
/// opinion 1 with probability `P₁(x/n)` and every non-source 0-holder flips
/// to 1 with probability `P₀(x/n)` (Eq. 4 of the paper), so
///
/// ```text
/// X_{t+1} = z + Bin(x − z, P₁) + Bin(n − x − (1 − z), P₀)
/// ```
///
/// — the exact law of the process, computable row by row as a convolution of
/// two binomial PMFs. Valid states are `x ∈ {z, …, n − 1 + z}` (the source
/// always holds `z`).
#[derive(Debug, Clone)]
pub struct AggregateChain {
    n: u64,
    correct: Opinion,
    /// `P₀(x/n)` and `P₁(x/n)` indexed by `x ∈ 0..=n` (entries outside the
    /// valid state range are filled but unused).
    p0: Vec<f64>,
    p1: Vec<f64>,
    protocol_name: String,
}

impl AggregateChain {
    /// Builds the chain for `protocol` at population size `n` with correct
    /// opinion `correct`.
    ///
    /// # Errors
    ///
    /// Propagates table materialization errors
    /// ([`ProtocolError::InvalidProbability`]) from the protocol. This
    /// constructor never returns [`ProtocolError::ZeroSampleSize`] —
    /// population-size validation lives in the configuration type.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a chain needs at least one non-source agent).
    pub fn build<P: Protocol + ?Sized>(
        protocol: &P,
        n: u64,
        correct: Opinion,
    ) -> Result<Self, ProtocolError> {
        assert!(n >= 2, "need at least 2 agents");
        let table = protocol.to_table(n)?;
        let ell = table.sample_size();
        let mut p0 = Vec::with_capacity(n as usize + 1);
        let mut p1 = Vec::with_capacity(n as usize + 1);
        let mut weights = vec![0.0; ell + 1];
        for x in 0..=n {
            let p = x as f64 / n as f64;
            binomial_pmf_into(ell as u64, p, &mut weights);
            let mut a0 = 0.0;
            let mut a1 = 0.0;
            for (k, &w) in weights.iter().enumerate() {
                a0 += w * table.g(Opinion::Zero, k);
                a1 += w * table.g(Opinion::One, k);
            }
            p0.push(a0.clamp(0.0, 1.0));
            p1.push(a1.clamp(0.0, 1.0));
        }
        Ok(Self { n, correct, p0, p1, protocol_name: protocol.name() })
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The correct opinion.
    #[must_use]
    pub fn correct(&self) -> Opinion {
        self.correct
    }

    /// Name of the underlying protocol.
    #[must_use]
    pub fn protocol_name(&self) -> &str {
        &self.protocol_name
    }

    /// Smallest valid state (`z`: the source always holds `z`).
    #[must_use]
    pub fn state_lo(&self) -> u64 {
        u64::from(self.correct.as_bit())
    }

    /// Largest valid state (`n − 1 + z`).
    #[must_use]
    pub fn state_hi(&self) -> u64 {
        self.n - 1 + u64::from(self.correct.as_bit())
    }

    /// The absorbing target state `n·z` (correct consensus).
    #[must_use]
    pub fn target(&self) -> u64 {
        match self.correct {
            Opinion::One => self.n,
            Opinion::Zero => 0,
        }
    }

    /// `P₀(x/n)`: probability a 0-holder adopts 1 next round.
    ///
    /// # Panics
    ///
    /// Panics if `x > n`.
    #[must_use]
    pub fn p0(&self, x: u64) -> f64 {
        self.p0[usize::try_from(x).expect("x fits usize")]
    }

    /// `P₁(x/n)`: probability a 1-holder keeps 1 next round.
    ///
    /// # Panics
    ///
    /// Panics if `x > n`.
    #[must_use]
    pub fn p1(&self, x: u64) -> f64 {
        self.p1[usize::try_from(x).expect("x fits usize")]
    }

    /// Exact conditional expectation `E[X_{t+1} | X_t = x]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn expected_next(&self, x: u64) -> f64 {
        self.assert_valid_state(x);
        let z = u64::from(self.correct.as_bit());
        let ones = (x - z) as f64;
        let zeros = (self.n - x - (1 - z)) as f64;
        z as f64 + ones * self.p1(x) + zeros * self.p0(x)
    }

    /// One full row of the transition matrix: the distribution of `X_{t+1}`
    /// given `X_t = x`, as a vector indexed by `y ∈ 0..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn transition_row(&self, x: u64) -> Vec<f64> {
        self.assert_valid_state(x);
        let z = u64::from(self.correct.as_bit());
        let ones = x - z;
        let zeros = self.n - x - (1 - z);
        let pmf_keep = binomial_pmf_vec(ones, self.p1(x));
        let pmf_flip = binomial_pmf_vec(zeros, self.p0(x));
        let mut row = vec![0.0; self.n as usize + 1];
        for (a, &wa) in pmf_keep.iter().enumerate() {
            if wa == 0.0 {
                continue;
            }
            for (b, &wb) in pmf_flip.iter().enumerate() {
                row[z as usize + a + b] += wa * wb;
            }
        }
        row
    }

    /// Iterator over all valid states.
    pub fn states(&self) -> impl Iterator<Item = u64> {
        self.state_lo()..=self.state_hi()
    }

    /// The configuration corresponding to state `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn configuration(&self, x: u64) -> Configuration {
        self.assert_valid_state(x);
        Configuration::new(self.n, self.correct, x).expect("state range is valid")
    }

    fn assert_valid_state(&self, x: u64) {
        assert!(
            (self.state_lo()..=self.state_hi()).contains(&x),
            "state {x} outside valid range [{}, {}]",
            self.state_lo(),
            self.state_hi()
        );
    }
}

/// The sequential-setting birth–death chain: per step one uniformly random
/// *non-source* agent activates and resamples.
///
/// From state `x` (total ones), the chain moves
///
/// * up with probability `u(x) = (#non-source zeros / (n−1)) · P₀(x/n)`,
/// * down with probability `d(x) = (#non-source ones / (n−1)) · (1 − P₁(x/n))`,
///
/// and stays otherwise — exactly the birth–death structure that \[14\]
/// exploits for its `Ω(n)` sequential lower bound. Times are in
/// *activations*; divide by `n` for parallel rounds.
#[derive(Debug, Clone)]
pub struct SequentialChain {
    inner: AggregateChain,
}

impl SequentialChain {
    /// Builds the sequential chain for `protocol` at size `n` with correct
    /// opinion `correct`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AggregateChain::build`].
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn build<P: Protocol + ?Sized>(
        protocol: &P,
        n: u64,
        correct: Opinion,
    ) -> Result<Self, ProtocolError> {
        Ok(Self { inner: AggregateChain::build(protocol, n, correct)? })
    }

    /// The underlying per-state adoption probabilities.
    #[must_use]
    pub fn aggregate(&self) -> &AggregateChain {
        &self.inner
    }

    /// Up-transition probability `P(X_{t+1} = x + 1 | X_t = x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn up(&self, x: u64) -> f64 {
        self.inner.assert_valid_state(x);
        let n = self.inner.n;
        let z = u64::from(self.inner.correct.as_bit());
        let zeros = (n - x - (1 - z)) as f64;
        zeros / (n - 1) as f64 * self.inner.p0(x)
    }

    /// Down-transition probability `P(X_{t+1} = x − 1 | X_t = x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn down(&self, x: u64) -> f64 {
        self.inner.assert_valid_state(x);
        let n = self.inner.n;
        let z = u64::from(self.inner.correct.as_bit());
        let ones = (x - z) as f64;
        ones / (n - 1) as f64 * (1.0 - self.inner.p1(x))
    }

    /// Exact expected number of **activations** to reach the correct
    /// consensus from each state, via an `O(n)` tridiagonal solve of
    /// `(I − Q)·t = 1`.
    ///
    /// Returns `None` if the system is singular — i.e. the consensus is not
    /// reachable from some state (broken protocols like `Stay`).
    ///
    /// The result is indexed by state offset from
    /// [`AggregateChain::state_lo`]; the target state has expected time 0.
    #[must_use]
    pub fn expected_activations(&self) -> Option<Vec<f64>> {
        let lo = self.inner.state_lo();
        let hi = self.inner.state_hi();
        let target = self.inner.target();
        let states: Vec<u64> = (lo..=hi).collect();
        // Transient states: all but the target (which is lo or hi).
        let transient: Vec<u64> = states.iter().copied().filter(|&x| x != target).collect();
        let m = transient.len();
        if m == 0 {
            return Some(vec![0.0]);
        }
        // Build the tridiagonal system over transient states: for state x,
        // t(x) = 1 + u(x)·t(x+1) + d(x)·t(x−1) + s(x)·t(x), with t(target)=0.
        let mut sub = vec![0.0; m];
        let mut diag = vec![0.0; m];
        let mut sup = vec![0.0; m];
        let rhs = vec![1.0; m];
        for (i, &x) in transient.iter().enumerate() {
            let u = self.up(x);
            let d = self.down(x);
            diag[i] = u + d; // 1 − s(x)
            if i > 0 && transient[i - 1] == x - 1 {
                sub[i] = -d;
            }
            if i + 1 < m && transient[i + 1] == x + 1 {
                sup[i] = -u;
            }
        }
        let t = crate::linalg::tridiagonal_solve(&sub, &diag, &sup, &rhs)?;
        if t.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return None;
        }
        // Re-insert the target with time 0.
        let mut out = Vec::with_capacity(m + 1);
        let mut it = t.into_iter();
        for &x in &states {
            if x == target {
                out.push(0.0);
            } else {
                out.push(it.next().expect("one entry per transient state"));
            }
        }
        Some(out)
    }

    /// Expected **parallel rounds** to consensus from state `x0`.
    ///
    /// Returns `None` when the consensus is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is outside the valid state range.
    #[must_use]
    pub fn expected_rounds_from(&self, x0: u64) -> Option<f64> {
        self.inner.assert_valid_state(x0);
        let t = self.expected_activations()?;
        let idx = (x0 - self.inner.state_lo()) as usize;
        Some(t[idx] / self.inner.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Minority, Stay, Voter};

    #[test]
    fn rows_are_distributions() {
        let chain = AggregateChain::build(&Minority::new(3).unwrap(), 20, Opinion::One).unwrap();
        for x in chain.states() {
            let row = chain.transition_row(x);
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "x={x}: sum {s}");
            assert!(row.iter().all(|&p| p >= 0.0));
            // No mass on invalid states (below z or above n−1+z).
            assert_eq!(row[0], 0.0, "source holds 1, state 0 unreachable");
        }
    }

    #[test]
    fn expected_next_matches_row_mean() {
        let chain = AggregateChain::build(&Voter::new(2).unwrap(), 15, Opinion::Zero).unwrap();
        for x in chain.states() {
            let row = chain.transition_row(x);
            let mean: f64 = row.iter().enumerate().map(|(y, &p)| y as f64 * p).sum();
            assert!(
                (mean - chain.expected_next(x)).abs() < 1e-9,
                "x={x}: {mean} vs {}",
                chain.expected_next(x)
            );
        }
    }

    #[test]
    fn voter_drift_matches_proposition5_with_f_zero() {
        // Voter has F_n ≡ 0, so E[X'|x] must equal x within ±1 (Prop 5).
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 50, Opinion::One).unwrap();
        for x in chain.states() {
            let e = chain.expected_next(x);
            assert!((e - x as f64).abs() <= 1.0, "x={x}: E = {e}");
        }
    }

    #[test]
    fn consensus_is_absorbing_for_prop3_protocols() {
        for correct in Opinion::ALL {
            let chain = AggregateChain::build(&Minority::new(3).unwrap(), 12, correct).unwrap();
            let target = chain.target();
            let row = chain.transition_row(target);
            assert!((row[target as usize] - 1.0).abs() < 1e-12, "z={correct}");
        }
    }

    #[test]
    fn state_ranges_respect_source() {
        let c1 = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::One).unwrap();
        assert_eq!((c1.state_lo(), c1.state_hi(), c1.target()), (1, 10, 10));
        let c0 = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::Zero).unwrap();
        assert_eq!((c0.state_lo(), c0.state_hi(), c0.target()), (0, 9, 0));
    }

    #[test]
    #[should_panic(expected = "outside valid range")]
    fn invalid_state_panics() {
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::One).unwrap();
        let _ = chain.transition_row(0); // state 0 invalid when z = 1
    }

    #[test]
    fn sequential_transition_probabilities_are_consistent() {
        let sc = SequentialChain::build(&Voter::new(1).unwrap(), 10, Opinion::One).unwrap();
        for x in sc.aggregate().states() {
            let u = sc.up(x);
            let d = sc.down(x);
            assert!((0.0..=1.0).contains(&u), "up({x}) = {u}");
            assert!((0.0..=1.0).contains(&d), "down({x}) = {d}");
            assert!(u + d <= 1.0 + 1e-12);
        }
        // At the target (consensus) nothing moves.
        assert_eq!(sc.up(10), 0.0);
        assert_eq!(sc.down(10), 0.0);
    }

    #[test]
    fn sequential_voter_hitting_times_positive_and_monotone_away_from_target() {
        let sc = SequentialChain::build(&Voter::new(1).unwrap(), 30, Opinion::One).unwrap();
        let t = sc.expected_activations().expect("voter converges");
        // t indexed from state_lo = 1; target = 30 is the last entry.
        assert_eq!(t.len(), 30);
        assert_eq!(*t.last().unwrap(), 0.0);
        // Expected time from the all-wrong state is the largest.
        let max = t.iter().cloned().fold(0.0, f64::max);
        assert!((t[0] - max).abs() < 1e-6, "t[0]={}, max={max}", t[0]);
        // And it is Θ(n² log n)-ish in activations — at least n².
        assert!(t[0] > (30.0f64).powi(2), "t[0] = {}", t[0]);
    }

    #[test]
    fn stay_protocol_has_unreachable_consensus() {
        let sc = SequentialChain::build(&Stay::new(1), 10, Opinion::One).unwrap();
        assert!(sc.expected_activations().is_none());
    }

    #[test]
    fn expected_rounds_normalizes_by_n() {
        let sc = SequentialChain::build(&Voter::new(1).unwrap(), 20, Opinion::Zero).unwrap();
        let acts = sc.expected_activations().unwrap();
        let rounds = sc.expected_rounds_from(10).unwrap();
        assert!((rounds - acts[10] / 20.0).abs() < 1e-12);
    }

    #[test]
    fn configuration_roundtrip() {
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::One).unwrap();
        let c = chain.configuration(5);
        assert_eq!(c.ones(), 5);
        assert_eq!(c.correct(), Opinion::One);
    }
}
