//! ε-truncated banded sparse operator for the aggregate chain, with exact
//! analytics at large `n`.
//!
//! Each row of the aggregate transition matrix is the convolution of two
//! binomials (the 1-holders that keep 1 and the 0-holders that flip), whose
//! mass concentrates on `O(√(n log(1/ε)))` states around the conditional
//! mean. [`SparseChain`] materializes exactly those states per row — built
//! in parallel on [`Pool::global`] from [`binomial_pmf_window`] cutoffs —
//! and carries an explicit per-row **tail bound**: the total transition mass
//! dropped by the truncation. Every analytic routine on top is exact up to
//! that tracked bound:
//!
//! * [`expected_hitting_times_sparse`] — banded skyline LU
//!   ([`linalg::banded_solve`]) instead of the dense `O(n³)` factorization;
//! * [`survival_curve_sparse`] — log-space survival accumulation over a
//!   renormalized conditional distribution, ping-pong buffers, no per-step
//!   allocation;
//! * [`mixing_time_extremes_sparse`] — pruned active-window distribution
//!   stepping (the two extreme distributions touch only the states that
//!   carry mass, so a step costs `O(active · band)`, not `O(n · band)`);
//! * [`spectral_gap`] — shifted power iteration on the transient submatrix.
//!
//! Dense and sparse agree bitwise on every state inside a row's window (the
//! window recurrence is the same two-sided ratio recurrence as the dense
//! path), so the sparse operator is conformance-gated against
//! [`AggregateChain::transition_row`] at small `n` and trusted at the sizes
//! (`n ≥ 10⁵`) where the dense path is infeasible.

use std::sync::Mutex;

use bitdissem_core::{Opinion, Protocol, ProtocolError};
use bitdissem_poly::binomial::{binomial_pmf_window, PMF_WINDOW_REL_EPS};
use bitdissem_pool::{effective_parallelism, Pool};

use crate::absorbing::HittingTimes;
use crate::chain::AggregateChain;
use crate::linalg;
use crate::mixing::total_variation;

/// Relative prune threshold for distribution stepping: entries below this
/// fraction of the current maximum are zeroed (and their mass accounted as
/// lost) to keep the active window narrow.
const STEP_PRUNE_REL: f64 = 1e-16;

/// Banded CSR representation of an [`AggregateChain`]'s transition matrix
/// with ε-truncated rows and tracked per-row truncation tails.
#[derive(Debug, Clone)]
pub struct SparseChain {
    agg: AggregateChain,
    rel_eps: f64,
    /// Per-row first stored column, relative to `state_lo` (so an index into
    /// a distribution vector over the valid states).
    row_lo: Vec<usize>,
    /// CSR offsets into `vals`, length `m + 1`.
    offsets: Vec<usize>,
    /// Concatenated row weights.
    vals: Vec<f64>,
    /// Per-row upper bound on the dropped transition mass.
    tails: Vec<f64>,
}

/// One built row: (first column relative to `state_lo`, weights, tail).
type BuiltRow = (usize, Vec<f64>, f64);

/// Builds the ε-truncated row for absolute state `x`.
fn build_row(agg: &AggregateChain, x: u64, rel_eps: f64) -> BuiltRow {
    let z = agg.state_lo();
    let ones = x - z;
    let zeros = agg.n() - x - (1 - z);
    // Equal success probabilities (Voter-family "adopt a sample" dynamics,
    // where both transition probabilities equal the sample law) collapse the
    // convolution exactly: Bin(a, p) + Bin(b, p) = Bin(a + b, p). One window
    // instead of a convolution, and a √2-narrower band (σ_conv = σ_single
    // but the convolved support spans w₁ + w₀ ≈ √2 × the single window).
    if agg.p0(x) == agg.p1(x) {
        let w = binomial_pmf_window(ones + zeros, agg.p1(x), rel_eps);
        return (w.lo as usize, w.weights, w.tail);
    }
    let keep = binomial_pmf_window(ones, agg.p1(x), rel_eps);
    let flip = binomial_pmf_window(zeros, agg.p0(x), rel_eps);
    // Convolve the two windows; output covers keep.lo + flip.lo + z onward.
    let mut conv = vec![0.0; keep.len() + flip.len() - 1];
    // Outer loop over the smaller window so the inner loop is the longer,
    // autovectorizable slice pass.
    let (outer, inner) = if keep.len() <= flip.len() { (&keep, &flip) } else { (&flip, &keep) };
    for (a, &wa) in outer.weights.iter().enumerate() {
        let dst = &mut conv[a..a + inner.len()];
        for (d, &wb) in dst.iter_mut().zip(&inner.weights) {
            *d += wa * wb;
        }
    }
    // Trim output edges that fell below the cutoff (products of two small
    // edge weights), folding the trimmed mass into the tail.
    let peak = conv.iter().cloned().fold(0.0, f64::max);
    let cut = rel_eps * peak;
    let mut dropped = 0.0;
    let mut start = 0;
    while start + 1 < conv.len() && conv[start] < cut {
        dropped += conv[start];
        start += 1;
    }
    let mut end = conv.len();
    while end > start + 1 && conv[end - 1] < cut {
        dropped += conv[end - 1];
        end -= 1;
    }
    let weights = conv[start..end].to_vec();
    // Window tails bound the mass missing from the exact row; the convolved
    // weights additionally miss cross terms already counted by those tails.
    let tail = (keep.tail + flip.tail + dropped).max(0.0);
    let lo_rel = (keep.lo + flip.lo) as usize + start;
    (lo_rel, weights, tail)
}

impl SparseChain {
    /// Builds the sparse chain for `protocol` at population size `n` with
    /// the default truncation cutoff [`PMF_WINDOW_REL_EPS`].
    ///
    /// # Errors
    ///
    /// Propagates protocol table materialization errors, as
    /// [`AggregateChain::build`] does.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn build<P: Protocol + ?Sized>(
        protocol: &P,
        n: u64,
        correct: Opinion,
    ) -> Result<Self, ProtocolError> {
        Self::build_with_eps(protocol, n, correct, PMF_WINDOW_REL_EPS)
    }

    /// [`SparseChain::build`] with an explicit relative truncation cutoff.
    ///
    /// # Errors
    ///
    /// Propagates protocol table materialization errors.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `rel_eps` is not in `(0, 1)`.
    pub fn build_with_eps<P: Protocol + ?Sized>(
        protocol: &P,
        n: u64,
        correct: Opinion,
        rel_eps: f64,
    ) -> Result<Self, ProtocolError> {
        let agg = AggregateChain::build(protocol, n, correct)?;
        Ok(Self::from_aggregate(agg, rel_eps))
    }

    /// Sparsifies an already-built [`AggregateChain`], constructing the
    /// truncated rows in parallel on [`Pool::global`]. Row construction is
    /// deterministic per row index, so the result is independent of worker
    /// count and scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `rel_eps` is not in `(0, 1)`.
    #[must_use]
    pub fn from_aggregate(agg: AggregateChain, rel_eps: f64) -> Self {
        assert!(rel_eps > 0.0 && rel_eps < 1.0, "rel_eps must be in (0,1), got {rel_eps}");
        let lo = agg.state_lo();
        let m = (agg.state_hi() - lo + 1) as usize;
        let slots: Mutex<Vec<Option<BuiltRow>>> = Mutex::new((0..m).map(|_| None).collect());
        let cap = effective_parallelism().clamp(1, m);
        Pool::global().run_batch(m, cap, &|i| {
            let built = build_row(&agg, lo + i as u64, rel_eps);
            let mut slots = slots.lock().expect("sparse row slots poisoned");
            debug_assert!(slots[i].is_none(), "row {i} built twice");
            slots[i] = Some(built);
        });
        let rows = slots.into_inner().expect("sparse row slots poisoned");
        let mut row_lo = Vec::with_capacity(m);
        let mut offsets = Vec::with_capacity(m + 1);
        let mut tails = Vec::with_capacity(m);
        offsets.push(0);
        let nnz: usize = rows.iter().map(|r| r.as_ref().expect("every row built").1.len()).sum();
        let mut vals = Vec::with_capacity(nnz);
        for row in rows {
            let (lo_rel, weights, tail) = row.expect("every row built");
            row_lo.push(lo_rel);
            vals.extend_from_slice(&weights);
            offsets.push(vals.len());
            tails.push(tail);
        }
        Self { agg, rel_eps, row_lo, offsets, vals, tails }
    }

    /// The underlying dense-capable chain (protocol metadata and `p0`/`p1`
    /// tables; its `transition_row` is the dense reference for this
    /// operator).
    #[must_use]
    pub fn aggregate(&self) -> &AggregateChain {
        &self.agg
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.agg.n()
    }

    /// Smallest valid state.
    #[must_use]
    pub fn state_lo(&self) -> u64 {
        self.agg.state_lo()
    }

    /// Largest valid state.
    #[must_use]
    pub fn state_hi(&self) -> u64 {
        self.agg.state_hi()
    }

    /// The absorbing target state.
    #[must_use]
    pub fn target(&self) -> u64 {
        self.agg.target()
    }

    /// Number of valid states (`n`).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.row_lo.len()
    }

    /// The relative truncation cutoff the rows were built with.
    #[must_use]
    pub fn rel_eps(&self) -> f64 {
        self.rel_eps
    }

    /// Total number of stored transition weights.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Widest stored row.
    #[must_use]
    pub fn max_bandwidth(&self) -> usize {
        (0..self.num_states()).map(|i| self.offsets[i + 1] - self.offsets[i]).max().unwrap_or(0)
    }

    /// One truncated row for absolute state `x`: the first covered state
    /// (absolute) and the stored weights.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn row(&self, x: u64) -> (u64, &[f64]) {
        let i = self.index_of(x);
        (self.state_lo() + self.row_lo[i] as u64, &self.vals[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Upper bound on the transition mass dropped from state `x`'s row.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn tail_bound(&self, x: u64) -> f64 {
        self.tails[self.index_of(x)]
    }

    /// The largest per-row tail bound: one step of any distribution loses at
    /// most this much mass to the truncation, so a `t`-step analytic result
    /// carries at most `t × max_tail_bound` of truncation error.
    #[must_use]
    pub fn max_tail_bound(&self) -> f64 {
        self.tails.iter().cloned().fold(0.0, f64::max)
    }

    /// Reconstructs the full dense row (indexed by `y ∈ 0..=n`) for
    /// cross-checking against [`AggregateChain::transition_row`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the valid state range.
    #[must_use]
    pub fn dense_row(&self, x: u64) -> Vec<f64> {
        let (lo_y, weights) = self.row(x);
        let mut row = vec![0.0; self.n() as usize + 1];
        row[lo_y as usize..lo_y as usize + weights.len()].copy_from_slice(weights);
        row
    }

    fn index_of(&self, x: u64) -> usize {
        assert!(
            (self.state_lo()..=self.state_hi()).contains(&x),
            "state {x} outside valid range [{}, {}]",
            self.state_lo(),
            self.state_hi()
        );
        (x - self.state_lo()) as usize
    }

    /// One matrix-vector step restricted to input rows `a..b` (indices into
    /// the valid-state range): accumulates `dist·P` into `next` and returns
    /// the output extent `(out_a, out_b)`. `next[out_a..out_b]` is zeroed
    /// before accumulation; the caller maintains the invariant that `next`
    /// is zero elsewhere.
    fn step_range(&self, dist: &[f64], a: usize, b: usize, next: &mut [f64]) -> (usize, usize) {
        debug_assert_eq!(dist.len(), self.num_states());
        debug_assert_eq!(next.len(), self.num_states());
        let mut out_a = usize::MAX;
        let mut out_b = 0usize;
        for (i, &w) in dist.iter().enumerate().take(b).skip(a) {
            if w == 0.0 {
                continue;
            }
            out_a = out_a.min(self.row_lo[i]);
            out_b = out_b.max(self.row_lo[i] + (self.offsets[i + 1] - self.offsets[i]));
        }
        if out_a >= out_b {
            return (0, 0);
        }
        next[out_a..out_b].fill(0.0);
        for (i, &w) in dist.iter().enumerate().take(b).skip(a) {
            if w == 0.0 {
                continue;
            }
            let row = &self.vals[self.offsets[i]..self.offsets[i + 1]];
            let dst = &mut next[self.row_lo[i]..self.row_lo[i] + row.len()];
            for (d, &v) in dst.iter_mut().zip(row) {
                *d += w * v;
            }
        }
        (out_a, out_b)
    }
}

/// A distribution over the valid states with a tracked active window,
/// stepped against a [`SparseChain`] with ping-pong buffers (no per-step
/// allocation). Mass below [`STEP_PRUNE_REL`] of the running maximum is
/// zeroed at the window edges and accumulated into `lost`, together with the
/// per-row truncation tails, so the total accounting error of a trajectory
/// is available as an explicit bound.
struct ActiveDist {
    cur: Vec<f64>,
    nxt: Vec<f64>,
    a: usize,
    b: usize,
    lost: f64,
}

impl ActiveDist {
    fn point(m: usize, i: usize) -> Self {
        let mut cur = vec![0.0; m];
        cur[i] = 1.0;
        Self { cur, nxt: vec![0.0; m], a: i, b: i + 1, lost: 0.0 }
    }

    /// Advances one round; afterwards `cur` holds the stepped distribution.
    fn step(&mut self, chain: &SparseChain) {
        let (na, nb) = chain.step_range(&self.cur, self.a, self.b, &mut self.nxt);
        // Zero the old buffer's active range to restore the all-zero
        // invariant, then swap.
        self.cur[self.a..self.b].fill(0.0);
        std::mem::swap(&mut self.cur, &mut self.nxt);
        self.a = na;
        self.b = nb;
        self.prune();
    }

    /// Shrinks the active window from both edges, discarding (and
    /// accounting) entries below the relative prune threshold.
    fn prune(&mut self) {
        let peak = self.cur[self.a..self.b].iter().cloned().fold(0.0, f64::max);
        let cut = STEP_PRUNE_REL * peak;
        while self.a < self.b && self.cur[self.a] < cut {
            self.lost += self.cur[self.a];
            self.cur[self.a] = 0.0;
            self.a += 1;
        }
        while self.b > self.a && self.cur[self.b - 1] < cut {
            self.lost += self.cur[self.b - 1];
            self.cur[self.b - 1] = 0.0;
            self.b -= 1;
        }
    }

    fn mass(&self) -> f64 {
        self.cur[self.a..self.b].iter().sum()
    }

    /// Multiplies the active entries by `s`.
    fn scale(&mut self, s: f64) {
        for v in &mut self.cur[self.a..self.b] {
            *v *= s;
        }
    }
}

/// Exact expected hitting times of the correct consensus from every state,
/// via the banded skyline solver over the ε-truncated operator.
///
/// Exact up to the truncation: the computed times deviate from the dense
/// answer by at most roughly `max_tail_bound × t_worst` per unit time (the
/// dropped mass is treated as never absorbing), which for the default cutoff
/// is far below f64 resolution of the result. Returns `None` when the
/// system is singular (absorption unreachable, e.g. `Stay`) or the times
/// overflow f64 (`e^Θ(n)` expectations of Majority-like chains at large
/// `n`) — large-`n` regimes with astronomically slow protocols are the
/// drift-band oracle's territory, not this solver's.
#[must_use]
pub fn expected_hitting_times_sparse(chain: &SparseChain) -> Option<HittingTimes> {
    let lo = chain.state_lo();
    let target = chain.target();
    let m = chain.num_states();
    let target_i = (target - lo) as usize;
    // The target sits at an end of the valid range, so the transient states
    // are contiguous and keep their relative order.
    assert!(target_i == 0 || target_i == m - 1, "absorbing target must be an extreme state");
    let mt = m - 1;
    // Transient index of valid-state index i.
    let tindex = |i: usize| if target_i == 0 { i - 1 } else { i };
    // Assemble I − Q in CSR-band form over the transient states.
    let mut a_lo = Vec::with_capacity(mt);
    let mut a_off = Vec::with_capacity(mt + 1);
    a_off.push(0usize);
    let mut a_vals: Vec<f64> = Vec::with_capacity(chain.nnz() + mt);
    let mut scratch = vec![0.0; mt];
    for i in (0..m).filter(|&i| i != target_i) {
        let ti = tindex(i);
        let (row_lo_abs, weights) = chain.row(lo + i as u64);
        let row_lo = (row_lo_abs - lo) as usize;
        // The band's column range in valid-state coordinates; the target can
        // only sit at an edge of it (it is an extreme state), so excluding
        // it keeps the range contiguous.
        let mut jl = row_lo;
        let mut jr = row_lo + weights.len() - 1;
        if jl == target_i {
            jl += 1;
        }
        if jr == target_i {
            jr = jr.saturating_sub(1);
        }
        let (mut lo_j, mut hi_j) = (ti, ti);
        if jl <= jr && jr != target_i {
            for (k, &w) in weights.iter().enumerate() {
                let j = row_lo + k;
                if j != target_i {
                    scratch[tindex(j)] = -w;
                }
            }
            lo_j = lo_j.min(tindex(jl));
            hi_j = hi_j.max(tindex(jr));
        }
        scratch[ti] += 1.0;
        a_lo.push(lo_j);
        a_vals.extend_from_slice(&scratch[lo_j..=hi_j]);
        a_off.push(a_vals.len());
        scratch[lo_j..=hi_j].fill(0.0);
    }
    let rhs = vec![1.0; mt];
    let t = linalg::banded_solve(&a_lo, &a_off, &a_vals, &rhs)?;
    if t.iter().any(|&v| v < -1e-9) {
        return None;
    }
    let mut times = Vec::with_capacity(m);
    for i in 0..m {
        if i == target_i {
            times.push(0.0);
        } else {
            times.push(t[tindex(i)].max(0.0));
        }
    }
    Some(HittingTimes::from_parts(lo, times))
}

/// Survival curve `P(τ > t)` for `t = 0, …, t_max` from the point mass at
/// `x0`, computed in log space: the conditional distribution given survival
/// is renormalized every round and the per-round survival factors are
/// accumulated as `ln S(t) = Σ ln(1 − m_s)`, so curves remain meaningful
/// far below f64 underflow of a direct product. Ping-pong buffers; no
/// per-step allocation.
///
/// Truncation and pruning mass is treated as absorbed, so the curve
/// under-estimates survival by at most `t × (max_tail_bound + pruning)` —
/// negligible at the default cutoff for any feasible `t`.
///
/// # Panics
///
/// Panics if `x0` is outside the valid state range.
#[must_use]
pub fn survival_curve_sparse(chain: &SparseChain, x0: u64, t_max: usize) -> Vec<f64> {
    let lo = chain.state_lo();
    let target_i = (chain.target() - lo) as usize;
    let i0 = chain.index_of(x0);
    let mut curve = Vec::with_capacity(t_max + 1);
    if i0 == target_i {
        curve.resize(t_max + 1, 0.0);
        return curve;
    }
    let mut dist = ActiveDist::point(chain.num_states(), i0);
    let mut ln_s = 0.0_f64;
    curve.push(1.0);
    for _ in 1..=t_max {
        dist.step(chain);
        // Absorbed mass leaves the conditional distribution.
        if target_i >= dist.a && target_i < dist.b {
            dist.cur[target_i] = 0.0;
        }
        let live = dist.mass();
        if live <= 0.0 {
            curve.resize(t_max + 1, 0.0);
            break;
        }
        ln_s += live.ln();
        dist.scale(1.0 / live);
        curve.push(ln_s.exp());
    }
    curve
}

/// Sparse counterpart of [`crate::mixing::mixing_time_extremes`]: the first
/// round at which the distributions from the two extreme starts are within
/// total variation `epsilon`, using pruned active-window stepping. At large
/// `n` the two distributions occupy narrow bands, so a round costs
/// `O(active × band)` instead of `O(n × band)`.
///
/// Returns `None` if the extremes have not coupled within `max_rounds`.
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)`.
#[must_use]
pub fn mixing_time_extremes_sparse(
    chain: &SparseChain,
    epsilon: f64,
    max_rounds: usize,
) -> Option<usize> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let m = chain.num_states();
    let mut from_lo = ActiveDist::point(m, 0);
    let mut from_hi = ActiveDist::point(m, m - 1);
    for t in 0..=max_rounds {
        // Pruned/truncated mass never cancels against the other trajectory,
        // so add it to the TV estimate to stay conservative.
        let slack = (from_lo.lost + from_hi.lost) / 2.0;
        if total_variation(&from_lo.cur, &from_hi.cur) + slack <= epsilon {
            return Some(t);
        }
        if t == max_rounds {
            break;
        }
        from_lo.step(chain);
        from_hi.step(chain);
    }
    None
}

/// Spectral gap `1 − λ*` of the transient submatrix `Q`, where `λ*` is
/// `Q`'s largest eigenvalue (the quasi-stationary decay rate: survival
/// probabilities shrink by `λ*` per round once the chain has relaxed).
///
/// Computed by shifted power iteration on `Q + shift·I`: the shift
/// (default `0.5` via [`spectral_gap`]) maps any periodic or
/// negative-eigenvalue structure away from the dominant magnitude, so the
/// iteration converges for chains where plain power iteration would
/// oscillate. Iterates until the L1 change of the normalized vector and the
/// eigenvalue estimate both move less than `tol`, or `max_iters` rounds.
///
/// Returns `None` if the iteration has not converged within the budget or
/// the transient mass vanishes.
///
/// # Panics
///
/// Panics if `shift < 0` or `tol <= 0`.
#[must_use]
pub fn spectral_gap_shifted(
    chain: &SparseChain,
    shift: f64,
    max_iters: usize,
    tol: f64,
) -> Option<f64> {
    assert!(shift >= 0.0, "shift must be non-negative");
    assert!(tol > 0.0, "tol must be positive");
    let m = chain.num_states();
    let target_i = (chain.target() - chain.state_lo()) as usize;
    if m < 2 {
        return None;
    }
    // Uniform start over the transient states.
    let mut v = vec![1.0 / (m - 1) as f64; m];
    v[target_i] = 0.0;
    let mut next = vec![0.0; m];
    let mut lambda_prev = f64::NAN;
    for _ in 0..max_iters {
        let (_, _) = chain.step_range(&v, 0, m, &mut next);
        next[target_i] = 0.0;
        // next = v·Q + shift·v.
        if shift > 0.0 {
            for (nv, &vv) in next.iter_mut().zip(&v) {
                *nv += shift * vv;
            }
        }
        let mass: f64 = next.iter().sum();
        if mass <= 0.0 || !mass.is_finite() {
            return None;
        }
        let lambda = mass - shift;
        let inv = 1.0 / mass;
        let mut diff = 0.0;
        for (nv, vv) in next.iter_mut().zip(&mut v) {
            *nv *= inv;
            diff += (*nv - *vv).abs();
            *vv = *nv;
            *nv = 0.0;
        }
        if diff < tol && (lambda - lambda_prev).abs() < tol {
            return Some(1.0 - lambda);
        }
        lambda_prev = lambda;
    }
    None
}

/// [`spectral_gap_shifted`] with the default shift `0.5`, iteration budget
/// `100_000` and tolerance `1e-12`.
#[must_use]
pub fn spectral_gap(chain: &SparseChain) -> Option<f64> {
    spectral_gap_shifted(chain, 0.5, 100_000, 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorbing::{expected_hitting_times, survival_curve};
    use crate::mixing::mixing_time_extremes;
    use bitdissem_core::channel::with_observation_noise;
    use bitdissem_core::dynamics::{Minority, Stay, Voter};
    use proptest::prelude::*;

    fn voter_chain(n: u64) -> SparseChain {
        SparseChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap()
    }

    #[test]
    fn rows_match_dense_bitwise_inside_window() {
        for n in [2, 3, 8, 33, 64] {
            let sparse = voter_chain(n);
            for x in sparse.state_lo()..=sparse.state_hi() {
                let dense = sparse.aggregate().transition_row(x);
                let (lo_y, weights) = sparse.row(x);
                let sum: f64 = weights.iter().sum();
                assert!((sum + sparse.tail_bound(x) - 1.0).abs() < 1e-9, "row {x} mass");
                for (k, &w) in weights.iter().enumerate() {
                    let y = lo_y as usize + k;
                    // The convolution accumulates in a different order than
                    // the dense double loop (1e-14-relative reorder noise),
                    // and window-edge entries miss cross terms whose total
                    // is covered by the tracked tail.
                    assert!(
                        (w - dense[y]).abs() <= 1e-13 * dense[y] + sparse.tail_bound(x) + 1e-300,
                        "n={n} x={x} y={y}: {w} vs {}",
                        dense[y]
                    );
                }
            }
        }
    }

    #[test]
    fn hitting_times_match_dense_solver() {
        for n in [8, 32, 64] {
            let sparse = voter_chain(n);
            let exact = expected_hitting_times(sparse.aggregate()).unwrap();
            let fast = expected_hitting_times_sparse(&sparse).unwrap();
            for (x, t) in exact.iter() {
                let tf = fast.from_state(x);
                assert!(
                    (t - tf).abs() <= 1e-9 * t.max(1.0),
                    "n={n} x={x}: dense {t} vs sparse {tf}"
                );
            }
        }
    }

    #[test]
    fn unreachable_absorption_is_none() {
        let sparse = SparseChain::build(&Stay::new(1), 16, Opinion::One).unwrap();
        assert!(expected_hitting_times_sparse(&sparse).is_none());
    }

    #[test]
    fn survival_matches_dense_iteration() {
        let n = 24;
        let sparse = voter_chain(n);
        let dense = survival_curve(sparse.aggregate(), 1, 200);
        let fast = survival_curve_sparse(&sparse, 1, 200);
        assert_eq!(dense.len(), fast.len());
        for (t, (d, f)) in dense.iter().zip(&fast).enumerate() {
            assert!((d - f).abs() < 1e-9, "t={t}: dense {d} vs sparse {f}");
        }
    }

    #[test]
    fn survival_from_target_is_zero() {
        let sparse = voter_chain(16);
        let curve = survival_curve_sparse(&sparse, sparse.target(), 5);
        assert_eq!(curve, vec![0.0; 6]);
    }

    #[test]
    fn mixing_matches_dense_on_noisy_voter() {
        let n = 32;
        let noisy = with_observation_noise(&Voter::new(1).unwrap(), 0.1, n).unwrap();
        let dense_chain = AggregateChain::build(&noisy, n, Opinion::One).unwrap();
        let sparse = SparseChain::from_aggregate(dense_chain.clone(), PMF_WINDOW_REL_EPS);
        let td = mixing_time_extremes(&dense_chain, 0.25, 10_000).unwrap();
        let ts = mixing_time_extremes_sparse(&sparse, 0.25, 10_000).unwrap();
        assert_eq!(td, ts);
    }

    #[test]
    fn spectral_gap_matches_survival_decay() {
        // Once relaxed, survival decays by λ* per round; compare the decay
        // ratio of the far survival curve against 1 − gap.
        let sparse = voter_chain(16);
        let gap = spectral_gap(&sparse).expect("converges");
        assert!(gap > 0.0 && gap < 1.0, "gap {gap}");
        let curve = survival_curve_sparse(&sparse, sparse.state_lo(), 2000);
        let ratio = curve[1999] / curve[1998];
        assert!((ratio - (1.0 - gap)).abs() < 1e-6, "decay {ratio} vs 1-gap {}", 1.0 - gap);
    }

    #[test]
    fn minority_hitting_error_respects_tail_contract() {
        // Minority(3) at n = 48 has e^Θ(n)-scale hitting times (~1e12), the
        // regime where truncation error is amplified by T itself. In exact
        // arithmetic dropping row mass can only *shrink* the Neumann series
        // (under-estimate), but here the condition number of I − Q is ~T, so
        // LU rounding alone perturbs the solution by O(κ·ε) and the sign of
        // the error is not observable in floating point. The documented
        // contract is the two-sided magnitude bound: |Δ|/T ≤
        // max_tail_bound × T.
        let n = 48;
        let sparse = SparseChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
        let fast = expected_hitting_times_sparse(&sparse).unwrap();
        let dense = expected_hitting_times(sparse.aggregate()).unwrap();
        let (xs, ts) = fast.worst();
        let (xd, td) = dense.worst();
        assert_eq!(xs, xd);
        let rel = (td - ts).abs() / td;
        let bound = (sparse.max_tail_bound() * td).min(0.5);
        assert!(rel <= bound, "relative error {rel} exceeds tail contract {bound}");
        // Moderate-horizon survival is well-conditioned even here.
        let ds = survival_curve(sparse.aggregate(), sparse.state_lo(), 300);
        let fs = survival_curve_sparse(&sparse, sparse.state_lo(), 300);
        for (t, (d, f)) in ds.iter().zip(&fs).enumerate() {
            assert!((d - f).abs() < 1e-9, "t={t}: {d} vs {f}");
        }
    }

    #[test]
    fn nnz_scales_sublinearly_per_row() {
        let n = 4096;
        let sparse = voter_chain(n);
        let avg = sparse.nnz() as f64 / sparse.num_states() as f64;
        // O(sqrt(n log(1/eps))) per row: generous ceiling well below n.
        assert!(avg < 40.0 * (n as f64).sqrt(), "avg row width {avg}");
        assert!((sparse.max_bandwidth() as f64) < (n as f64) / 2.0);
        assert!(sparse.max_tail_bound() < 1e-9);
    }

    #[test]
    #[ignore = "manual perf probe: run with --release --ignored, size via BITDISSEM_MARKOV_PERF_N"]
    fn perf_large_n_probe() {
        let n: u64 = std::env::var("BITDISSEM_MARKOV_PERF_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000);
        let t0 = std::time::Instant::now();
        let sparse = voter_chain(n);
        let t_build = t0.elapsed();
        let t0 = std::time::Instant::now();
        let times = expected_hitting_times_sparse(&sparse).expect("voter absorbs");
        let t_hit = t0.elapsed();
        let t0 = std::time::Instant::now();
        let noisy = with_observation_noise(&Voter::new(1).unwrap(), 0.1, n).unwrap();
        let noisy_sparse = SparseChain::build(&noisy, n, Opinion::One).unwrap();
        let t_build_noisy = t0.elapsed();
        let t0 = std::time::Instant::now();
        let mix = mixing_time_extremes_sparse(&noisy_sparse, 0.25, 100_000);
        let t_mix = t0.elapsed();
        eprintln!(
            "n={n}: build {:.2?} (nnz {}, band {}, tail {:.2e}), hitting {:.2?} (worst {:.4e}), \
             noisy build {:.2?}, mixing {:.2?} ({mix:?})",
            t_build,
            sparse.nnz(),
            sparse.max_bandwidth(),
            sparse.max_tail_bound(),
            t_hit,
            times.worst().1,
            t_build_noisy,
            t_mix,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_sparse_rows_agree_with_dense_within_tail(
            n in 2u64..=256,
            ell in 1usize..=3,
            correct_bit in 0u8..2,
        ) {
            let correct = if correct_bit == 1 { Opinion::One } else { Opinion::Zero };
            let sparse = SparseChain::build(&Voter::new(ell).unwrap(), n, correct).unwrap();
            for x in sparse.state_lo()..=sparse.state_hi() {
                let dense = sparse.aggregate().transition_row(x);
                let recon = sparse.dense_row(x);
                let missing: f64 = dense
                    .iter()
                    .zip(&recon)
                    .map(|(d, r)| (d - r).abs())
                    .sum();
                // Everything the sparse row dropped (or perturbed by
                // reordered accumulation) is covered by the tracked tail
                // plus fp slack.
                prop_assert!(
                    missing <= sparse.tail_bound(x) + 1e-12,
                    "x={} missing {} tail {}", x, missing, sparse.tail_bound(x)
                );
            }
        }
    }
}
