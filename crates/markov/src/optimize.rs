//! Protocol synthesis: searching the protocol space with exact objectives.
//!
//! Theorem 1 quantifies over *every* memory-less protocol. The exact
//! hitting-time solver lets us probe that universality constructively: at a
//! small population size, search the space of decision tables for the
//! protocol minimizing the worst-case (over both correct opinions and all
//! starting states) expected convergence time, then check that even this
//! *optimized* protocol scales almost-linearly (experiment E17).
//!
//! The search is a multi-start coordinate descent over own-independent
//! tables with the Proposition 3 endpoints pinned — the exact objective
//! has no sampling noise, so simple descent converges quickly at these
//! dimensions (`ℓ − 1` free parameters).

use bitdissem_core::{GTable, Opinion};
use bitdissem_poly::binomial::binomial_pmf_vec;

use crate::absorbing::expected_hitting_times;
use crate::chain::AggregateChain;

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// The best table found (own-independent, Prop-3 endpoints).
    pub table: GTable,
    /// Its exact worst-case expected convergence time at the search size.
    pub objective: f64,
    /// Total number of exact objective evaluations performed.
    pub evaluations: usize,
}

/// Exact worst-case expected convergence time of a protocol at size `n`:
/// the maximum over both correct opinions and all starting states.
/// Unsolvable protocols evaluate to `+∞`.
#[must_use]
pub fn worst_case_objective(table: &GTable, n: u64) -> f64 {
    let mut worst = 0.0f64;
    for z in Opinion::ALL {
        let Ok(chain) = AggregateChain::build(table, n, z) else {
            return f64::INFINITY;
        };
        match expected_hitting_times(&chain) {
            Some(times) => {
                let (_, w) = times.worst();
                worst = worst.max(w);
            }
            None => return f64::INFINITY,
        }
    }
    worst
}

/// Synthesizes an own-independent protocol of sample size `ell` minimizing
/// [`worst_case_objective`] at population size `n`, by multi-start
/// coordinate descent on the interior table entries over a refining grid.
///
/// `restarts` deterministic starting points are used: the Voter table plus
/// `restarts − 1` low-discrepancy perturbations.
///
/// # Panics
///
/// Panics if `ell == 0`, `n < 4` or `restarts == 0`.
#[must_use]
pub fn synthesize(ell: usize, n: u64, restarts: usize) -> Synthesized {
    assert!(ell >= 1, "sample size must be at least 1");
    assert!(n >= 4, "need a non-trivial population");
    assert!(restarts >= 1, "need at least one start");

    let mut evaluations = 0usize;
    let mut eval = |g: &[f64]| -> (GTable, f64) {
        let table = GTable::symmetric(g.to_vec()).expect("probabilities by construction");
        evaluations += 1;
        let obj = worst_case_objective(&table, n);
        (table, obj)
    };

    let voter_start: Vec<f64> = (0..=ell).map(|k| k as f64 / ell as f64).collect();
    let mut best: Option<(Vec<f64>, GTable, f64)> = None;

    for r in 0..restarts {
        // Deterministic perturbed starts via a Weyl sequence.
        let mut g = voter_start.clone();
        if r > 0 {
            for (k, gk) in g.iter_mut().enumerate().take(ell).skip(1) {
                let u = ((r as f64 * 0.754_877_666 + k as f64 * 0.569_840_29) % 1.0).abs();
                *gk = (*gk + 0.6 * (u - 0.5)).clamp(0.0, 1.0);
            }
        }
        let (_, mut cur_obj) = eval(&g);

        // Coordinate descent with a refining grid.
        for step in &[0.25f64, 0.1, 0.04, 0.015] {
            let mut improved = true;
            while improved {
                improved = false;
                for k in 1..ell {
                    let base = g[k];
                    let mut local_best = (base, cur_obj);
                    let mut cand = -2.0 * step;
                    while cand <= 2.0 * step + 1e-12 {
                        let v = (base + cand).clamp(0.0, 1.0);
                        cand += step;
                        if (v - base).abs() < 1e-12 {
                            continue;
                        }
                        g[k] = v;
                        let (_, obj) = eval(&g);
                        if obj < local_best.1 {
                            local_best = (v, obj);
                        }
                    }
                    g[k] = local_best.0;
                    if local_best.1 < cur_obj - 1e-9 {
                        cur_obj = local_best.1;
                        improved = true;
                    }
                }
            }
        }
        let (table, obj) = eval(&g);
        if best.as_ref().is_none_or(|(_, _, b)| obj < *b) {
            best = Some((g, table, obj));
        }
    }

    let (_, table, objective) = best.expect("at least one restart");
    Synthesized {
        table: table.with_name(format!("synthesized(l={ell}, n={n})")),
        objective,
        evaluations,
    }
}

/// The expected one-round adoption probability of a table at fraction `p`
/// (Eq. 4 with own-independence) — exposed so callers can inspect the
/// drift structure of a synthesized protocol.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn adoption_probability(table: &GTable, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let ell = table.sample_size();
    binomial_pmf_vec(ell as u64, p)
        .iter()
        .enumerate()
        .map(|(k, &w)| w * table.g(Opinion::Zero, k))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Minority, Voter};
    use bitdissem_core::{Protocol, ProtocolExt};

    #[test]
    fn objective_of_voter_matches_direct_computation() {
        let n = 20;
        let voter_table = Voter::new(1).unwrap().to_table(n).unwrap();
        let obj = worst_case_objective(&voter_table, n);
        // Worst case for the voter is the all-wrong start; both z are
        // symmetric.
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap();
        let direct = expected_hitting_times(&chain).unwrap().worst().1;
        assert!((obj - direct).abs() < 1e-9);
    }

    #[test]
    fn unsolvable_tables_score_infinity() {
        // Stay-like table: g = [0, 0, 1] with ell=2? g(0)=0 ok, g(2)=1 ok —
        // solvable. Use identity-violating: g(0)=0.5 is rejected by
        // Prop 3... the objective treats unreachable consensus as infinite:
        let stay_like = GTable::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(worst_case_objective(&stay_like, 12).is_infinite());
    }

    #[test]
    fn synthesis_beats_or_matches_the_minority_at_small_n() {
        let n = 16;
        let ell = 3;
        let synth = synthesize(ell, n, 2);
        assert!(synth.objective.is_finite());
        assert!(synth.evaluations > 10);
        let minority_obj =
            worst_case_objective(&Minority::new(ell).unwrap().to_table(n).unwrap(), n);
        assert!(
            synth.objective <= minority_obj + 1e-6,
            "synthesized {} vs minority {minority_obj}",
            synth.objective
        );
        assert!(synth.table.name().contains("synthesized"));
    }

    #[test]
    fn synthesis_is_at_least_as_good_as_the_voter() {
        let n = 16;
        let ell = 2;
        let synth = synthesize(ell, n, 3);
        let voter_obj = worst_case_objective(&Voter::new(ell).unwrap().to_table(n).unwrap(), n);
        assert!(
            synth.objective <= voter_obj + 1e-6,
            "synthesized {} vs voter {voter_obj}",
            synth.objective
        );
    }

    #[test]
    fn adoption_probability_is_monotone_for_voter() {
        let table = Voter::new(3).unwrap().to_table(10).unwrap();
        let mut prev = -1.0;
        for i in 0..=10 {
            let p = f64::from(i) / 10.0;
            let a = adoption_probability(&table, p);
            assert!(a >= prev);
            assert!((a - p).abs() < 1e-12, "voter adoption is the identity");
            prev = a;
        }
    }

    #[test]
    #[should_panic(expected = "sample size")]
    fn synthesize_rejects_zero_ell() {
        let _ = synthesize(0, 16, 1);
    }
}
