//! Stationary and quasi-stationary analysis.
//!
//! Two uses in the reproduction:
//!
//! * broken protocols (Proposition 3 violators, noisy channels) have a
//!   genuinely ergodic chain whose **stationary distribution** quantifies
//!   where the population settles (experiment E14's `p ≈ 1/2` pinning);
//! * compliant-but-slow protocols (Minority at constant `ℓ`) spend an
//!   `Ω(n^{1−ε})`-long excursion in a **quasi-stationary distribution**
//!   around the bias polynomial's stable interior root before the rare
//!   absorption happens — the distribution the Theorem 6 martingale
//!   argument confines.

use crate::chain::AggregateChain;

/// Computes the stationary distribution of the aggregate chain restricted
/// to its valid states, by power iteration. Returns `None` if the chain
/// fails to mix within the iteration budget (e.g. an absorbing chain whose
/// absorbed mass keeps moving, a periodic chain, or `tol` too small).
///
/// For chains with an absorbing target state the result is the point mass
/// at the target; for ergodic (broken-protocol) chains it is the genuine
/// stationary law.
///
/// # Panics
///
/// Panics if `tol <= 0`.
#[must_use]
pub fn stationary_distribution(
    chain: &AggregateChain,
    max_iters: usize,
    tol: f64,
) -> Option<Vec<f64>> {
    assert!(tol > 0.0, "tolerance must be positive");
    let lo = chain.state_lo() as usize;
    let hi = chain.state_hi() as usize;
    let m = hi - lo + 1;
    let rows: Vec<Vec<f64>> = (lo..=hi).map(|x| chain.transition_row(x as u64)).collect();
    // Uniform start over valid states.
    let mut dist = vec![1.0 / m as f64; m];
    for _ in 0..max_iters {
        let mut next = vec![0.0; m];
        for (i, row) in rows.iter().enumerate() {
            let w = dist[i];
            if w == 0.0 {
                continue;
            }
            for (y, &p) in row.iter().enumerate() {
                if p > 0.0 {
                    next[y - lo] += w * p;
                }
            }
        }
        let diff: f64 = next.iter().zip(&dist).map(|(a, b)| (a - b).abs()).sum();
        dist = next;
        if diff < tol {
            return Some(dist);
        }
    }
    None
}

/// Computes the quasi-stationary distribution of the chain conditioned on
/// non-absorption: the normalized left principal eigenvector of the
/// transient submatrix, by power iteration with renormalization.
///
/// Returns `(distribution over transient states, survival rate λ)` where
/// `λ < 1` is the per-round probability of remaining unabsorbed at
/// quasi-stationarity (so the absorption time from the QSD is geometric
/// with mean `1/(1−λ)`).
///
/// Returns `None` if the iteration fails to converge.
///
/// # Panics
///
/// Panics if `tol <= 0`.
#[must_use]
pub fn quasi_stationary_distribution(
    chain: &AggregateChain,
    max_iters: usize,
    tol: f64,
) -> Option<(Vec<f64>, f64)> {
    assert!(tol > 0.0, "tolerance must be positive");
    let lo = chain.state_lo();
    let hi = chain.state_hi();
    let target = chain.target();
    let transient: Vec<u64> = (lo..=hi).filter(|&x| x != target).collect();
    let m = transient.len();
    if m == 0 {
        return None;
    }
    let index_of = |x: u64| -> Option<usize> { transient.binary_search(&x).ok() };
    let rows: Vec<Vec<f64>> = transient.iter().map(|&x| chain.transition_row(x)).collect();

    let mut dist = vec![1.0 / m as f64; m];
    let mut lambda = 0.0;
    for _ in 0..max_iters {
        let mut next = vec![0.0; m];
        for (i, row) in rows.iter().enumerate() {
            let w = dist[i];
            if w == 0.0 {
                continue;
            }
            for (y, &p) in row.iter().enumerate() {
                if p > 0.0 {
                    if let Some(j) = index_of(y as u64) {
                        next[j] += w * p;
                    }
                }
            }
        }
        let mass: f64 = next.iter().sum();
        if mass <= 0.0 {
            return None;
        }
        for v in &mut next {
            *v /= mass;
        }
        let diff: f64 = next.iter().zip(&dist).map(|(a, b)| (a - b).abs()).sum();
        dist = next;
        let converged = diff < tol && (mass - lambda).abs() < tol;
        lambda = mass;
        if converged {
            return Some((dist, lambda));
        }
    }
    None
}

/// The mean of a distribution over the chain's states (absolute state
/// values, not offsets).
#[must_use]
pub fn distribution_mean(chain: &AggregateChain, dist_over_transient_or_all: &[f64]) -> f64 {
    // Works for both full-state and transient-state distributions: the
    // caller supplies a vector aligned with `chain.states()` minus possibly
    // the target; we detect which by length.
    let lo = chain.state_lo();
    let hi = chain.state_hi();
    let target = chain.target();
    let full_len = (hi - lo + 1) as usize;
    if dist_over_transient_or_all.len() == full_len {
        dist_over_transient_or_all
            .iter()
            .enumerate()
            .map(|(i, &w)| (lo + i as u64) as f64 * w)
            .sum()
    } else {
        let states: Vec<u64> = (lo..=hi).filter(|&x| x != target).collect();
        states.iter().zip(dist_over_transient_or_all).map(|(&x, &w)| x as f64 * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::channel::with_observation_noise;
    use bitdissem_core::dynamics::{Minority, Voter};
    use bitdissem_core::Opinion;

    #[test]
    fn absorbing_chain_stationary_is_point_mass_at_target() {
        let n = 24;
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap();
        let dist = stationary_distribution(&chain, 500_000, 1e-12).expect("converges");
        let target_idx = (chain.target() - chain.state_lo()) as usize;
        assert!((dist[target_idx] - 1.0).abs() < 1e-6, "mass at target: {}", dist[target_idx]);
    }

    #[test]
    fn noisy_voter_stationary_sits_near_half() {
        let n = 40;
        let noisy = with_observation_noise(&Voter::new(1).unwrap(), 0.1, n).unwrap();
        let chain = AggregateChain::build(&noisy, n, Opinion::One).unwrap();
        let dist = stationary_distribution(&chain, 200_000, 1e-12).expect("ergodic chain mixes");
        let mean = distribution_mean(&chain, &dist);
        // The bias root is at 1/2; the source pulls slightly above.
        assert!(
            (mean / n as f64 - 0.5).abs() < 0.1,
            "stationary mean fraction {}",
            mean / n as f64
        );
    }

    #[test]
    fn minority_qsd_concentrates_at_the_stable_root() {
        // Minority(3) with z = 1: the interior root of F is 1/2 and it is
        // stable; the QSD mean must sit near n/2.
        let n = 60;
        let chain = AggregateChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
        let (qsd, lambda) =
            quasi_stationary_distribution(&chain, 200_000, 1e-12).expect("converges");
        let mean = distribution_mean(&chain, &qsd);
        assert!((mean / n as f64 - 0.5).abs() < 0.05, "QSD mean fraction {}", mean / n as f64);
        // Survival rate: absorption is rare, so λ ≈ 1 but < 1.
        assert!(lambda < 1.0);
        assert!(lambda > 0.999, "lambda = {lambda}");
    }

    #[test]
    fn qsd_survival_rate_matches_hitting_time_scale() {
        // Mean absorption time from the QSD is 1/(1−λ); it must be within
        // an order of magnitude of the exact worst-state hitting time
        // (they differ by the pre-QSD transient).
        let n = 40;
        let chain = AggregateChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
        let (_, lambda) = quasi_stationary_distribution(&chain, 200_000, 1e-13).unwrap();
        let qsd_mean_time = 1.0 / (1.0 - lambda);
        let exact = crate::absorbing::expected_hitting_times(&chain).unwrap();
        let (_, worst) = exact.worst();
        let ratio = worst / qsd_mean_time;
        assert!(
            (0.1..=10.0).contains(&ratio),
            "worst {worst} vs QSD-based {qsd_mean_time} (ratio {ratio})"
        );
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn rejects_bad_tolerance() {
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), 10, Opinion::One).unwrap();
        let _ = stationary_distribution(&chain, 10, 0.0);
    }
}
