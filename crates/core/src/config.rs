//! System configurations.
//!
//! Because agents are anonymous and memory-less, the global state of the
//! system in any round is fully described by the pair `(z, X_t)`: the correct
//! opinion and the number of agents currently holding opinion 1 (Section 1.1
//! of the paper). [`Configuration`] is that pair together with `n`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::opinion::Opinion;

/// A configuration `(z, x)` of an `n`-agent system: the correct opinion `z`
/// (held by the source at all times) and the number `x` of agents with
/// opinion 1 — *including* the source when `z = 1`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{Configuration, Opinion};
///
/// let c = Configuration::new(100, Opinion::One, 30)?;
/// assert_eq!(c.ones(), 30);
/// assert_eq!(c.zeros(), 70);
/// assert!(!c.is_correct_consensus());
/// assert_eq!(c.fraction_ones(), 0.3);
/// # Ok::<(), bitdissem_core::config::ConfigurationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    n: u64,
    correct: Opinion,
    ones: u64,
}

/// Errors raised when constructing a [`Configuration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigurationError {
    /// The system must contain at least two agents (a source and one other).
    TooFewAgents {
        /// Number of agents supplied.
        n: u64,
    },
    /// `ones` exceeds `n`.
    OnesOutOfRange {
        /// Number of ones supplied.
        ones: u64,
        /// Number of agents.
        n: u64,
    },
    /// The source always holds the correct opinion, so `z = 1` forces
    /// `ones >= 1` and `z = 0` forces `ones <= n - 1`.
    SourceOpinionInconsistent {
        /// The correct opinion.
        correct: Opinion,
        /// Number of ones supplied.
        ones: u64,
    },
}

impl fmt::Display for ConfigurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigurationError::TooFewAgents { n } => {
                write!(f, "need at least 2 agents, got {n}")
            }
            ConfigurationError::OnesOutOfRange { ones, n } => {
                write!(f, "ones = {ones} exceeds population size {n}")
            }
            ConfigurationError::SourceOpinionInconsistent { correct, ones } => {
                write!(
                    f,
                    "source holds the correct opinion {correct}, inconsistent with ones = {ones}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigurationError {}

impl Configuration {
    /// Creates a configuration of `n` agents where the correct opinion is
    /// `correct` and exactly `ones` agents (source included) hold opinion 1.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigurationError`] if `n < 2`, if `ones > n`, or if the
    /// count is inconsistent with the source holding `correct` (the source
    /// never deviates, so `correct = 1` requires `ones >= 1` and
    /// `correct = 0` requires `ones <= n - 1`).
    pub fn new(n: u64, correct: Opinion, ones: u64) -> Result<Self, ConfigurationError> {
        if n < 2 {
            return Err(ConfigurationError::TooFewAgents { n });
        }
        if ones > n {
            return Err(ConfigurationError::OnesOutOfRange { ones, n });
        }
        let consistent = match correct {
            Opinion::One => ones >= 1,
            Opinion::Zero => ones < n,
        };
        if !consistent {
            return Err(ConfigurationError::SourceOpinionInconsistent { correct, ones });
        }
        Ok(Self { n, correct, ones })
    }

    /// The configuration in which every agent already holds the correct
    /// opinion (the unique legal absorbing configuration).
    #[must_use]
    pub fn correct_consensus(n: u64, correct: Opinion) -> Self {
        let ones = match correct {
            Opinion::One => n,
            Opinion::Zero => 0,
        };
        Self { n, correct, ones }
    }

    /// The adversarial "all wrong" configuration: every non-source agent
    /// holds the incorrect opinion.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn all_wrong(n: u64, correct: Opinion) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        let ones = match correct {
            Opinion::One => 1,      // only the source holds 1
            Opinion::Zero => n - 1, // everyone but the source holds 1
        };
        Self { n, correct, ones }
    }

    /// Number of agents.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The correct opinion (held by the source).
    #[must_use]
    pub fn correct(&self) -> Opinion {
        self.correct
    }

    /// Number of agents with opinion 1 (source included).
    #[must_use]
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// Number of agents with opinion 0.
    #[must_use]
    pub fn zeros(&self) -> u64 {
        self.n - self.ones
    }

    /// Fraction of agents with opinion 1, `X/n ∈ [0, 1]`.
    #[must_use]
    pub fn fraction_ones(&self) -> f64 {
        self.ones as f64 / self.n as f64
    }

    /// Number of agents holding the correct opinion.
    #[must_use]
    pub fn correct_count(&self) -> u64 {
        match self.correct {
            Opinion::One => self.ones,
            Opinion::Zero => self.zeros(),
        }
    }

    /// Returns `true` if every agent holds the correct opinion.
    #[must_use]
    pub fn is_correct_consensus(&self) -> bool {
        self.correct_count() == self.n
    }

    /// Returns `true` if every agent holds the same opinion (correct or not).
    #[must_use]
    pub fn is_consensus(&self) -> bool {
        self.ones == 0 || self.ones == self.n
    }

    /// Returns the same configuration with a new count of ones.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Configuration::new`].
    pub fn with_ones(&self, ones: u64) -> Result<Self, ConfigurationError> {
        Self::new(self.n, self.correct, ones)
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(n={}, z={}, X={})", self.n, self.correct, self.ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates_bounds() {
        assert!(Configuration::new(1, Opinion::Zero, 0).is_err());
        assert!(Configuration::new(10, Opinion::Zero, 11).is_err());
        assert!(Configuration::new(10, Opinion::One, 5).is_ok());
    }

    #[test]
    fn source_consistency_enforced() {
        // z = 1 requires at least one agent (the source) with opinion 1.
        assert_eq!(
            Configuration::new(10, Opinion::One, 0),
            Err(ConfigurationError::SourceOpinionInconsistent { correct: Opinion::One, ones: 0 })
        );
        // z = 0 requires at least one agent (the source) with opinion 0.
        assert!(Configuration::new(10, Opinion::Zero, 10).is_err());
        assert!(Configuration::new(10, Opinion::Zero, 9).is_ok());
    }

    #[test]
    fn consensus_predicates() {
        let c = Configuration::correct_consensus(8, Opinion::One);
        assert!(c.is_correct_consensus());
        assert!(c.is_consensus());
        assert_eq!(c.correct_count(), 8);

        let c = Configuration::correct_consensus(8, Opinion::Zero);
        assert!(c.is_correct_consensus());
        assert_eq!(c.ones(), 0);

        // Wrong consensus is impossible as a *reachable* configuration (the
        // source never flips), and the constructor rejects it.
        assert!(Configuration::new(8, Opinion::One, 0).is_err());
    }

    #[test]
    fn all_wrong_is_maximally_adversarial() {
        let c = Configuration::all_wrong(100, Opinion::One);
        assert_eq!(c.ones(), 1);
        assert_eq!(c.correct_count(), 1);
        let c = Configuration::all_wrong(100, Opinion::Zero);
        assert_eq!(c.ones(), 99);
        assert_eq!(c.correct_count(), 1);
    }

    #[test]
    fn counting_identities() {
        let c = Configuration::new(25, Opinion::Zero, 10).unwrap();
        assert_eq!(c.ones() + c.zeros(), c.n());
        assert!((c.fraction_ones() - 0.4).abs() < 1e-15);
        assert_eq!(c.correct_count(), 15);
    }

    #[test]
    fn with_ones_revalidates() {
        let c = Configuration::new(10, Opinion::One, 5).unwrap();
        assert!(c.with_ones(0).is_err());
        assert_eq!(c.with_ones(7).unwrap().ones(), 7);
    }

    #[test]
    fn display_is_compact() {
        let c = Configuration::new(10, Opinion::One, 5).unwrap();
        assert_eq!(c.to_string(), "(n=10, z=1, X=5)");
    }

    proptest! {
        #[test]
        fn prop_valid_configurations_roundtrip(n in 2u64..10_000, ones in 0u64..10_000) {
            prop_assume!(ones <= n);
            for correct in Opinion::ALL {
                match Configuration::new(n, correct, ones) {
                    Ok(c) => {
                        prop_assert_eq!(c.ones() + c.zeros(), n);
                        prop_assert!(c.fraction_ones() >= 0.0 && c.fraction_ones() <= 1.0);
                        // Source consistency must hold.
                        match correct {
                            Opinion::One => prop_assert!(c.ones() >= 1),
                            Opinion::Zero => prop_assert!(c.zeros() >= 1),
                        }
                    }
                    Err(_) => {
                        let inconsistent = match correct {
                            Opinion::One => ones == 0,
                            Opinion::Zero => ones == n,
                        };
                        prop_assert!(inconsistent, "rejected a consistent configuration");
                    }
                }
            }
        }
    }
}
