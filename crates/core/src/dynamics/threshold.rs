//! The threshold dynamics family.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **θ-threshold dynamics**: adopt opinion 1 exactly when at least `θ`
/// of the `ℓ` samples are 1:
///
/// ```text
/// g(k) = 1 if k >= θ, else 0.
/// ```
///
/// This family interpolates between extreme biases and contains Majority as
/// a special case (`θ = ⌈(ℓ+1)/2⌉` for odd `ℓ`):
///
/// * `θ = 1` is maximally 1-biased ("adopt 1 if you see any 1"): its bias
///   polynomial is positive on `(0, 1)` — a Case 2 protocol;
/// * `θ = ℓ` is maximally 0-biased — Case 1.
///
/// Proposition 3 holds whenever `1 ≤ θ ≤ ℓ`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::ThresholdRule, Opinion, Protocol};
/// let t = ThresholdRule::new(5, 2)?;
/// assert_eq!(t.prob_one(Opinion::Zero, 1, 10), 0.0);
/// assert_eq!(t.prob_one(Opinion::Zero, 2, 10), 1.0);
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdRule {
    ell: usize,
    theta: usize,
}

impl ThresholdRule {
    /// Creates a threshold dynamics with sample size `ell` and threshold
    /// `theta ∈ {1, …, ℓ}`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`, or
    /// [`ProtocolError::InvalidProbability`] if `theta` is outside
    /// `{1, …, ℓ}` (a threshold of 0 or `> ℓ` would break Proposition 3).
    pub fn new(ell: usize, theta: usize) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        if theta == 0 || theta > ell {
            return Err(ProtocolError::InvalidProbability {
                own: 0,
                k: theta,
                value: theta as f64,
            });
        }
        Ok(Self { ell, theta })
    }

    /// The threshold `θ`.
    #[must_use]
    pub fn theta(&self) -> usize {
        self.theta
    }
}

impl Protocol for ThresholdRule {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= self.ell);
        if k >= self.theta {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> String {
        format!("threshold(l={}, theta={})", self.ell, self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::Majority;
    use crate::protocol::ProtocolExt;
    use proptest::prelude::*;

    #[test]
    fn validates_theta_range() {
        assert!(ThresholdRule::new(0, 1).is_err());
        assert!(ThresholdRule::new(3, 0).is_err());
        assert!(ThresholdRule::new(3, 4).is_err());
        assert!(ThresholdRule::new(3, 3).is_ok());
    }

    #[test]
    fn satisfies_prop3_for_all_valid_theta() {
        for ell in 1..=6 {
            for theta in 1..=ell {
                let t = ThresholdRule::new(ell, theta).unwrap();
                assert!(t.check_proposition3(100).is_ok(), "l={ell} theta={theta}");
            }
        }
    }

    #[test]
    fn odd_majority_is_a_threshold_rule() {
        // Majority with odd ℓ has no ties: equals θ = (ℓ+1)/2.
        for ell in [1usize, 3, 5, 7] {
            let theta = ell.div_ceil(2);
            let t = ThresholdRule::new(ell, theta).unwrap();
            let m = Majority::new(ell).unwrap();
            for k in 0..=ell {
                assert_eq!(
                    t.prob_one(Opinion::Zero, k, 10),
                    m.prob_one(Opinion::Zero, k, 10),
                    "l={ell} k={k}"
                );
            }
        }
    }

    #[test]
    fn rule_is_a_step_function() {
        let t = ThresholdRule::new(6, 4).unwrap();
        for k in 0..4 {
            assert_eq!(t.prob_one(Opinion::One, k, 10), 0.0);
        }
        for k in 4..=6 {
            assert_eq!(t.prob_one(Opinion::One, k, 10), 1.0);
        }
        assert_eq!(t.theta(), 4);
    }

    proptest! {
        #[test]
        fn prop_monotone_in_k_and_antitone_in_theta(ell in 1usize..10, k in 0usize..10) {
            prop_assume!(k <= ell);
            let mut prev = 1.0;
            for theta in 1..=ell {
                let t = ThresholdRule::new(ell, theta).unwrap();
                let g = t.prob_one(Opinion::Zero, k, 10);
                prop_assert!(g <= prev, "raising theta cannot raise g");
                prev = g;
            }
        }
    }
}
