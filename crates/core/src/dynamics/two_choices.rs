//! The 2-Choices dynamics.

use serde::{Deserialize, Serialize};

use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **2-Choices dynamics**: sample two opinions; if they agree, adopt
/// them, otherwise keep the current opinion:
///
/// ```text
/// g^[b](0) = 0,   g^[b](1) = b,   g^[b](2) = 1.
/// ```
///
/// A classical consensus dynamics with constant sample size (Ghaffari &
/// Lengler, PODC 2018). It *does* depend on the agent's own opinion, making
/// it a useful member of the E1 suite where `g⁰ ≠ g¹`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::TwoChoices, Opinion, Protocol};
/// let tc = TwoChoices::new();
/// assert_eq!(tc.sample_size(), 2);
/// assert_eq!(tc.prob_one(Opinion::One, 1, 10), 1.0);  // split sample: keep own
/// assert_eq!(tc.prob_one(Opinion::Zero, 1, 10), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TwoChoices;

impl TwoChoices {
    /// Creates the 2-Choices dynamics (sample size is fixed at 2).
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for TwoChoices {
    fn sample_size(&self) -> usize {
        2
    }

    fn prob_one(&self, own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= 2);
        match k {
            0 => 0.0,
            1 => f64::from(own.as_bit()),
            _ => 1.0,
        }
    }

    fn name(&self) -> String {
        "two-choices".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolExt;

    #[test]
    fn unanimous_samples_are_adopted() {
        let tc = TwoChoices::new();
        for own in Opinion::ALL {
            assert_eq!(tc.prob_one(own, 0, 10), 0.0);
            assert_eq!(tc.prob_one(own, 2, 10), 1.0);
        }
    }

    #[test]
    fn split_sample_keeps_own_opinion() {
        let tc = TwoChoices::new();
        assert_eq!(tc.prob_one(Opinion::Zero, 1, 10), 0.0);
        assert_eq!(tc.prob_one(Opinion::One, 1, 10), 1.0);
    }

    #[test]
    fn satisfies_prop3_but_is_own_dependent() {
        let tc = TwoChoices::new();
        assert!(tc.check_proposition3(10).is_ok());
        assert!(!tc.is_own_independent(10));
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(TwoChoices, TwoChoices::new());
    }
}
