//! The Voter dynamics (Protocol 1 of the paper) and its lazy variant.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **Voter dynamics** (Protocol 1): adopt a uniformly random opinion
/// from the sample, i.e. `g(k) = k/ℓ` for both own opinions (Eq. 1).
///
/// The paper proves (Theorem 2) that Voter solves bit dissemination in
/// `O(n log n)` parallel rounds w.h.p. — nearly matching the `Ω(n^{1−ε})`
/// lower bound of Theorem 1. Since samples are uniform, the behaviour does
/// not depend on `ℓ`; the canonical choice is `ℓ = 1`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Voter, Opinion, Protocol};
/// let v = Voter::new(4)?;
/// assert_eq!(v.prob_one(Opinion::Zero, 2, 100), 0.5);
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Voter {
    ell: usize,
}

impl Voter {
    /// Creates a Voter dynamics with sample size `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`.
    pub fn new(ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { ell })
    }
}

impl Protocol for Voter {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, ones_in_sample: usize, _n: u64) -> f64 {
        debug_assert!(ones_in_sample <= self.ell);
        ones_in_sample as f64 / self.ell as f64
    }

    fn name(&self) -> String {
        format!("voter(l={})", self.ell)
    }
}

/// The **lazy Voter**: with probability `laziness` keep the current opinion,
/// otherwise act as the Voter. `g^[b](k) = λ·b + (1−λ)·k/ℓ`.
///
/// Its bias polynomial is identically zero, just like the plain Voter —
/// a useful second witness for Lemma 11 (any `F_n ≡ 0` protocol is
/// almost-linearly slow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LazyVoter {
    ell: usize,
    laziness: f64,
}

impl LazyVoter {
    /// Creates a lazy Voter with sample size `ell` and laziness
    /// `λ ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`, or
    /// [`ProtocolError::InvalidProbability`] if `laziness` is not in
    /// `[0, 1)` (laziness 1 would freeze the system).
    pub fn new(ell: usize, laziness: f64) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        if !laziness.is_finite() || !(0.0..1.0).contains(&laziness) {
            return Err(ProtocolError::InvalidProbability { own: 0, k: 0, value: laziness });
        }
        Ok(Self { ell, laziness })
    }

    /// The laziness parameter `λ`.
    #[must_use]
    pub fn laziness(&self) -> f64 {
        self.laziness
    }
}

impl Protocol for LazyVoter {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, own: Opinion, ones_in_sample: usize, _n: u64) -> f64 {
        debug_assert!(ones_in_sample <= self.ell);
        let voter = ones_in_sample as f64 / self.ell as f64;
        self.laziness * f64::from(own.as_bit()) + (1.0 - self.laziness) * voter
    }

    fn name(&self) -> String {
        format!("lazy-voter(l={}, lambda={})", self.ell, self.laziness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolExt;

    #[test]
    fn voter_rule_is_linear_in_k() {
        let v = Voter::new(5).unwrap();
        for k in 0..=5 {
            let expect = k as f64 / 5.0;
            assert_eq!(v.prob_one(Opinion::Zero, k, 10), expect);
            assert_eq!(v.prob_one(Opinion::One, k, 10), expect);
        }
    }

    #[test]
    fn voter_satisfies_prop3() {
        for ell in 1..=7 {
            assert!(Voter::new(ell).unwrap().check_proposition3(100).is_ok());
        }
    }

    #[test]
    fn voter_rejects_zero_samples() {
        assert_eq!(Voter::new(0).unwrap_err(), ProtocolError::ZeroSampleSize);
    }

    #[test]
    fn lazy_voter_interpolates() {
        let lv = LazyVoter::new(2, 0.5).unwrap();
        // Own = 1, sees no ones: 0.5·1 + 0.5·0 = 0.5.
        assert_eq!(lv.prob_one(Opinion::One, 0, 10), 0.5);
        // Own = 0, sees all ones: 0.5·0 + 0.5·1 = 0.5.
        assert_eq!(lv.prob_one(Opinion::Zero, 2, 10), 0.5);
        assert_eq!(lv.laziness(), 0.5);
    }

    #[test]
    fn lazy_voter_satisfies_prop3() {
        let lv = LazyVoter::new(3, 0.9).unwrap();
        assert!(lv.check_proposition3(50).is_ok());
        assert!(!lv.is_own_independent(50));
    }

    #[test]
    fn lazy_voter_validates_params() {
        assert!(LazyVoter::new(0, 0.5).is_err());
        assert!(LazyVoter::new(2, 1.0).is_err());
        assert!(LazyVoter::new(2, -0.1).is_err());
        assert!(LazyVoter::new(2, f64::NAN).is_err());
    }

    #[test]
    fn lazy_voter_with_zero_laziness_is_voter() {
        let lv = LazyVoter::new(3, 0.0).unwrap();
        let v = Voter::new(3).unwrap();
        for k in 0..=3 {
            for own in Opinion::ALL {
                assert_eq!(lv.prob_one(own, k, 10), v.prob_one(own, k, 10));
            }
        }
    }

    #[test]
    fn names_mention_parameters() {
        assert_eq!(Voter::new(2).unwrap().name(), "voter(l=2)");
        assert!(LazyVoter::new(2, 0.25).unwrap().name().contains("0.25"));
    }
}
