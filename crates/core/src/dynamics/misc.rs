//! Counter-example dynamics used by the validation experiments.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **noisy Voter**: `g(k) = ε + (1 − 2ε)·k/ℓ`.
///
/// Violates Proposition 3 for every `ε > 0` (`g(0) = ε > 0`), so it cannot
/// solve bit dissemination: a reached consensus decays at rate ≈ `εn` per
/// round. Used by experiment E9 to check that the validation logic and the
/// consensus-exit detection both fire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoisyVoter {
    ell: usize,
    epsilon: f64,
}

impl NoisyVoter {
    /// Creates a noisy Voter with sample size `ell` and noise
    /// `ε ∈ (0, 1/2]`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`, or
    /// [`ProtocolError::InvalidProbability`] if `epsilon` is outside
    /// `(0, 1/2]`.
    pub fn new(ell: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon > 0.5 {
            return Err(ProtocolError::InvalidProbability { own: 0, k: 0, value: epsilon });
        }
        Ok(Self { ell, epsilon })
    }

    /// The noise level `ε`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Protocol for NoisyVoter {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= self.ell);
        self.epsilon + (1.0 - 2.0 * self.epsilon) * k as f64 / self.ell as f64
    }

    fn name(&self) -> String {
        format!("noisy-voter(l={}, eps={})", self.ell, self.epsilon)
    }
}

/// The **anti-Voter**: `g(k) = 1 − k/ℓ` — adopt the *opposite* of a random
/// sample. Violates Proposition 3 on both endpoints; the system oscillates
/// around `n/2` forever. A sanity baseline for never-converging behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AntiVoter {
    ell: usize,
}

impl AntiVoter {
    /// Creates an anti-Voter with sample size `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`.
    pub fn new(ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { ell })
    }
}

impl Protocol for AntiVoter {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= self.ell);
        1.0 - k as f64 / self.ell as f64
    }

    fn name(&self) -> String {
        format!("anti-voter(l={})", self.ell)
    }
}

/// The **Stay** protocol: never change opinion (`g^[b](k) = b`).
///
/// Satisfies Proposition 3 (the endpoints are trivially right), which makes
/// it the canonical witness that Proposition 3 is necessary but *not*
/// sufficient: Stay never converges from any non-consensus configuration.
/// Its bias polynomial is identically zero, so Lemma 11's `Ω(n^{1−ε})` bound
/// applies — vacuously, since the true convergence time is infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stay {
    ell: usize,
}

impl Stay {
    /// Creates a Stay protocol with (ignored) sample size `ell`, clamped up
    /// to 1 so the model interface stays well-formed.
    #[must_use]
    pub fn new(ell: usize) -> Self {
        Self { ell: ell.max(1) }
    }
}

impl Protocol for Stay {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, own: Opinion, _k: usize, _n: u64) -> f64 {
        f64::from(own.as_bit())
    }

    fn name(&self) -> String {
        format!("stay(l={})", self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolExt;

    #[test]
    fn noisy_voter_violates_prop3() {
        let nv = NoisyVoter::new(2, 0.1).unwrap();
        assert!(nv.check_proposition3(10).is_err());
        assert!((nv.prob_one(Opinion::Zero, 0, 10) - 0.1).abs() < 1e-15);
        assert!((nv.prob_one(Opinion::Zero, 2, 10) - 0.9).abs() < 1e-15);
        assert_eq!(nv.epsilon(), 0.1);
    }

    #[test]
    fn noisy_voter_validates_epsilon() {
        assert!(NoisyVoter::new(2, 0.0).is_err());
        assert!(NoisyVoter::new(2, 0.6).is_err());
        assert!(NoisyVoter::new(0, 0.1).is_err());
        assert!(NoisyVoter::new(2, 0.5).is_ok());
    }

    #[test]
    fn anti_voter_violates_prop3_on_both_ends() {
        let av = AntiVoter::new(3).unwrap();
        let err = av.check_proposition3(10).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::ConsensusNotAbsorbing { g0_at_0, g1_at_ell }
                if g0_at_0 == 1.0 && g1_at_ell == 0.0
        ));
    }

    #[test]
    fn stay_satisfies_prop3_but_freezes() {
        let s = Stay::new(2);
        assert!(s.check_proposition3(10).is_ok());
        for k in 0..=2 {
            assert_eq!(s.prob_one(Opinion::Zero, k, 10), 0.0);
            assert_eq!(s.prob_one(Opinion::One, k, 10), 1.0);
        }
    }

    #[test]
    fn stay_clamps_sample_size() {
        assert_eq!(Stay::new(0).sample_size(), 1);
        assert_eq!(Stay::new(4).sample_size(), 4);
    }
}
