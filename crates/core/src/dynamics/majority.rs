//! The Majority dynamics — the classical counterpart of Minority.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **Majority dynamics**: adopt the majority opinion of the sample, ties
/// broken uniformly at random:
///
/// ```text
/// g(k) = 0    if k < ℓ/2
/// g(k) = 1/2  if k = ℓ/2
/// g(k) = 1    if k > ℓ/2
/// ```
///
/// Majority-like rules are excellent for plain consensus (Ghaffari &
/// Lengler, PODC 2018) but, as the paper notes, they *lack sensitivity
/// towards the informed individual* and in general fail to solve the
/// bit-dissemination problem: started from a wrong-majority configuration
/// they entrench the wrong opinion for an astronomically long time, even
/// though the correct consensus is the only absorbing state. Used as a
/// baseline in E1.
///
/// With `ℓ = 3` this is the classical *3-majority* dynamics.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Majority, Opinion, Protocol};
/// let maj = Majority::new(3)?;
/// assert_eq!(maj.prob_one(Opinion::Zero, 2, 10), 1.0);
/// assert_eq!(maj.prob_one(Opinion::Zero, 1, 10), 0.0);
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Majority {
    ell: usize,
}

impl Majority {
    /// Creates a Majority dynamics with sample size `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`.
    pub fn new(ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { ell })
    }

    /// The classical 3-majority dynamics (`ℓ = 3`).
    #[must_use]
    pub fn three() -> Self {
        Self { ell: 3 }
    }
}

impl Protocol for Majority {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= self.ell);
        match (2 * k).cmp(&self.ell) {
            std::cmp::Ordering::Less => 0.0,
            std::cmp::Ordering::Equal => 0.5,
            std::cmp::Ordering::Greater => 1.0,
        }
    }

    fn name(&self) -> String {
        format!("majority(l={})", self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::Minority;
    use crate::protocol::ProtocolExt;
    use proptest::prelude::*;

    #[test]
    fn three_majority_table() {
        let m = Majority::three();
        let expect = [0.0, 0.0, 1.0, 1.0];
        for (k, &e) in expect.iter().enumerate() {
            assert_eq!(m.prob_one(Opinion::Zero, k, 10), e, "k={k}");
        }
    }

    #[test]
    fn even_sample_has_fair_tie() {
        let m = Majority::new(4).unwrap();
        assert_eq!(m.prob_one(Opinion::One, 2, 10), 0.5);
    }

    #[test]
    fn satisfies_prop3() {
        for ell in 1..=8 {
            assert!(Majority::new(ell).unwrap().check_proposition3(10).is_ok());
        }
    }

    #[test]
    fn rejects_zero_samples() {
        assert_eq!(Majority::new(0).unwrap_err(), ProtocolError::ZeroSampleSize);
    }

    proptest! {
        #[test]
        fn prop_majority_minority_duality(ell in 1usize..16, k in 0usize..16) {
            // On non-unanimous samples, minority(k) = 1 − majority(k).
            prop_assume!(k <= ell && k > 0 && k < ell);
            let maj = Majority::new(ell).unwrap();
            let min = Minority::new(ell).unwrap();
            let a = maj.prob_one(Opinion::Zero, k, 10);
            let b = min.prob_one(Opinion::Zero, k, 10);
            prop_assert!((a + b - 1.0).abs() < 1e-15);
        }

        #[test]
        fn prop_monotone_in_k(ell in 1usize..16) {
            let m = Majority::new(ell).unwrap();
            let mut prev = 0.0;
            for k in 0..=ell {
                let g = m.prob_one(Opinion::Zero, k, 10);
                prop_assert!(g >= prev);
                prev = g;
            }
        }
    }
}
