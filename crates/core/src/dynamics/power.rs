//! The power-Voter family: a tunable-bias dynamics.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **power Voter**: `g(k) = (k/ℓ)^α` for a fixed exponent `α > 0`.
///
/// This family exists to exercise both branches of the Theorem 12 proof:
///
/// * `α = 1` is exactly the Voter — bias polynomial `F_n ≡ 0` (Lemma 11);
/// * `α < 1`: by Jensen's inequality the expected adoption probability
///   exceeds `p`, so `F_n > 0` on `(0, 1)` — **Case 2** (the protocol drifts
///   towards 1, so it is slow whenever the correct opinion is 0);
/// * `α > 1`: `F_n < 0` on `(0, 1)` — **Case 1** (slow when the correct
///   opinion is 1).
///
/// Proposition 3 holds for every `α` since `g(0) = 0` and `g(ℓ) = 1`.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::PowerVoter, Opinion, Protocol};
/// let p = PowerVoter::new(2, 2.0)?;
/// assert_eq!(p.prob_one(Opinion::Zero, 1, 10), 0.25); // (1/2)²
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerVoter {
    ell: usize,
    alpha: f64,
}

impl PowerVoter {
    /// Creates a power Voter with sample size `ell` and exponent `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`, or
    /// [`ProtocolError::InvalidProbability`] if `alpha` is not finite and
    /// strictly positive.
    pub fn new(ell: usize, alpha: f64) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(ProtocolError::InvalidProbability { own: 0, k: 0, value: alpha });
        }
        Ok(Self { ell, alpha })
    }

    /// The exponent `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Protocol for PowerVoter {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= self.ell);
        (k as f64 / self.ell as f64).powf(self.alpha)
    }

    fn name(&self) -> String {
        format!("power-voter(l={}, alpha={})", self.ell, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::Voter;
    use crate::protocol::ProtocolExt;
    use proptest::prelude::*;

    #[test]
    fn alpha_one_is_voter() {
        let pv = PowerVoter::new(4, 1.0).unwrap();
        let v = Voter::new(4).unwrap();
        for k in 0..=4 {
            assert_eq!(pv.prob_one(Opinion::Zero, k, 10), v.prob_one(Opinion::Zero, k, 10));
        }
    }

    #[test]
    fn satisfies_prop3_for_all_alpha() {
        for &alpha in &[0.25, 0.5, 1.0, 2.0, 5.0] {
            let pv = PowerVoter::new(3, alpha).unwrap();
            assert!(pv.check_proposition3(10).is_ok(), "alpha={alpha}");
        }
    }

    #[test]
    fn sublinear_alpha_inflates_probabilities() {
        let pv = PowerVoter::new(4, 0.5).unwrap();
        let v = Voter::new(4).unwrap();
        for k in 1..4 {
            assert!(pv.prob_one(Opinion::Zero, k, 10) > v.prob_one(Opinion::Zero, k, 10), "k={k}");
        }
    }

    #[test]
    fn validates_parameters() {
        assert!(PowerVoter::new(0, 1.0).is_err());
        assert!(PowerVoter::new(2, 0.0).is_err());
        assert!(PowerVoter::new(2, -1.0).is_err());
        assert!(PowerVoter::new(2, f64::INFINITY).is_err());
    }

    proptest! {
        #[test]
        fn prop_outputs_are_probabilities(
            ell in 1usize..12,
            alpha in 0.1f64..8.0,
            k in 0usize..12,
        ) {
            prop_assume!(k <= ell);
            let pv = PowerVoter::new(ell, alpha).unwrap();
            let g = pv.prob_one(Opinion::Zero, k, 10);
            prop_assert!((0.0..=1.0).contains(&g));
        }
    }
}
