//! The Minority dynamics (Protocol 2 of the paper).

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// The **Minority dynamics** (Protocol 2): if all sampled opinions agree,
/// adopt the unanimous opinion; otherwise adopt the *minority* opinion of the
/// sample; ties broken uniformly at random. In table form (Eq. 2):
///
/// ```text
/// g(k) = 1    if k = ℓ or 0 < k < ℓ/2
/// g(k) = 1/2  if k = ℓ/2
/// g(k) = 0    if k = 0 or ℓ/2 < k < ℓ
/// ```
///
/// Becchetti et al. (SODA 2024) prove that with `ℓ = Ω(√(n log n))` this
/// dynamics solves bit dissemination in `O(log² n)` parallel rounds w.h.p. —
/// the counterpart upper bound to this paper's `Ω(n^{1−ε})` bound for
/// constant `ℓ`. The minimal `ℓ` for which it is fast is open (experiment
/// E4 explores it).
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Minority, Opinion, Protocol};
/// let m = Minority::new(4)?;
/// assert_eq!(m.prob_one(Opinion::Zero, 0, 10), 0.0); // unanimous 0
/// assert_eq!(m.prob_one(Opinion::Zero, 1, 10), 1.0); // minority is 1
/// assert_eq!(m.prob_one(Opinion::Zero, 2, 10), 0.5); // tie
/// assert_eq!(m.prob_one(Opinion::Zero, 3, 10), 0.0); // minority is 0
/// assert_eq!(m.prob_one(Opinion::Zero, 4, 10), 1.0); // unanimous 1
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Minority {
    ell: usize,
}

impl Minority {
    /// Creates a Minority dynamics with sample size `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`.
    pub fn new(ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { ell })
    }

    /// The paper-recommended sample size for fast convergence at population
    /// size `n`: `ℓ = ⌈√(n ln n)⌉` (the threshold of Becchetti et al.).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn fast_sample_size(n: u64) -> usize {
        assert!(n >= 2, "need at least 2 agents");
        let nf = n as f64;
        (nf * nf.ln()).sqrt().ceil() as usize
    }
}

impl Protocol for Minority {
    fn sample_size(&self) -> usize {
        self.ell
    }

    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        debug_assert!(k <= self.ell);
        let ell = self.ell;
        if k == ell {
            return 1.0; // unanimous 1
        }
        if k == 0 {
            return 0.0; // unanimous 0
        }
        if 2 * k < ell {
            1.0 // 1 is the strict minority
        } else if 2 * k == ell {
            0.5 // tie
        } else {
            0.0 // 0 is the strict minority
        }
    }

    fn name(&self) -> String {
        format!("minority(l={})", self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolExt;
    use proptest::prelude::*;

    #[test]
    fn matches_eq2_for_ell_3() {
        let m = Minority::new(3).unwrap();
        assert_eq!(m.prob_one(Opinion::Zero, 0, 10), 0.0);
        assert_eq!(m.prob_one(Opinion::Zero, 1, 10), 1.0);
        assert_eq!(m.prob_one(Opinion::Zero, 2, 10), 0.0);
        assert_eq!(m.prob_one(Opinion::Zero, 3, 10), 1.0);
    }

    #[test]
    fn matches_eq2_for_even_ell() {
        let m = Minority::new(6).unwrap();
        let expect = [0.0, 1.0, 1.0, 0.5, 0.0, 0.0, 1.0];
        for (k, &e) in expect.iter().enumerate() {
            assert_eq!(m.prob_one(Opinion::One, k, 10), e, "k={k}");
        }
    }

    #[test]
    fn ell_one_reduces_to_voter() {
        // With one sample the "minority" of the sample is the sample itself.
        let m = Minority::new(1).unwrap();
        assert_eq!(m.prob_one(Opinion::Zero, 0, 10), 0.0);
        assert_eq!(m.prob_one(Opinion::Zero, 1, 10), 1.0);
    }

    #[test]
    fn satisfies_prop3_and_own_independence() {
        for ell in 1..=8 {
            let m = Minority::new(ell).unwrap();
            assert!(m.check_proposition3(100).is_ok());
            assert!(m.is_own_independent(100));
        }
    }

    #[test]
    fn fast_sample_size_scales_like_sqrt_n_log_n() {
        let n = 1_000_000u64;
        let ell = Minority::fast_sample_size(n);
        let expect = ((n as f64) * (n as f64).ln()).sqrt();
        assert!((ell as f64 - expect).abs() <= 1.0);
        assert!(Minority::fast_sample_size(2) >= 1);
    }

    #[test]
    fn rejects_zero_samples() {
        assert_eq!(Minority::new(0).unwrap_err(), ProtocolError::ZeroSampleSize);
    }

    proptest! {
        #[test]
        fn prop_rule_symmetry(ell in 1usize..16, k in 0usize..16) {
            // Minority is symmetric under relabeling opinions:
            // g(k) + g(ℓ−k) = 1 for all k.
            prop_assume!(k <= ell);
            let m = Minority::new(ell).unwrap();
            let a = m.prob_one(Opinion::Zero, k, 10);
            let b = m.prob_one(Opinion::Zero, ell - k, 10);
            prop_assert!((a + b - 1.0).abs() < 1e-15);
        }
    }
}
