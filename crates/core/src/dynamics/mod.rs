//! Named opinion dynamics.
//!
//! Every dynamics studied or referenced by the paper, plus a few parametric
//! families used to exercise both cases of the Theorem 12 proof:
//!
//! * [`Voter`] — Protocol 1 of the paper; `F_n ≡ 0` (Lemma 11, Theorem 2);
//! * [`Minority`] — Protocol 2, the fast dynamics of Becchetti et al.
//!   (SODA 2024) when `ℓ = Ω(√(n log n))`;
//! * [`Majority`] — the classical counterpart, insensitive to the source;
//! * [`TwoChoices`] — keep own opinion unless the two samples agree;
//! * [`PowerVoter`] — `g(k) = (k/ℓ)^α`, a tunable-bias family: `α < 1`
//!   biases upward (Case 2 of Theorem 12), `α > 1` downward (Case 1);
//! * [`LazyVoter`] — voter with laziness; another `F_n ≡ 0` protocol;
//! * [`NoisyVoter`], [`AntiVoter`], [`Stay`] — counter-examples used to test
//!   Proposition 3 and convergence detection.

mod majority;
mod minority;
mod misc;
mod power;
mod threshold;
mod two_choices;
mod voter;

pub use majority::Majority;
pub use minority::Minority;
pub use misc::{AntiVoter, NoisyVoter, Stay};
pub use power::PowerVoter;
pub use threshold::ThresholdRule;
pub use two_choices::TwoChoices;
pub use voter::{LazyVoter, Voter};

use crate::error::ProtocolError;
use crate::protocol::Protocol;

/// A boxed, thread-safe protocol trait object.
pub type BoxedProtocol = Box<dyn Protocol + Send + Sync>;

/// The standard constant-sample-size suite used by the lower-bound
/// experiments (E1): Voter `ℓ=1`, Minority `ℓ∈{3,5}`, 3-Majority and
/// Two-Choices — all Proposition-3 compliant.
///
/// # Examples
///
/// ```
/// use bitdissem_core::dynamics::constant_sample_suite;
/// let suite = constant_sample_suite();
/// assert!(suite.iter().all(|p| p.sample_size() <= 5));
/// ```
#[must_use]
pub fn constant_sample_suite() -> Vec<BoxedProtocol> {
    vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Minority::new(5).expect("valid")),
        Box::new(Majority::new(3).expect("valid")),
        Box::new(TwoChoices::new()),
    ]
}

/// Builds a protocol by name, for CLI-style experiment selection.
///
/// Recognized names: `voter`, `minority`, `majority`, `two-choices`,
/// `lazy-voter`, `power-voter` (with `alpha` fixed at 2.0), `anti-voter`,
/// `stay`. The sample size applies where meaningful.
///
/// # Errors
///
/// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`, or propagates the
/// constructor error of the selected dynamics. Unknown names yield `None`.
pub fn by_name(name: &str, ell: usize) -> Option<Result<BoxedProtocol, ProtocolError>> {
    let build: Result<BoxedProtocol, ProtocolError> = match name {
        "voter" => Voter::new(ell).map(|p| Box::new(p) as BoxedProtocol),
        "minority" => Minority::new(ell).map(|p| Box::new(p) as BoxedProtocol),
        "majority" => Majority::new(ell).map(|p| Box::new(p) as BoxedProtocol),
        "two-choices" => Ok(Box::new(TwoChoices::new())),
        "lazy-voter" => LazyVoter::new(ell, 0.5).map(|p| Box::new(p) as BoxedProtocol),
        "power-voter" => PowerVoter::new(ell, 2.0).map(|p| Box::new(p) as BoxedProtocol),
        "anti-voter" => AntiVoter::new(ell).map(|p| Box::new(p) as BoxedProtocol),
        "stay" => Ok(Box::new(Stay::new(ell))),
        _ => return None,
    };
    Some(build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolExt;

    #[test]
    fn suite_is_prop3_compliant() {
        for p in constant_sample_suite() {
            assert!(p.check_proposition3(100).is_ok(), "{} violates Prop 3", p.name());
        }
    }

    #[test]
    fn by_name_builds_known_protocols() {
        for name in
            ["voter", "minority", "majority", "two-choices", "lazy-voter", "power-voter", "stay"]
        {
            let p = by_name(name, 3).expect("known name").expect("valid params");
            assert!(!p.name().is_empty());
        }
        assert!(by_name("unknown", 3).is_none());
        assert!(by_name("voter", 0).unwrap().is_err());
    }
}
