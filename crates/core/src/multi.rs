//! Multi-opinion extension.
//!
//! Theorem 1 of the paper extends beyond binary opinions *provided agents
//! may not adopt an opinion they have never seen or adopted* (footnote 2):
//! under that natural restriction, a binary initial configuration reduces the
//! multi-opinion problem to the binary one. This module implements the
//! restricted multi-opinion model so that the reduction can be exercised
//! empirically (integration test `multi_opinion_reduction`).

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;

/// A memory-less update rule over `m ≥ 2` opinions.
///
/// Upon activation an agent holding opinion `own` observes a *count vector*
/// `counts` (`counts[j]` = number of sampled agents with opinion `j`,
/// summing to `ℓ`) and returns a probability distribution over the next
/// opinion.
///
/// **Support restriction** (paper footnote 2): the returned distribution
/// must be supported on `{own} ∪ {j : counts[j] > 0}` — an agent cannot
/// invent an opinion it has neither held nor observed. Violations are
/// detectable with [`check_support_restriction`].
pub trait MultiProtocol {
    /// Number of distinct opinions `m ≥ 2`.
    fn num_opinions(&self) -> usize;

    /// The sample size `ℓ ≥ 1`.
    fn sample_size(&self) -> usize;

    /// Distribution over the next opinion, given own opinion and observed
    /// counts. Must have length [`MultiProtocol::num_opinions`] and sum
    /// to 1.
    fn decide(&self, own: usize, counts: &[usize], n: u64) -> Vec<f64>;

    /// Human-readable name.
    fn name(&self) -> String;
}

/// Exhaustively checks the support restriction of a [`MultiProtocol`] over
/// all count vectors of total `ℓ` (feasible for small `m`, `ℓ`).
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidProbability`] pointing at the first
/// violation found: probability mass on an opinion that is neither `own` nor
/// observed, or a distribution that does not sum to 1.
pub fn check_support_restriction<P: MultiProtocol + ?Sized>(
    p: &P,
    n: u64,
) -> Result<(), ProtocolError> {
    let m = p.num_opinions();
    let ell = p.sample_size();
    let mut counts = vec![0usize; m];
    check_rec(p, n, &mut counts, 0, ell)?;
    Ok(())
}

fn check_rec<P: MultiProtocol + ?Sized>(
    p: &P,
    n: u64,
    counts: &mut Vec<usize>,
    idx: usize,
    remaining: usize,
) -> Result<(), ProtocolError> {
    let m = p.num_opinions();
    if idx == m - 1 {
        counts[idx] = remaining;
        for own in 0..m {
            let dist = p.decide(own, counts, n);
            let sum: f64 = dist.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(ProtocolError::InvalidProbability { own: own as u8, k: 0, value: sum });
            }
            for (j, &w) in dist.iter().enumerate() {
                if w > 1e-12 && j != own && counts[j] == 0 {
                    return Err(ProtocolError::InvalidProbability {
                        own: own as u8,
                        k: j,
                        value: w,
                    });
                }
            }
        }
        counts[idx] = 0;
        return Ok(());
    }
    for c in 0..=remaining {
        counts[idx] = c;
        check_rec(p, n, counts, idx + 1, remaining - c)?;
        counts[idx] = 0;
    }
    Ok(())
}

/// Multi-opinion Voter: adopt the opinion of a uniformly random sample,
/// i.e. opinion `j` with probability `counts[j] / ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiVoter {
    m: usize,
    ell: usize,
}

impl MultiVoter {
    /// Creates a multi-opinion Voter over `m` opinions with sample size
    /// `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0` or `m < 2`.
    pub fn new(m: usize, ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 || m < 2 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { m, ell })
    }
}

impl MultiProtocol for MultiVoter {
    fn num_opinions(&self) -> usize {
        self.m
    }

    fn sample_size(&self) -> usize {
        self.ell
    }

    fn decide(&self, _own: usize, counts: &[usize], _n: u64) -> Vec<f64> {
        counts.iter().map(|&c| c as f64 / self.ell as f64).collect()
    }

    fn name(&self) -> String {
        format!("multi-voter(m={}, l={})", self.m, self.ell)
    }
}

/// Multi-opinion Minority: if the sample is unanimous adopt it; otherwise
/// adopt a uniformly random opinion among those observed with the *lowest
/// non-zero* count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiMinority {
    m: usize,
    ell: usize,
}

impl MultiMinority {
    /// Creates a multi-opinion Minority over `m` opinions with sample size
    /// `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0` or `m < 2`.
    pub fn new(m: usize, ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 || m < 2 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { m, ell })
    }
}

impl MultiProtocol for MultiMinority {
    fn num_opinions(&self) -> usize {
        self.m
    }

    fn sample_size(&self) -> usize {
        self.ell
    }

    fn decide(&self, _own: usize, counts: &[usize], _n: u64) -> Vec<f64> {
        let mut dist = vec![0.0; self.m];
        let observed: Vec<usize> = (0..self.m).filter(|&j| counts[j] > 0).collect();
        if observed.len() == 1 {
            // Unanimous sample: adopt it.
            dist[observed[0]] = 1.0;
            return dist;
        }
        let min_count = observed.iter().map(|&j| counts[j]).min().expect("non-empty");
        let minorities: Vec<usize> =
            observed.into_iter().filter(|&j| counts[j] == min_count).collect();
        let w = 1.0 / minorities.len() as f64;
        for j in minorities {
            dist[j] = w;
        }
        dist
    }

    fn name(&self) -> String {
        format!("multi-minority(m={}, l={})", self.m, self.ell)
    }
}

/// Restricts a multi-opinion protocol to opinions `{0, 1}` and expresses it
/// as a binary [`GTable`](crate::GTable) — the reduction behind footnote 2.
///
/// # Errors
///
/// Propagates table validation errors (none are expected for a well-formed
/// [`MultiProtocol`]).
pub fn binary_restriction<P: MultiProtocol + ?Sized>(
    p: &P,
    n: u64,
) -> Result<crate::GTable, ProtocolError> {
    let ell = p.sample_size();
    let m = p.num_opinions();
    let mut g0 = Vec::with_capacity(ell + 1);
    let mut g1 = Vec::with_capacity(ell + 1);
    for k in 0..=ell {
        let mut counts = vec![0usize; m];
        counts[0] = ell - k;
        counts[1] = k;
        g0.push(p.decide(0, &counts, n)[1]);
        g1.push(p.decide(1, &counts, n)[1]);
    }
    crate::GTable::new(g0, g1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{Minority, Voter};
    use crate::opinion::Opinion;
    use crate::protocol::Protocol;

    #[test]
    fn multi_voter_distribution_is_sample_frequency() {
        let mv = MultiVoter::new(3, 4).unwrap();
        let d = mv.decide(0, &[2, 1, 1], 100);
        assert_eq!(d, vec![0.5, 0.25, 0.25]);
    }

    #[test]
    fn multi_voter_respects_support_restriction() {
        let mv = MultiVoter::new(3, 3).unwrap();
        assert!(check_support_restriction(&mv, 100).is_ok());
    }

    #[test]
    fn multi_minority_respects_support_restriction() {
        let mm = MultiMinority::new(4, 3).unwrap();
        assert!(check_support_restriction(&mm, 100).is_ok());
    }

    #[test]
    fn multi_minority_unanimous_and_tie_cases() {
        let mm = MultiMinority::new(3, 4).unwrap();
        // Unanimous: adopt.
        assert_eq!(mm.decide(0, &[0, 4, 0], 10), vec![0.0, 1.0, 0.0]);
        // Clear minority: opinion 2 has the lowest positive count.
        assert_eq!(mm.decide(0, &[2, 1, 1], 10), vec![0.0, 0.5, 0.5]);
        // Two-way minority tie.
        let d = mm.decide(1, &[2, 2, 0], 10);
        assert_eq!(d, vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn binary_restriction_of_multi_voter_is_voter() {
        let mv = MultiVoter::new(5, 3).unwrap();
        let table = binary_restriction(&mv, 100).unwrap();
        let voter = Voter::new(3).unwrap();
        for k in 0..=3 {
            for own in Opinion::ALL {
                assert!(
                    (table.prob_one(own, k, 100) - voter.prob_one(own, k, 100)).abs() < 1e-15,
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn binary_restriction_of_multi_minority_is_minority() {
        let mm = MultiMinority::new(4, 3).unwrap();
        let table = binary_restriction(&mm, 100).unwrap();
        let minority = Minority::new(3).unwrap();
        for k in 0..=3 {
            for own in Opinion::ALL {
                assert!(
                    (table.prob_one(own, k, 100) - minority.prob_one(own, k, 100)).abs() < 1e-15,
                    "k={k} own={own}"
                );
            }
        }
    }

    #[test]
    fn support_violation_is_detected() {
        // A broken protocol that teleports to opinion 0 regardless.
        struct AlwaysZero;
        impl MultiProtocol for AlwaysZero {
            fn num_opinions(&self) -> usize {
                3
            }
            fn sample_size(&self) -> usize {
                2
            }
            fn decide(&self, _own: usize, _counts: &[usize], _n: u64) -> Vec<f64> {
                vec![1.0, 0.0, 0.0]
            }
            fn name(&self) -> String {
                "always-zero".into()
            }
        }
        assert!(check_support_restriction(&AlwaysZero, 10).is_err());
    }

    #[test]
    fn constructors_validate() {
        assert!(MultiVoter::new(1, 3).is_err());
        assert!(MultiVoter::new(3, 0).is_err());
        assert!(MultiMinority::new(1, 3).is_err());
        assert!(MultiMinority::new(3, 0).is_err());
    }
}
