//! Table-driven protocols: the universal representation.
//!
//! Any memory-less protocol at a fixed population size `n` is a pair of
//! vectors `(g⁰, g¹)` of `ℓ + 1` probabilities — [`GTable`] stores exactly
//! that, validates it, and implements [`Protocol`]. All named dynamics can be
//! materialized into a `GTable` via
//! [`ProtocolExt::to_table`](crate::protocol::ProtocolExt::to_table), and the
//! analysis crate consumes tables when building the bias polynomial.

use serde::{Deserialize, Serialize};

use bitdissem_poly::kernel::{Kernel, KernelError};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// An explicit decision table `g^[b](k)`, `b ∈ {0, 1}`, `k ∈ {0, …, ℓ}`.
///
/// # Examples
///
/// A "lazy voter" that follows a random sample with probability ½ and
/// otherwise keeps its opinion:
///
/// ```
/// use bitdissem_core::{GTable, Opinion, Protocol};
///
/// let ell = 2;
/// let g0: Vec<f64> = (0..=ell).map(|k| 0.5 * k as f64 / ell as f64).collect();
/// let g1: Vec<f64> = (0..=ell).map(|k| 0.5 + 0.5 * k as f64 / ell as f64).collect();
/// let lazy = GTable::new(g0, g1)?;
/// assert_eq!(lazy.prob_one(Opinion::One, 0, 10), 0.5);
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GTable {
    g0: Vec<f64>,
    g1: Vec<f64>,
    name: String,
}

impl GTable {
    /// Creates a table protocol from the two probability vectors
    /// (`g0[k]`/`g1[k]` = probability of adopting opinion 1 when holding
    /// opinion 0/1 and observing `k` ones).
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::ZeroSampleSize`] if the tables have fewer than two
    ///   entries (`ℓ = 0`);
    /// * [`ProtocolError::TableLength`] if `g0` and `g1` differ in length;
    /// * [`ProtocolError::InvalidProbability`] if any entry is outside
    ///   `[0, 1]` or not finite.
    pub fn new(g0: Vec<f64>, g1: Vec<f64>) -> Result<Self, ProtocolError> {
        if g0.len() < 2 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        if g0.len() != g1.len() {
            return Err(ProtocolError::TableLength { expected: g0.len(), actual: g1.len() });
        }
        for (own, table) in [(0u8, &g0), (1u8, &g1)] {
            for (k, &v) in table.iter().enumerate() {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(ProtocolError::InvalidProbability { own, k, value: v });
                }
            }
        }
        let ell = g0.len() - 1;
        Ok(Self { g0, g1, name: format!("gtable(l={ell})") })
    }

    /// Creates a table **without validating** the entries.
    ///
    /// This exists solely so tests and the conformance fault-injection
    /// harness can build deliberately invalid tables (out-of-range or
    /// non-finite `g` values) and verify that downstream validation — e.g.
    /// [`crate::ProtocolError::InvalidAdoptionProbability`] from the
    /// adoption-probability computation — actually catches them. Production
    /// code must use [`GTable::new`].
    ///
    /// # Panics
    ///
    /// Panics if the rows are shorter than two entries or differ in length
    /// (shape errors are never injectable faults).
    #[doc(hidden)]
    #[must_use]
    pub fn new_unchecked(g0: Vec<f64>, g1: Vec<f64>) -> Self {
        assert!(g0.len() >= 2 && g0.len() == g1.len(), "rows must share a length >= 2");
        let ell = g0.len() - 1;
        Self { g0, g1, name: format!("gtable-unchecked(l={ell})") }
    }

    /// Creates an own-opinion-independent table (`g⁰ = g¹ = g`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GTable::new`].
    pub fn symmetric(g: Vec<f64>) -> Result<Self, ProtocolError> {
        Self::new(g.clone(), g)
    }

    /// Renames the table (builder-style) for nicer report output.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The sample size `ℓ`.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.g0.len() - 1
    }

    /// Compiles the table into an adoption-probability [`Kernel`]
    /// (precomputed Eq.-4 polynomial coefficients, evaluated by an
    /// allocation-free Horner pass — the simulator fast path).
    ///
    /// Validation happens here, once: a kernel obtained from this method
    /// can be evaluated per round with nothing more than a `[0, 1]` clamp.
    ///
    /// # Errors
    ///
    /// Returns the same [`ProtocolError`] variants as [`GTable::new`] — a
    /// table built by `new` always compiles, but tables from
    /// [`GTable::new_unchecked`] (fault injection) surface their corrupt
    /// entries here instead of mid-simulation.
    pub fn compile(&self) -> Result<Kernel, ProtocolError> {
        Kernel::compile(&self.g0, &self.g1).map_err(|e| match e {
            KernelError::RowLengthMismatch { g0, g1 } => {
                ProtocolError::TableLength { expected: g0, actual: g1 }
            }
            KernelError::TooShort { .. } => ProtocolError::ZeroSampleSize,
            KernelError::InvalidEntry { own, k, value } => {
                ProtocolError::InvalidProbability { own, k, value }
            }
        })
    }

    /// Table lookup: `g^[own](k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > ℓ`.
    #[must_use]
    pub fn g(&self, own: Opinion, k: usize) -> f64 {
        match own {
            Opinion::Zero => self.g0[k],
            Opinion::One => self.g1[k],
        }
    }

    /// The `g⁰` row.
    #[must_use]
    pub fn g0(&self) -> &[f64] {
        &self.g0
    }

    /// The `g¹` row.
    #[must_use]
    pub fn g1(&self) -> &[f64] {
        &self.g1
    }

    /// Returns a copy with the Proposition-3 endpoints forced
    /// (`g⁰(0) = 0`, `g¹(ℓ) = 1`), making the correct consensus absorbing.
    #[must_use]
    pub fn with_absorbing_consensus(mut self) -> Self {
        self.g0[0] = 0.0;
        let ell = self.g1.len() - 1;
        self.g1[ell] = 1.0;
        self
    }
}

impl Protocol for GTable {
    fn sample_size(&self) -> usize {
        self.sample_size()
    }

    fn prob_one(&self, own: Opinion, ones_in_sample: usize, _n: u64) -> f64 {
        self.g(own, ones_in_sample)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validates_probabilities() {
        assert!(matches!(
            GTable::new(vec![0.0, 1.5], vec![0.0, 1.0]),
            Err(ProtocolError::InvalidProbability { own: 0, k: 1, .. })
        ));
        assert!(matches!(
            GTable::new(vec![0.0, 1.0], vec![f64::NAN, 1.0]),
            Err(ProtocolError::InvalidProbability { own: 1, k: 0, .. })
        ));
    }

    #[test]
    fn validates_lengths() {
        assert!(matches!(GTable::new(vec![0.5], vec![0.5]), Err(ProtocolError::ZeroSampleSize)));
        assert!(matches!(
            GTable::new(vec![0.0, 1.0], vec![0.0, 0.5, 1.0]),
            Err(ProtocolError::TableLength { expected: 2, actual: 3 })
        ));
    }

    #[test]
    fn symmetric_builds_own_independent() {
        let t = GTable::symmetric(vec![0.0, 0.5, 1.0]).unwrap();
        assert_eq!(t.g(Opinion::Zero, 1), t.g(Opinion::One, 1));
        assert_eq!(t.sample_size(), 2);
    }

    #[test]
    fn with_absorbing_consensus_forces_endpoints() {
        let t = GTable::symmetric(vec![0.3, 0.5, 0.7]).unwrap().with_absorbing_consensus();
        assert_eq!(t.g(Opinion::Zero, 0), 0.0);
        assert_eq!(t.g(Opinion::One, 2), 1.0);
        // Interior entries untouched.
        assert_eq!(t.g(Opinion::Zero, 1), 0.5);
    }

    #[test]
    fn naming() {
        let t = GTable::symmetric(vec![0.0, 1.0]).unwrap();
        assert_eq!(Protocol::name(&t), "gtable(l=1)");
        let t = t.with_name("custom");
        assert_eq!(Protocol::name(&t), "custom");
    }

    #[test]
    #[should_panic]
    fn lookup_out_of_range_panics() {
        let t = GTable::symmetric(vec![0.0, 1.0]).unwrap();
        let _ = t.g(Opinion::Zero, 5);
    }

    #[test]
    fn validated_tables_always_compile() {
        let t = GTable::new(vec![0.0, 0.3, 1.0], vec![0.2, 0.8, 1.0]).unwrap();
        let kernel = t.compile().expect("validated table compiles");
        assert_eq!(kernel.sample_size(), t.sample_size());
        // P_b(0) = g_b[0] and P_b(1) = g_b[ℓ], exactly.
        assert_eq!(kernel.eval(0.0), (0.0, 0.2));
        assert_eq!(kernel.eval(1.0), (1.0, 1.0));
    }

    #[test]
    fn corrupt_unchecked_tables_fail_to_compile() {
        let t = GTable::new_unchecked(vec![0.0, 2.0], vec![0.0, 1.0]);
        let err = t.compile().unwrap_err();
        assert!(
            matches!(err, ProtocolError::InvalidProbability { own: 0, k: 1, .. }),
            "corruption surfaces with row and index: {err}"
        );
        let t = GTable::new_unchecked(vec![0.0, f64::NAN], vec![0.0, 1.0]);
        assert!(t.compile().is_err());
    }

    proptest! {
        #[test]
        fn prop_valid_tables_accepted_and_consistent(
            rows in (2usize..10).prop_flat_map(|len| (
                proptest::collection::vec(0.0f64..=1.0, len),
                proptest::collection::vec(0.0f64..=1.0, len),
            )),
        ) {
            let (g0, g1) = rows;
            let t = GTable::new(g0.clone(), g1.clone()).unwrap();
            prop_assert_eq!(t.sample_size(), g0.len() - 1);
            for k in 0..g0.len() {
                prop_assert_eq!(t.prob_one(Opinion::Zero, k, 42), g0[k]);
                prop_assert_eq!(t.prob_one(Opinion::One, k, 42), g1[k]);
            }
        }
    }
}
