//! Binary opinions.

use std::fmt;
use std::ops::Not;

use serde::{Deserialize, Serialize};

/// A binary opinion held by an agent.
///
/// The paper identifies opinions with bits; we use a dedicated enum so that
/// opinions, sample counts and agent indices cannot be confused
/// (type-safety guideline C-NEWTYPE / C-CUSTOM-TYPE).
///
/// # Examples
///
/// ```
/// use bitdissem_core::Opinion;
///
/// let one = Opinion::One;
/// assert_eq!(one.as_bit(), 1);
/// assert_eq!(!one, Opinion::Zero);
/// assert_eq!(Opinion::from_bool(true), Opinion::One);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Opinion {
    /// Opinion `0`.
    #[default]
    Zero,
    /// Opinion `1`.
    One,
}

impl Opinion {
    /// All opinions, in numeric order.
    pub const ALL: [Opinion; 2] = [Opinion::Zero, Opinion::One];

    /// Returns the opinion as a bit (`0` or `1`).
    #[must_use]
    pub fn as_bit(self) -> u8 {
        match self {
            Opinion::Zero => 0,
            Opinion::One => 1,
        }
    }

    /// Returns `true` if this is [`Opinion::One`].
    #[must_use]
    pub fn is_one(self) -> bool {
        matches!(self, Opinion::One)
    }

    /// Builds an opinion from a boolean (`true` ↦ `One`).
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }

    /// Builds an opinion from a bit.
    ///
    /// # Errors
    ///
    /// Returns the offending value if `bit` is not `0` or `1`.
    pub fn try_from_bit(bit: u8) -> Result<Self, u8> {
        match bit {
            0 => Ok(Opinion::Zero),
            1 => Ok(Opinion::One),
            other => Err(other),
        }
    }

    /// The opposite opinion.
    #[must_use]
    pub fn flipped(self) -> Self {
        !self
    }
}

impl Not for Opinion {
    type Output = Opinion;

    fn not(self) -> Opinion {
        match self {
            Opinion::Zero => Opinion::One,
            Opinion::One => Opinion::Zero,
        }
    }
}

impl From<bool> for Opinion {
    fn from(b: bool) -> Self {
        Opinion::from_bool(b)
    }
}

impl From<Opinion> for u8 {
    fn from(o: Opinion) -> u8 {
        o.as_bit()
    }
}

impl From<Opinion> for u64 {
    fn from(o: Opinion) -> u64 {
        u64::from(o.as_bit())
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        for o in Opinion::ALL {
            assert_eq!(Opinion::try_from_bit(o.as_bit()), Ok(o));
        }
        assert_eq!(Opinion::try_from_bit(2), Err(2));
    }

    #[test]
    fn negation_is_involution() {
        for o in Opinion::ALL {
            assert_eq!(!!o, o);
            assert_ne!(!o, o);
            assert_eq!(o.flipped(), !o);
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Opinion::from(true), Opinion::One);
        assert_eq!(Opinion::from(false), Opinion::Zero);
        assert_eq!(u8::from(Opinion::One), 1);
        assert_eq!(u64::from(Opinion::Zero), 0);
        assert!(Opinion::One.is_one());
        assert!(!Opinion::Zero.is_one());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Opinion::default(), Opinion::Zero);
    }

    #[test]
    fn display_renders_bits() {
        assert_eq!(Opinion::Zero.to_string(), "0");
        assert_eq!(Opinion::One.to_string(), "1");
    }

    #[test]
    fn ordering_matches_bits() {
        assert!(Opinion::Zero < Opinion::One);
    }
}
