//! The memory-less protocol abstraction.

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::table::GTable;

/// Activation pattern of the scheduler (Section 1 of the paper).
///
/// One *parallel round* equals `n` activations: a single synchronous round in
/// the parallel setting, or `n` successive single-agent activations in the
/// sequential setting. All convergence times in this workspace are expressed
/// in parallel rounds so that the two settings are comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ActivationModel {
    /// All non-source agents update simultaneously each round.
    Parallel,
    /// One uniformly random non-source agent updates per step.
    Sequential,
}

impl std::fmt::Display for ActivationModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActivationModel::Parallel => write!(f, "parallel"),
            ActivationModel::Sequential => write!(f, "sequential"),
        }
    }
}

/// A memory-less, anonymous opinion-update protocol.
///
/// This is exactly the object `𝒫 = { g_n^[b] }` of Section 1.1: upon
/// activation, an agent holding opinion `b` that observes `k` ones among its
/// `ℓ` uniform-with-replacement samples adopts opinion 1 with probability
/// `g_n^[b](k)` — and opinion 0 otherwise. The rule may depend on `n` (agents
/// know the population size) but on nothing else: no identities, no round
/// numbers, no memory.
///
/// Implementations must be deterministic functions of `(own, k, n)`; all
/// randomness lives in the simulator.
///
/// # Examples
///
/// ```
/// use bitdissem_core::{dynamics::Voter, Opinion, Protocol};
///
/// let voter = Voter::new(1)?;
/// assert_eq!(voter.sample_size(), 1);
/// // The voter adopts a uniformly random sampled opinion: P(1) = k/ℓ.
/// assert_eq!(voter.prob_one(Opinion::Zero, 1, 50), 1.0);
/// # Ok::<(), bitdissem_core::ProtocolError>(())
/// ```
pub trait Protocol {
    /// The sample size `ℓ ≥ 1` (number of opinions observed per activation).
    fn sample_size(&self) -> usize;

    /// Probability that an agent holding opinion `own`, observing
    /// `ones_in_sample` ones among `sample_size()` samples, in a population
    /// of `n` agents, adopts opinion 1 in the next round.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ones_in_sample > sample_size()`.
    fn prob_one(&self, own: Opinion, ones_in_sample: usize, n: u64) -> f64;

    /// Human-readable protocol name used in reports and tables.
    fn name(&self) -> String;
}

impl<P: Protocol + ?Sized> Protocol for &P {
    fn sample_size(&self) -> usize {
        (**self).sample_size()
    }

    fn prob_one(&self, own: Opinion, ones_in_sample: usize, n: u64) -> f64 {
        (**self).prob_one(own, ones_in_sample, n)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl Protocol for Box<dyn Protocol + Send + Sync> {
    fn sample_size(&self) -> usize {
        (**self).sample_size()
    }

    fn prob_one(&self, own: Opinion, ones_in_sample: usize, n: u64) -> f64 {
        (**self).prob_one(own, ones_in_sample, n)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Extension methods derived from [`Protocol`].
pub trait ProtocolExt: Protocol {
    /// Materializes the decision rule at population size `n` into a
    /// [`GTable`] (two vectors of `ℓ + 1` probabilities).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidProbability`] if the implementation
    /// produces a value outside `[0, 1]`.
    fn to_table(&self, n: u64) -> Result<GTable, ProtocolError> {
        let ell = self.sample_size();
        let mut g0 = Vec::with_capacity(ell + 1);
        let mut g1 = Vec::with_capacity(ell + 1);
        for k in 0..=ell {
            g0.push(self.prob_one(Opinion::Zero, k, n));
            g1.push(self.prob_one(Opinion::One, k, n));
        }
        GTable::new(g0, g1)
    }

    /// Checks the necessary conditions of **Proposition 3**: a protocol can
    /// only solve the bit-dissemination problem if `g_n^[0](0) = 0` and
    /// `g_n^[1](ℓ) = 1` — otherwise the correct consensus is not absorbing
    /// and convergence (staying forever) is impossible.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ConsensusNotAbsorbing`] listing the offending
    /// values.
    fn check_proposition3(&self, n: u64) -> Result<(), ProtocolError> {
        let ell = self.sample_size();
        let g0_at_0 = self.prob_one(Opinion::Zero, 0, n);
        let g1_at_ell = self.prob_one(Opinion::One, ell, n);
        if g0_at_0 == 0.0 && g1_at_ell == 1.0 {
            Ok(())
        } else {
            Err(ProtocolError::ConsensusNotAbsorbing { g0_at_0, g1_at_ell })
        }
    }

    /// Returns `true` if the rule ignores the agent's own opinion
    /// (`g^[0] = g^[1]`), like the Voter and Minority dynamics.
    fn is_own_independent(&self, n: u64) -> bool {
        (0..=self.sample_size())
            .all(|k| self.prob_one(Opinion::Zero, k, n) == self.prob_one(Opinion::One, k, n))
    }
}

impl<P: Protocol + ?Sized> ProtocolExt for P {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{Minority, NoisyVoter, Voter};

    #[test]
    fn activation_model_display() {
        assert_eq!(ActivationModel::Parallel.to_string(), "parallel");
        assert_eq!(ActivationModel::Sequential.to_string(), "sequential");
    }

    #[test]
    fn to_table_materializes_rule() {
        let v = Voter::new(2).unwrap();
        let t = v.to_table(100).unwrap();
        assert_eq!(t.sample_size(), 2);
        assert_eq!(t.g(Opinion::Zero, 1), 0.5);
        assert_eq!(t.g(Opinion::One, 2), 1.0);
    }

    #[test]
    fn proposition3_accepts_voter_and_minority() {
        assert!(Voter::new(1).unwrap().check_proposition3(10).is_ok());
        assert!(Minority::new(3).unwrap().check_proposition3(10).is_ok());
    }

    #[test]
    fn proposition3_rejects_noisy_voter() {
        let noisy = NoisyVoter::new(1, 0.01).unwrap();
        let err = noisy.check_proposition3(10).unwrap_err();
        assert!(matches!(err, ProtocolError::ConsensusNotAbsorbing { .. }));
    }

    #[test]
    fn own_independence_detection() {
        assert!(Voter::new(3).unwrap().is_own_independent(10));
        assert!(Minority::new(3).unwrap().is_own_independent(10));
    }

    #[test]
    fn trait_objects_work() {
        let p: Box<dyn Protocol + Send + Sync> = Box::new(Voter::new(1).unwrap());
        assert_eq!(p.sample_size(), 1);
        assert_eq!(p.name(), "voter(l=1)");
        // Blanket impl for references.
        let r = &p;
        assert_eq!(r.sample_size(), 1);
    }
}
