//! Error types for protocol construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or validating a protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The sample size `ℓ` must be at least 1.
    ZeroSampleSize,
    /// A probability table has the wrong length (expected `ℓ + 1` entries).
    TableLength {
        /// Expected number of entries (`ℓ + 1`).
        expected: usize,
        /// Actual number of entries supplied.
        actual: usize,
    },
    /// A table entry is not a probability in `[0, 1]`.
    InvalidProbability {
        /// Own-opinion branch of the offending entry (`0` or `1`).
        own: u8,
        /// Sample count `k` of the offending entry.
        k: usize,
        /// The offending value.
        value: f64,
    },
    /// An Eq.-4 adoption probability `P_b(p) = Σ_k Bin(ℓ,p)(k)·g^[b](k)`
    /// evaluated outside `[0, 1]` by more than floating-point tolerance —
    /// the table or the binomial-weight computation is corrupt.
    InvalidAdoptionProbability {
        /// Own-opinion branch whose adoption probability is invalid.
        own: u8,
        /// The fraction of ones `p` at which the probability was evaluated.
        p: f64,
        /// The offending pre-clamp value.
        value: f64,
    },
    /// The protocol violates Proposition 3 (`g⁰(0) = 0` and `g¹(ℓ) = 1` are
    /// necessary for solving bit dissemination): consensus would not be
    /// maintained.
    ConsensusNotAbsorbing {
        /// Value of `g⁰(0)` (must be 0).
        g0_at_0: f64,
        /// Value of `g¹(ℓ)` (must be 1).
        g1_at_ell: f64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::ZeroSampleSize => {
                write!(f, "sample size must be at least 1")
            }
            ProtocolError::TableLength { expected, actual } => {
                write!(f, "probability table has {actual} entries, expected {expected}")
            }
            ProtocolError::InvalidProbability { own, k, value } => {
                write!(f, "g^[{own}]({k}) = {value} is not a probability in [0, 1]")
            }
            ProtocolError::InvalidAdoptionProbability { own, p, value } => {
                write!(
                    f,
                    "adoption probability P_{own}({p}) = {value} lies outside [0, 1] \
                     beyond floating-point tolerance (corrupt g-table or pmf)"
                )
            }
            ProtocolError::ConsensusNotAbsorbing { g0_at_0, g1_at_ell } => {
                write!(
                    f,
                    "protocol cannot maintain consensus (Proposition 3): \
                     g^[0](0) = {g0_at_0} (must be 0), g^[1](l) = {g1_at_ell} (must be 1)"
                )
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ProtocolError::TableLength { expected: 4, actual: 3 };
        assert!(e.to_string().contains("3 entries"));
        let e = ProtocolError::InvalidProbability { own: 1, k: 2, value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = ProtocolError::ConsensusNotAbsorbing { g0_at_0: 0.1, g1_at_ell: 1.0 };
        assert!(e.to_string().contains("Proposition 3"));
        let e = ProtocolError::InvalidAdoptionProbability { own: 0, p: 0.5, value: 1.2 };
        assert!(e.to_string().contains("adoption probability"));
        assert!(e.to_string().contains("1.2"));
        assert!(ProtocolError::ZeroSampleSize.to_string().contains("at least 1"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ProtocolError>();
    }
}
