//! Noisy observation channels.
//!
//! The model's motivation is *passive communication*: agents observe each
//! other rather than exchange messages, so observations are naturally
//! error-prone. If each of the `ℓ` observed opinions is independently
//! flipped with probability `δ`, the induced process is again a memory-less
//! protocol: given the true sample contains `k` ones, the *observed* count
//! is `J = Bin(k, 1−δ) + Bin(ℓ−k, δ)`, so the effective rule is
//! `g̃(k) = E[g(J)]` — computable exactly and expressible as a plain
//! [`GTable`]. Experiment E14 uses this to show that any observation noise
//! destroys the Proposition 3 endpoints (consensus stops being absorbing),
//! connecting the model's idealization to its robustness limits.

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::{Protocol, ProtocolExt};
use crate::table::GTable;

/// Applies an independent per-observation flip channel with error
/// probability `delta` to a protocol, returning the induced effective rule
/// at population size `n`.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidProbability`] if `delta` is outside
/// `[0, 1/2]`, or propagates table materialization errors.
///
/// # Examples
///
/// ```
/// use bitdissem_core::channel::with_observation_noise;
/// use bitdissem_core::dynamics::Voter;
/// use bitdissem_core::{Opinion, Protocol};
///
/// let noisy = with_observation_noise(&Voter::new(1)?, 0.1, 100)?;
/// // Seeing a true 0 now reads as a 1 with probability δ.
/// assert!((noisy.prob_one(Opinion::Zero, 0, 100) - 0.1).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn with_observation_noise<P: Protocol + ?Sized>(
    protocol: &P,
    delta: f64,
    n: u64,
) -> Result<GTable, ProtocolError> {
    if !delta.is_finite() || !(0.0..=0.5).contains(&delta) {
        return Err(ProtocolError::InvalidProbability { own: 0, k: 0, value: delta });
    }
    let table = protocol.to_table(n)?;
    let ell = table.sample_size();
    // P(J = j | true count k): convolution of Bin(k, 1−δ) and Bin(ℓ−k, δ).
    let channel = |k: usize| -> Vec<f64> {
        let ones_kept = bitdissem_poly_pmf(k as u64, 1.0 - delta);
        let zeros_flipped = bitdissem_poly_pmf((ell - k) as u64, delta);
        let mut out = vec![0.0; ell + 1];
        for (a, &wa) in ones_kept.iter().enumerate() {
            for (b, &wb) in zeros_flipped.iter().enumerate() {
                out[a + b] += wa * wb;
            }
        }
        out
    };
    let mut g0 = Vec::with_capacity(ell + 1);
    let mut g1 = Vec::with_capacity(ell + 1);
    for k in 0..=ell {
        let dist = channel(k);
        let mut e0 = 0.0;
        let mut e1 = 0.0;
        for (j, &w) in dist.iter().enumerate() {
            e0 += w * table.g(Opinion::Zero, j);
            e1 += w * table.g(Opinion::One, j);
        }
        g0.push(e0.clamp(0.0, 1.0));
        g1.push(e1.clamp(0.0, 1.0));
    }
    Ok(GTable::new(g0, g1)?.with_name(format!("{}+noise(delta={delta})", protocol.name())))
}

// Local binomial PMF to keep this crate dependency-free: the counts here
// are tiny (≤ ℓ), so the direct product formula is exact enough.
fn bitdissem_poly_pmf(n: u64, p: f64) -> Vec<f64> {
    let len = n as usize + 1;
    let mut pmf = vec![0.0; len];
    if p <= 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    if p >= 1.0 {
        pmf[len - 1] = 1.0;
        return pmf;
    }
    // C(n, k) p^k (1-p)^{n-k} with the multiplicative recurrence.
    let q = 1.0 - p;
    let mut current = q.powi(n as i32);
    for (k, slot) in pmf.iter_mut().enumerate() {
        *slot = current;
        if (k as u64) < n {
            current *= (n - k as u64) as f64 / (k as f64 + 1.0) * (p / q);
        }
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{Minority, Voter};

    #[test]
    fn zero_noise_is_identity() {
        let m = Minority::new(3).unwrap();
        let noisy = with_observation_noise(&m, 0.0, 100).unwrap();
        for k in 0..=3 {
            for own in Opinion::ALL {
                assert_eq!(noisy.prob_one(own, k, 100), m.prob_one(own, k, 100));
            }
        }
    }

    #[test]
    fn any_noise_breaks_proposition3() {
        for &delta in &[0.001, 0.05, 0.2] {
            let noisy = with_observation_noise(&Voter::new(2).unwrap(), delta, 100).unwrap();
            assert!(
                noisy.check_proposition3(100).is_err(),
                "delta={delta} should break the endpoints"
            );
            assert!(noisy.prob_one(Opinion::Zero, 0, 100) > 0.0);
            assert!(noisy.prob_one(Opinion::One, 2, 100) < 1.0);
        }
    }

    #[test]
    fn voter_channel_matches_closed_form() {
        // For the Voter, E[J]/ℓ = (k(1−δ) + (ℓ−k)δ)/ℓ.
        let ell = 4;
        let delta = 0.15;
        let noisy = with_observation_noise(&Voter::new(ell).unwrap(), delta, 100).unwrap();
        for k in 0..=ell {
            let expect = (k as f64 * (1.0 - delta) + (ell - k) as f64 * delta) / ell as f64;
            let got = noisy.prob_one(Opinion::Zero, k, 100);
            assert!((got - expect).abs() < 1e-12, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn maximal_noise_erases_information() {
        // δ = 1/2: observations carry no information, so g̃ is constant in k.
        let noisy = with_observation_noise(&Minority::new(3).unwrap(), 0.5, 100).unwrap();
        let base = noisy.prob_one(Opinion::Zero, 0, 100);
        for k in 1..=3 {
            assert!((noisy.prob_one(Opinion::Zero, k, 100) - base).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_invalid_delta() {
        let v = Voter::new(1).unwrap();
        assert!(with_observation_noise(&v, -0.1, 10).is_err());
        assert!(with_observation_noise(&v, 0.6, 10).is_err());
        assert!(with_observation_noise(&v, f64::NAN, 10).is_err());
    }

    #[test]
    fn name_mentions_noise() {
        let noisy = with_observation_noise(&Voter::new(1).unwrap(), 0.25, 10).unwrap();
        assert!(Protocol::name(&noisy).contains("noise"));
    }

    #[test]
    fn local_pmf_is_normalized() {
        for n in 0..8u64 {
            for &p in &[0.0, 0.2, 0.5, 0.9, 1.0] {
                let pmf = bitdissem_poly_pmf(n, p);
                let s: f64 = pmf.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "n={n} p={p}");
            }
        }
    }
}
