//! Constant-memory protocols — the paper's "future work" extension.
//!
//! The discussion section asks whether the `Ω(n^{1−ε})` lower bound
//! generalizes "to protocols using a constant amount of memory". This
//! module provides the model for exploring that question empirically: an
//! agent carries a *state* from a small finite set; only a binary opinion
//! (its **display**) is observable by others — the passive-communication
//! constraint is preserved — and the update rule maps (state, observed
//! count) to a distribution over next states.
//!
//! A memory-less protocol is the special case with one state per opinion
//! ([`Memoryless`]). The classical *undecided-state dynamics* (with the
//! undecided agents displaying their previous opinion, as passive
//! communication requires) is [`UndecidedState`]. Experiment E13 measures
//! whether this single extra bit escapes the constant-`ℓ` slowness — it
//! does not, at the sizes we can reach.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::opinion::Opinion;
use crate::protocol::Protocol;

/// A protocol whose agents carry a finite state, observable only through a
/// binary display.
pub trait StatefulProtocol {
    /// Number of internal states `S ≥ 2`.
    fn num_states(&self) -> usize;

    /// Sample size `ℓ ≥ 1`.
    fn sample_size(&self) -> usize;

    /// The opinion an agent in `state` displays to observers.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `state >= num_states()`.
    fn display(&self, state: usize) -> Opinion;

    /// Distribution over next states for an agent in `state` observing
    /// `ones_seen` displayed ones among its `ℓ` samples. Must have length
    /// [`StatefulProtocol::num_states`] and sum to 1.
    fn transition(&self, state: usize, ones_seen: usize, n: u64) -> Vec<f64>;

    /// The canonical state for an agent initialized with `opinion` (the
    /// adversary controls opinions; memory is initialized canonically but
    /// experiments may override it).
    fn state_for_opinion(&self, opinion: Opinion) -> usize;

    /// Human-readable name.
    fn name(&self) -> String;
}

/// Checks the stateful analog of Proposition 3: for each opinion `z` there
/// is an absorbing "decided-z" state — an agent in
/// `state_for_opinion(z)` seeing a unanimous-`z` sample stays put — so a
/// display consensus can persist.
///
/// # Errors
///
/// Returns [`ProtocolError::ConsensusNotAbsorbing`] naming the violated
/// endpoint probabilities.
pub fn check_stateful_absorption<P: StatefulProtocol + ?Sized>(
    p: &P,
    n: u64,
) -> Result<(), ProtocolError> {
    let ell = p.sample_size();
    for z in Opinion::ALL {
        let s = p.state_for_opinion(z);
        let unanimous = if z.is_one() { ell } else { 0 };
        let dist = p.transition(s, unanimous, n);
        let stay = dist[s];
        if (stay - 1.0).abs() > 1e-12 {
            return Err(ProtocolError::ConsensusNotAbsorbing {
                g0_at_0: if z.is_one() { 0.0 } else { 1.0 - stay },
                g1_at_ell: if z.is_one() { stay } else { 1.0 },
            });
        }
    }
    Ok(())
}

/// Adapter: any memory-less [`Protocol`] is a 2-state stateful protocol
/// (state = displayed opinion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memoryless<P> {
    inner: P,
}

impl<P: Protocol> Memoryless<P> {
    /// Wraps a memory-less protocol.
    #[must_use]
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> StatefulProtocol for Memoryless<P> {
    fn num_states(&self) -> usize {
        2
    }

    fn sample_size(&self) -> usize {
        self.inner.sample_size()
    }

    fn display(&self, state: usize) -> Opinion {
        debug_assert!(state < 2);
        if state == 1 {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }

    fn transition(&self, state: usize, ones_seen: usize, n: u64) -> Vec<f64> {
        let own = self.display(state);
        let g = self.inner.prob_one(own, ones_seen, n);
        vec![1.0 - g, g]
    }

    fn state_for_opinion(&self, opinion: Opinion) -> usize {
        usize::from(opinion.as_bit())
    }

    fn name(&self) -> String {
        format!("memoryless({})", self.inner.name())
    }
}

/// State indices of [`UndecidedState`].
pub mod usd_states {
    /// Decided on opinion 0.
    pub const DECIDED_ZERO: usize = 0;
    /// Decided on opinion 1.
    pub const DECIDED_ONE: usize = 1;
    /// Undecided, still displaying 0.
    pub const UNDECIDED_ZERO: usize = 2;
    /// Undecided, still displaying 1.
    pub const UNDECIDED_ONE: usize = 3;
}

/// The **undecided-state dynamics** under passive communication: one extra
/// bit of memory ("am I sure?") on top of the displayed opinion.
///
/// * A *decided* agent that sees any sample disagreeing with its display
///   becomes undecided (its display is unchanged — others cannot tell).
/// * An *undecided* agent adopts the strict majority of its sample and
///   becomes decided; on a tie it stays undecided.
///
/// With `ℓ = 1` this is the classical pairwise undecided-state dynamics,
/// restricted to what passive communication can express (the undecided
/// flag is private). The display-consensus on `z` is absorbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UndecidedState {
    ell: usize,
}

impl UndecidedState {
    /// Creates the dynamics with sample size `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroSampleSize`] if `ell == 0`.
    pub fn new(ell: usize) -> Result<Self, ProtocolError> {
        if ell == 0 {
            return Err(ProtocolError::ZeroSampleSize);
        }
        Ok(Self { ell })
    }
}

impl StatefulProtocol for UndecidedState {
    fn num_states(&self) -> usize {
        4
    }

    fn sample_size(&self) -> usize {
        self.ell
    }

    fn display(&self, state: usize) -> Opinion {
        match state {
            usd_states::DECIDED_ZERO | usd_states::UNDECIDED_ZERO => Opinion::Zero,
            usd_states::DECIDED_ONE | usd_states::UNDECIDED_ONE => Opinion::One,
            other => panic!("invalid state {other}"),
        }
    }

    fn transition(&self, state: usize, k: usize, _n: u64) -> Vec<f64> {
        debug_assert!(k <= self.ell);
        let mut dist = vec![0.0; 4];
        match state {
            usd_states::DECIDED_ZERO => {
                if k == 0 {
                    dist[usd_states::DECIDED_ZERO] = 1.0;
                } else {
                    dist[usd_states::UNDECIDED_ZERO] = 1.0;
                }
            }
            usd_states::DECIDED_ONE => {
                if k == self.ell {
                    dist[usd_states::DECIDED_ONE] = 1.0;
                } else {
                    dist[usd_states::UNDECIDED_ONE] = 1.0;
                }
            }
            usd_states::UNDECIDED_ZERO | usd_states::UNDECIDED_ONE => {
                match (2 * k).cmp(&self.ell) {
                    std::cmp::Ordering::Greater => dist[usd_states::DECIDED_ONE] = 1.0,
                    std::cmp::Ordering::Less => dist[usd_states::DECIDED_ZERO] = 1.0,
                    std::cmp::Ordering::Equal => dist[state] = 1.0,
                }
            }
            other => panic!("invalid state {other}"),
        }
        dist
    }

    fn state_for_opinion(&self, opinion: Opinion) -> usize {
        match opinion {
            Opinion::Zero => usd_states::DECIDED_ZERO,
            Opinion::One => usd_states::DECIDED_ONE,
        }
    }

    fn name(&self) -> String {
        format!("undecided-state(l={})", self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{Minority, NoisyVoter, Voter};

    #[test]
    fn memoryless_adapter_roundtrips() {
        let m = Memoryless::new(Minority::new(3).unwrap());
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.sample_size(), 3);
        assert_eq!(m.display(0), Opinion::Zero);
        assert_eq!(m.display(1), Opinion::One);
        assert_eq!(m.state_for_opinion(Opinion::One), 1);
        // transition matches the wrapped rule.
        let d = m.transition(0, 1, 100);
        assert_eq!(d, vec![0.0, 1.0]); // minority of {1x1, 2x0} is 1
        assert!(m.name().contains("minority"));
        assert_eq!(m.inner().sample_size(), 3);
    }

    #[test]
    fn memoryless_absorption_matches_prop3() {
        assert!(check_stateful_absorption(&Memoryless::new(Voter::new(2).unwrap()), 10).is_ok());
        assert!(check_stateful_absorption(&Memoryless::new(NoisyVoter::new(2, 0.1).unwrap()), 10)
            .is_err());
    }

    #[test]
    fn usd_transitions_are_distributions() {
        let usd = UndecidedState::new(4).unwrap();
        for s in 0..4 {
            for k in 0..=4 {
                let d = usd.transition(s, k, 10);
                assert_eq!(d.len(), 4);
                assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-15, "s={s} k={k}");
            }
        }
    }

    #[test]
    fn usd_decided_agents_destabilize_on_disagreement() {
        let usd = UndecidedState::new(3).unwrap();
        // Decided 0 seeing one 1 becomes undecided but keeps displaying 0.
        let d = usd.transition(usd_states::DECIDED_ZERO, 1, 10);
        assert_eq!(d[usd_states::UNDECIDED_ZERO], 1.0);
        assert_eq!(usd.display(usd_states::UNDECIDED_ZERO), Opinion::Zero);
        // Decided 1 seeing unanimity stays.
        let d = usd.transition(usd_states::DECIDED_ONE, 3, 10);
        assert_eq!(d[usd_states::DECIDED_ONE], 1.0);
    }

    #[test]
    fn usd_undecided_agents_follow_sample_majority() {
        let usd = UndecidedState::new(4).unwrap();
        let d = usd.transition(usd_states::UNDECIDED_ZERO, 3, 10);
        assert_eq!(d[usd_states::DECIDED_ONE], 1.0);
        let d = usd.transition(usd_states::UNDECIDED_ONE, 1, 10);
        assert_eq!(d[usd_states::DECIDED_ZERO], 1.0);
        // Tie: stay undecided with the same display.
        let d = usd.transition(usd_states::UNDECIDED_ONE, 2, 10);
        assert_eq!(d[usd_states::UNDECIDED_ONE], 1.0);
    }

    #[test]
    fn usd_display_consensus_is_absorbing() {
        for ell in 1..=5 {
            let usd = UndecidedState::new(ell).unwrap();
            assert!(check_stateful_absorption(&usd, 100).is_ok(), "l={ell}");
        }
    }

    #[test]
    fn usd_rejects_zero_samples() {
        assert!(UndecidedState::new(0).is_err());
    }
}
