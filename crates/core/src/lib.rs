//! Model types and protocols for the **self-stabilizing bit-dissemination
//! problem** of D'Archivio & Vacus (PODC 2024).
//!
//! A group of `n` anonymous agents holds binary opinions. A single *source*
//! agent permanently holds the correct opinion. In each round, every
//! non-source agent observes the opinions of `ℓ` agents drawn uniformly at
//! random **with replacement** and re-decides its own opinion with a
//! memory-less rule. A protocol is fully described by the pair of functions
//!
//! ```text
//! g_n^[b] : {0, …, ℓ} → [0, 1],   b ∈ {0, 1}
//! ```
//!
//! giving the probability of adopting opinion 1 when holding opinion `b` and
//! observing `k` ones among the `ℓ` samples (Section 1.1 of the paper). That
//! rule is the [`Protocol`] trait; [`GTable`] is its universal table-driven
//! implementation, and [`dynamics`] hosts the named dynamics studied or
//! referenced by the paper (Voter, Minority, Majority, …).
//!
//! # Example
//!
//! ```
//! use bitdissem_core::{dynamics::Minority, Opinion, Protocol};
//!
//! let minority = Minority::new(3)?;
//! // An agent seeing one `1` out of three samples adopts the minority: `1`.
//! assert_eq!(minority.prob_one(Opinion::Zero, 1, 1000), 1.0);
//! // An agent seeing a unanimous sample keeps the unanimous opinion.
//! assert_eq!(minority.prob_one(Opinion::Zero, 0, 1000), 0.0);
//! assert_eq!(minority.prob_one(Opinion::One, 3, 1000), 1.0);
//! # Ok::<(), bitdissem_core::ProtocolError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod dynamics;
pub mod error;
pub mod multi;
pub mod opinion;
pub mod protocol;
pub mod stateful;
pub mod table;

pub use bitdissem_poly::kernel::Kernel;
pub use config::Configuration;
pub use error::ProtocolError;
pub use opinion::Opinion;
pub use protocol::{ActivationModel, Protocol, ProtocolExt};
pub use table::GTable;
