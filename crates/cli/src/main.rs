//! The `bitdissem` binary: thin wrapper around [`bitdissem_cli::dispatch_full`].

fn main() {
    let args = bitdissem_cli::args::Args::parse(std::env::args().skip(1));
    let out = bitdissem_cli::dispatch_full(&args);
    print!("{}", out.stdout);
    eprint!("{}", out.stderr);
    std::process::exit(out.status.code());
}
