//! The `bitdissem` binary: thin wrapper around [`bitdissem_cli::dispatch`].

fn main() {
    let args = bitdissem_cli::args::Args::parse(std::env::args().skip(1));
    let (output, status) = bitdissem_cli::dispatch(&args);
    print!("{output}");
    std::process::exit(status.code());
}
